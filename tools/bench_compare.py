#!/usr/bin/env python3
"""Gate a freshly generated ``BENCH_*.json`` against a committed baseline.

CI's perf-smoke job regenerates every benchmark artifact from scratch and
then calls this tool once per artifact, with the checked-in copy (stashed
before the benches overwrite it) as the baseline.  The comparison is
metric-aware:

* **deterministic metrics** (digests, event/frame/injection counts,
  virtual-time rates, verdicts — everything a correct simulation must
  reproduce exactly) must match bit-for-bit; any drift **fails** the
  gate, because it means the committed artifact no longer describes the
  committed code;
* **throughput metrics** (``*per_sec*``) may regress by at most the
  tolerance (default 20%, the contract from ROADMAP item 5); a larger
  drop **fails** the gate, improvements always pass;
* **speedup ratios** (``speedup*``) get a wider tolerance (default 35%)
  — a ratio of two measured walls is noisier than either wall;
* **wall-clock metrics** (``*_s``) only **warn**: the throughput gate
  already covers sustained slowdowns, and double-gating raw walls makes
  the job flap on loaded runners;
* **overhead fractions** (``*overhead_frac``) are gated against an
  absolute ceiling (default 2%): the benches measure the cost of
  disabled telemetry (the null-sink path) against the uninstrumented
  loop, and a fraction above the limit **fails** the gate regardless of
  the baseline's value — the budget is the contract, not the history;
* scenarios or metrics present on only one side **warn** (a renamed or
  newly added scenario is a review concern, not a perf regression).

Both ``bench-*/v1`` (no ``environment`` object) and ``v2`` artifacts are
accepted; when both sides carry environment metadata and it differs
(python version, platform), the tool warns that the comparison crosses
environments.

Exit codes: ``0`` pass (possibly with warnings), ``1`` regression or
determinism drift, ``2`` unusable input.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json \
        [--tolerance 0.20] [--ratio-tolerance 0.35] [--overhead-limit 0.02]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

__all__ = ["classify_metric", "compare_artifacts", "main",
           "DEFAULT_OVERHEAD_LIMIT"]

#: Default allowed relative drop for throughput metrics.
DEFAULT_TOLERANCE = 0.20

#: Default allowed relative drop for speedup-ratio metrics.
DEFAULT_RATIO_TOLERANCE = 0.35

#: Default absolute ceiling for ``*overhead_frac`` metrics: disabled
#: telemetry may cost at most 2% of the uninstrumented loop (the
#: repro.obs null-sink contract).
DEFAULT_OVERHEAD_LIMIT = 0.02


def classify_metric(name: str) -> str:
    """Classify one metric name: deterministic, throughput, ratio, wall,
    overhead fraction or statistical counts.

    ``throughput_fps`` is *virtual-time* throughput (completed frames per
    second of simulated stream time) — a pure function of the spec, so it
    is held to exact equality like the digests, not to a tolerance.
    ``*_events`` / ``*_trials`` count pairs are rate samples: whether a
    drift in them *means* anything is a significance question, so this
    gate only warns and defers the verdict to ``python -m repro
    compare`` (the CI step right after this one).
    """
    if name == "throughput_fps":
        return "exact"
    if "per_sec" in name:
        return "throughput"
    if name.startswith("speedup"):
        return "ratio"
    if name.endswith("overhead_frac"):
        return "overhead"
    if name.endswith("_s"):
        return "wall"
    if name.endswith(("_events", "_trials")):
        return "counts"
    return "exact"


def _load(path: Path) -> Dict[str, object]:
    """Load one artifact, tolerating schema v1 and v2."""
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "scenarios" not in payload:
        raise ValueError(f"{path}: not a BENCH artifact (no 'scenarios')")
    return payload


def compare_artifacts(baseline: Dict[str, object],
                      current: Dict[str, object],
                      *, tolerance: float = DEFAULT_TOLERANCE,
                      ratio_tolerance: float = DEFAULT_RATIO_TOLERANCE,
                      overhead_limit: float = DEFAULT_OVERHEAD_LIMIT,
                      ) -> Tuple[List[str], List[str]]:
    """Compare two artifact payloads.

    Args:
        baseline: the committed artifact (parsed JSON).
        current: the freshly generated artifact (parsed JSON).
        tolerance: allowed relative drop for throughput metrics.
        ratio_tolerance: allowed relative drop for speedup ratios.
        overhead_limit: absolute ceiling for ``*overhead_frac`` metrics
            (the current value alone is judged — a baseline within
            budget never excuses a current value above it).

    Returns:
        ``(failures, warnings)`` — human-readable findings; the gate
        fails when ``failures`` is non-empty.
    """
    failures: List[str] = []
    warnings: List[str] = []

    base_env = baseline.get("environment")
    cur_env = current.get("environment")
    if base_env is None:
        warnings.append(
            "baseline has no environment metadata (schema v1) — "
            "cross-environment drift cannot be detected"
        )
    elif cur_env is not None and base_env != cur_env:
        warnings.append(
            f"environments differ (baseline {base_env}, current {cur_env})"
            " — timing comparisons cross machines/interpreters"
        )

    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name in sorted(set(base_scenarios) - set(cur_scenarios)):
        warnings.append(f"scenario {name!r} missing from current artifact")
    for name in sorted(set(cur_scenarios) - set(base_scenarios)):
        warnings.append(f"scenario {name!r} is new (no baseline)")

    for scenario in sorted(set(base_scenarios) & set(cur_scenarios)):
        base_metrics = base_scenarios[scenario]
        cur_metrics = cur_scenarios[scenario]
        for metric in sorted(set(base_metrics) - set(cur_metrics)):
            warnings.append(f"{scenario}.{metric}: missing from current")
        for metric in sorted(set(cur_metrics) - set(base_metrics)):
            new = cur_metrics[metric]
            if (classify_metric(metric) == "overhead"
                    and isinstance(new, (int, float))
                    and not isinstance(new, bool)
                    and new > overhead_limit):
                # the overhead budget is absolute — it binds even before
                # a baseline exists for the metric
                failures.append(
                    f"{scenario}.{metric}: overhead {new * 100.0:.2f}% "
                    f"exceeds the {overhead_limit * 100.0:.0f}% budget"
                )
            else:
                warnings.append(
                    f"{scenario}.{metric}: new metric (no baseline)"
                )
        for metric in sorted(set(base_metrics) & set(cur_metrics)):
            old = base_metrics[metric]
            new = cur_metrics[metric]
            kind = classify_metric(metric)
            numeric = isinstance(old, (int, float)) and isinstance(
                new, (int, float)
            ) and not isinstance(old, bool) and not isinstance(new, bool)
            if kind in ("throughput", "ratio") and numeric:
                tol = tolerance if kind == "throughput" else ratio_tolerance
                if old > 0 and new < old * (1.0 - tol):
                    failures.append(
                        f"{scenario}.{metric}: {new} is "
                        f"{(1.0 - new / old) * 100.0:.1f}% below baseline "
                        f"{old} (tolerance {tol * 100.0:.0f}%)"
                    )
            elif kind == "overhead" and numeric:
                if new > overhead_limit:
                    failures.append(
                        f"{scenario}.{metric}: overhead {new * 100.0:.2f}% "
                        f"exceeds the {overhead_limit * 100.0:.0f}% budget"
                    )
            elif kind == "wall" and numeric:
                if old > 0 and new > old * (1.0 + tolerance):
                    warnings.append(
                        f"{scenario}.{metric}: wall {new}s vs baseline "
                        f"{old}s (+{(new / old - 1.0) * 100.0:.1f}%)"
                    )
            elif kind == "counts" and numeric:
                if old != new:
                    warnings.append(
                        f"{scenario}.{metric}: count changed {old} -> "
                        f"{new} — significance is judged by "
                        "'python -m repro compare'"
                    )
            else:
                if old != new:
                    failures.append(
                        f"{scenario}.{metric}: deterministic metric "
                        f"changed: baseline {old!r} != current {new!r}"
                    )
    return failures, warnings


def main(argv: List[str] = None) -> int:
    """CLI entry point (see module docstring for the contract)."""
    parser = argparse.ArgumentParser(
        description="Gate a fresh BENCH_*.json against a committed baseline."
    )
    parser.add_argument("baseline", type=Path,
                        help="committed artifact (the gate's reference)")
    parser.add_argument("current", type=Path,
                        help="freshly generated artifact")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed relative throughput drop "
                             "(default %(default)s)")
    parser.add_argument("--ratio-tolerance", type=float,
                        default=DEFAULT_RATIO_TOLERANCE,
                        help="allowed relative speedup-ratio drop "
                             "(default %(default)s)")
    parser.add_argument("--overhead-limit", type=float,
                        default=DEFAULT_OVERHEAD_LIMIT,
                        help="absolute ceiling for *overhead_frac metrics "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except (OSError, ValueError) as exc:
        print(f"bench-compare: error: {exc}", file=sys.stderr)
        return 2

    failures, warnings = compare_artifacts(
        baseline, current,
        tolerance=args.tolerance, ratio_tolerance=args.ratio_tolerance,
        overhead_limit=args.overhead_limit,
    )
    for line in warnings:
        print(f"WARN {line}")
    for line in failures:
        print(f"FAIL {line}")
    verdict = "FAIL" if failures else "OK"
    print(
        f"bench-compare: {verdict} — {args.current.name}: "
        f"{len(failures)} failure(s), {len(warnings)} warning(s)"
    )
    if failures:
        # point the investigator at the span-level attribution tool:
        # archived telemetry from both runs turns "the gate is red" into
        # "this span path got slower"
        print(
            "hint: to attribute a timing regression, archive telemetry "
            "from both builds ('repro obs archive') and run "
            "'repro obs diff BASELINE CURRENT' — it aligns the span "
            "trees and names the paths with significant self-time deltas"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
