#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (dependency-free).

Scans the given markdown files (or directories, recursively) for inline
links and images — plus reference-style links (``[text][label]`` with a
``[label]: target`` definition; an undefined label is reported) — and
verifies that every *relative* target resolves to an existing file,
including ``#anchor`` fragments, which are checked against the target
file's headings using GitHub's slug rules (explicit HTML anchors,
``<a id="...">`` / ``<a name="...">``, count as valid slugs too).
External (``http``/``https``/``mailto``) links are not fetched; CI must
stay deterministic and offline.

Usage::

    python tools/check_markdown_links.py README.md docs

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple

# inline links/images: [text](target) — stops at the first unbalanced ')'
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# reference-style use: [text][label]; empty label means the text is the label
_REF_LINK_RE = re.compile(r"!?\[([^\]]+)\]\[([^\]]*)\]")
# reference definition: [label]: target (optionally followed by a title)
_REF_DEF_RE = re.compile(r"^\s*\[([^\]]+)\]:\s*(\S+)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# explicit HTML anchors are addressable like heading slugs
_HTML_ANCHOR_RE = re.compile(r"<a\s+(?:id|name)\s*=\s*[\"']([^\"']+)[\"']")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading.

    Lowercase, spaces to dashes, punctuation (everything that is not a
    word character, dash or space) stripped.  Inline code/emphasis markers
    and link syntax are removed first.
    """
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [t](u) -> t
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(paths: Iterable[str]) -> List[Path]:
    """Expand file/directory arguments into a sorted list of .md files."""
    files: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        else:
            files.add(path)
    return sorted(files)


def heading_slugs(path: Path) -> Set[str]:
    """All anchor slugs a markdown file exposes (code fences excluded)."""
    slugs: Set[str] = set()
    seen: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for anchor in _HTML_ANCHOR_RE.finditer(line):
            slugs.add(anchor.group(1).lower())
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def extract_links(path: Path) -> List[Tuple[int, str]]:
    """All inline link targets in a file, with line numbers."""
    links: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def reference_links(path: Path) -> Tuple[dict, List[Tuple[int, str]]]:
    """Reference-style definitions and uses in a file.

    Returns ``(definitions, uses)``: definitions map a lowercased label
    to ``(line, target)``; uses are ``(line, label)`` pairs for every
    ``[text][label]`` occurrence (``[text][]`` uses the text as label).
    """
    definitions: dict = {}
    uses: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        definition = _REF_DEF_RE.match(line)
        if definition:
            definitions.setdefault(
                definition.group(1).lower(), (lineno, definition.group(2))
            )
            continue
        for match in _REF_LINK_RE.finditer(line):
            label = match.group(2) or match.group(1)
            uses.append((lineno, label.lower()))
    return definitions, uses


def check_target(path: Path, lineno: int, target: str) -> List[str]:
    """Errors for one link target (file existence plus anchor slugs)."""
    if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("<"):
        return []
    base, _, fragment = target.partition("#")
    if not base:  # same-file anchor
        resolved = path
    else:
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            return [
                f"{path}:{lineno}: broken link {target!r} "
                f"(no such file {base!r})"
            ]
    if fragment and resolved.suffix == ".md":
        if fragment.lower() not in heading_slugs(resolved):
            return [
                f"{path}:{lineno}: broken anchor {target!r} "
                f"(no heading slug {fragment!r} in {resolved.name})"
            ]
    return []


def check_file(path: Path) -> List[str]:
    """Broken-link descriptions for one markdown file."""
    errors: List[str] = []
    for lineno, target in extract_links(path):
        errors.extend(check_target(path, lineno, target))
    definitions, uses = reference_links(path)
    for label in sorted(definitions):
        def_line, target = definitions[label]
        errors.extend(check_target(path, def_line, target))
    for lineno, label in uses:
        if label not in definitions:
            errors.append(
                f"{path}:{lineno}: undefined reference link label "
                f"{label!r} (no '[{label}]: target' definition)"
            )
    return errors


def main(argv: List[str]) -> int:
    """Check every argument (file or directory); return an exit code."""
    paths = argv or ["README.md", "docs"]
    files = markdown_files(paths)
    if not files:
        print("check_markdown_links: no markdown files found", file=sys.stderr)
        return 1
    errors: List[str] = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
