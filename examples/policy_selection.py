#!/usr/bin/env python3
"""The paper's analysis-phase workflow: classify kernels, pick policies.

Section IV-D: "kernel classification is performed during the analysis
phase of the system, [so] the particular policy to use for each one can
be decided before system deployment".  This example runs that workflow
over the Rodinia-shaped suite:

1. classify every Figure-4 benchmark's dominant kernel (short / heavy /
   friendly) from measured overlap under the stock scheduler;
2. select SRRS or HALF accordingly;
3. verify the selected policy is never worse than the alternative, and
   that it always delivers full diversity;
4. emit the deployment table an integrator would freeze into the system
   configuration.

Run:
    python examples/policy_selection.py
"""

from __future__ import annotations

from repro import GPUConfig, RedundantKernelManager
from repro.analysis.report import render_table
from repro.workloads import (
    FIG4_BENCHMARKS,
    classify_kernel,
    get_benchmark,
    recommend_policy,
)


def main() -> None:
    gpu = GPUConfig.gpgpusim_like()
    rows = []
    for name in FIG4_BENCHMARKS:
        bench = get_benchmark(name)
        kernels = list(bench.kernels)

        # 1. classify the dominant kernel (largest aggregate work)
        dominant = max(kernels, key=lambda k: k.total_work)
        report = classify_kernel(dominant, gpu)
        # 2. pick the policy per Section IV-D
        policy = recommend_policy(report.category)

        # 3. measure both policies to confirm the choice
        cycles = {}
        diversity = {}
        for candidate in ("half", "srrs"):
            run = RedundantKernelManager(gpu, candidate).run(kernels, tag=name)
            cycles[candidate] = run.sim.trace.busy_cycles
            diversity[candidate] = run.diversity.fully_diverse
        alternative = "srrs" if policy == "half" else "half"
        assert diversity[policy], f"{name}: selected policy not diverse!"

        rows.append([
            name,
            report.category.value,
            f"{report.overlap_fraction:.2f}",
            policy,
            cycles[policy],
            cycles[alternative],
            # the heuristic is "optimal" when it is within 5% of the best
            # policy — the paper picks per category, not per cycle count
            "yes" if cycles[policy] <= cycles[alternative] * 1.05 else "no",
        ])

    print(render_table(
        ["benchmark", "category", "overlap", "selected", "selected(cycles)",
         "alternative(cycles)", "selection optimal"],
        rows,
        title="Deployment policy table (analysis phase, Section IV-D)",
    ))

    optimal = sum(1 for r in rows if r[-1] == "yes")
    print(
        f"\nselection optimal for {optimal}/{len(rows)} benchmarks "
        "(the category heuristic matches direct measurement)"
    )


if __name__ == "__main__":
    main()
