#!/usr/bin/env python3
"""Quickstart: diverse-redundant GPU execution through the declarative API.

One :class:`repro.RunSpec` describes a run (GPU + workload + policy +
redundancy); ``repro.run(spec)`` executes it and returns a uniform
:class:`repro.RunArtifact`.  Here the same ADAS kernel runs redundantly
under each scheduling policy: the default scheduler is fastest but leaves
redundant copies sharing SMs and time slots (common-cause-fault
exposure); SRRS and HALF guarantee diversity.

Run:
    python examples/quickstart.py

The same runs are reachable from the shell (and a richer single-spec
variant of this kernel — with a baseline makespan and a fault-injection
campaign — lives in ``examples/specs/quickstart.json``)::

    python -m repro run --scenario quickstart
    python -m repro run --spec examples/specs/quickstart.json --json
"""

from __future__ import annotations

import repro


def main() -> None:
    kernel = repro.KernelSpec(
        name="adas/object-detect",
        grid_blocks=36,                      # 6 blocks per SM
        threads_per_block=256,
        work_per_block=4000.0,               # abstract compute cycles
        bytes_per_block=3000.0,              # DRAM traffic per block
    )
    specs = [
        repro.RunSpec(
            workload=repro.WorkloadSpec(kernels=(kernel,)),
            gpu=repro.GPUSpec(preset="gpgpusim"),  # 6 SMs, as in the paper
            policy=policy,
            tag="quickstart",
        )
        for policy in ("default", "half", "srrs")
    ]

    print(f"kernel: {kernel.name}, {kernel.grid_blocks} thread blocks\n")

    # one spec -> one artifact; batches may fan out with workers=N
    for spec, artifact in zip(specs, repro.run_many(specs)):
        d = artifact.diversity
        print(
            f"{spec.policy:8s} busy={artifact.timing.busy_cycles:9.0f} cycles  "
            f"outputs-agree={artifact.comparisons.all_clean}  "
            f"same-SM pairs={d.same_sm_pairs:2d}/{d.total_pairs}  "
            f"overlapping={d.overlapping_pairs:2d}  "
            f"DIVERSE={d.fully_diverse}"
        )

    print(
        "\nThe default scheduler is unconstrained: redundant copies may "
        "execute the same block on the same SM at the same time, so a "
        "single common-cause fault (e.g. a voltage droop) can corrupt "
        "both copies identically and escape the DCLS comparison.\n"
        "SRRS serializes the copies with rotated SM assignment; HALF "
        "splits the SMs between them — either way, every redundant pair "
        "runs on different SMs at different phases, as ISO 26262 ASIL-D "
        "demands.\n"
        "Every artifact serializes: try "
        "repro.run(spec).to_json(indent=2)."
    )


if __name__ == "__main__":
    main()
