#!/usr/bin/env python3
"""Quickstart: diverse-redundant GPU execution in twenty lines.

Launches one kernel redundantly under each scheduling policy on the
paper's 6-SM GPU, and prints what each policy buys you: the default
scheduler is fastest but leaves redundant copies sharing SMs and time
slots (common-cause-fault exposure); SRRS and HALF guarantee diversity.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GPUConfig, KernelDescriptor, RedundantKernelManager

def main() -> None:
    gpu = GPUConfig.gpgpusim_like()          # 6 SMs, as in the paper
    kernel = KernelDescriptor(
        name="adas/object-detect",
        grid_blocks=36,                      # 6 blocks per SM
        threads_per_block=256,
        work_per_block=4000.0,               # abstract compute cycles
        bytes_per_block=3000.0,              # DRAM traffic per block
    )

    print(f"GPU: {gpu.name} ({gpu.num_sms} SMs)")
    print(f"kernel: {kernel.name}, {kernel.grid_blocks} thread blocks\n")

    for policy in ("default", "half", "srrs"):
        manager = RedundantKernelManager(gpu, policy)
        run = manager.run([kernel])
        d = run.diversity
        print(
            f"{policy:8s} busy={run.sim.trace.busy_cycles:9.0f} cycles  "
            f"outputs-agree={run.all_clean}  "
            f"same-SM pairs={d.same_sm_pairs:2d}/{d.total_pairs}  "
            f"overlapping={d.overlapping_pairs:2d}  "
            f"DIVERSE={d.fully_diverse}"
        )

    print(
        "\nThe default scheduler is unconstrained: redundant copies may "
        "execute the same block on the same SM at the same time, so a "
        "single common-cause fault (e.g. a voltage droop) can corrupt "
        "both copies identically and escape the DCLS comparison.\n"
        "SRRS serializes the copies with rotated SM assignment; HALF "
        "splits the SMs between them — either way, every redundant pair "
        "runs on different SMs at different phases, as ISO 26262 ASIL-D "
        "demands."
    )

if __name__ == "__main__":
    main()
