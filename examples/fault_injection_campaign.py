#!/usr/bin/env python3
"""Fault-injection campaign: why diversity is the whole point.

Runs a mixed campaign (chip-wide voltage droops, permanent SM defects,
local SEUs) against redundant executions of the hotspot benchmark under
all three scheduling policies, classifies every injection, and maps the
results onto ISO 26262 hardware architectural metrics.

The output shows the paper's argument quantitatively: plain redundancy
(default scheduler) leaves silent-data-corruption holes that cap the
achievable diagnostic coverage below ASIL-D needs, while SRRS and HALF
close them completely.

Run:
    python examples/fault_injection_campaign.py
"""

from __future__ import annotations

from repro import GPUConfig, RedundantKernelManager
from repro.analysis.report import render_table
from repro.faults import CampaignConfig, FaultCampaign, FaultOutcome
from repro.iso26262 import Asil
from repro.workloads import get_benchmark

CONFIG = CampaignConfig(transient_ccf=500, permanent_sm=120, seu=250,
                        seed=2019)

#: Raw random-hardware failure rate assumed for the GPU cores (1e-6/h is
#: a deliberately pessimistic illustration value).
RAW_RATE = 1e-6


def main() -> None:
    gpu = GPUConfig.gpgpusim_like()
    kernels = list(get_benchmark("hotspot").kernels)

    rows = []
    sdc_examples = {}
    for policy in ("default", "half", "srrs"):
        run = RedundantKernelManager(gpu, policy).run(kernels, tag="hotspot")
        report = FaultCampaign(run).run(CONFIG)
        metrics = report.hardware_metrics(RAW_RATE)
        rows.append([
            report.policy,
            report.total,
            report.masked,
            report.detected,
            report.sdc,
            report.detection_coverage,
            f"{metrics.pmhf_per_hour:.2e}",
            "yes" if metrics.pmhf_per_hour <= 1e-8 else "NO",
        ])
        if report.sdc:
            sdc_examples[policy] = report.sdc_injections()[:3]

    print(render_table(
        ["policy", "n", "masked", "detected", "SDC", "coverage",
         "PMHF (1/h)", "ASIL-D PMHF ok"],
        rows,
        title=f"Campaign: {CONFIG.transient_ccf} droops + "
              f"{CONFIG.permanent_sm} permanent + {CONFIG.seu} SEU "
              f"(hotspot, seed {CONFIG.seed})",
    ))

    for policy, examples in sdc_examples.items():
        print(f"\nexample silent corruptions under {policy!r}:")
        for record in examples:
            print(
                f"  {record.fault_label}: corrupted "
                f"{record.corrupted_blocks} blocks of logical kernels "
                f"{list(record.affected_logicals)} — identical in both "
                "copies, comparison blind"
            )

    print(
        "\nInterpretation: the DCLS comparison detects any *differing* "
        "corruption. Under the default scheduler, redundant copies of a "
        "block can run on the same SM (permanent defects corrupt both "
        "identically) or in phase-aligned lockstep (a droop corrupts both "
        "identically) — those injections surface as SDC and inflate the "
        "PMHF beyond the ASIL-D budget. SRRS and HALF remove the shared "
        f"SM and the phase alignment, so coverage is 1.0 and the "
        f"residual rate is 0 of {RAW_RATE:.0e}/h."
    )


if __name__ == "__main__":
    main()
