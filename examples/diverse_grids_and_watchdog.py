#!/usr/bin/env python3
"""Future-work demo: structural diversity and non-termination watchdog.

Two mechanisms from the edges of the paper:

* **Diverse kernel generation** (Section IV-A, left as future work): the
  redundant copy executes a reshaped grid (each block split in two), so
  even the *unconstrained default scheduler* cannot produce identical
  corruptions — demonstrated by injecting a permanent fault on an SM both
  copies use.
* **Watchdog supervision** (Section IV-C, outcome 3): a kernel-scheduler
  fault may lose work or never terminate; output comparison cannot see
  what never arrives.  A deadline watchdog budgeted from the analytic
  SRRS bound catches the missing launch within the FTTI.

Run:
    python examples/diverse_grids_and_watchdog.py
"""

from __future__ import annotations

from repro import GPUConfig, KernelDescriptor
from repro.analysis.bounds import srrs_chain_bound
from repro.faults import PermanentSMFault, apply_fault
from repro.gpu.scheduler import SRRSScheduler
from repro.gpu.simulator import GPUSimulator
from repro.iso26262 import Ftti
from repro.redundancy import DeadlineWatchdog, DiverseGridManager
from repro.redundancy.manager import build_redundant_workload

KERNEL = KernelDescriptor(
    name="radar/cfar", grid_blocks=12, threads_per_block=256,
    work_per_block=6000.0, bytes_per_block=1500.0,
)


def demo_diverse_grids(gpu: GPUConfig) -> None:
    print("=== structural diversity (grid reshaping, default scheduler) ===")
    manager = DiverseGridManager(gpu, "default", factor=2)
    clean = manager.run([KERNEL])
    trace = clean.sim.trace
    coarse_sms = {r.sm for r in trace.blocks_of(0)}
    fine_sms = {r.sm for r in trace.blocks_of(1)}
    shared = coarse_sms & fine_sms
    print(f"coarse copy uses SMs {sorted(coarse_sms)}, "
          f"fine copy (24 blocks) uses {sorted(fine_sms)}; "
          f"shared: {sorted(shared)}")

    fault = PermanentSMFault(sm=min(shared), fault_id=7)
    corruption = apply_fault(fault, trace)
    result = manager.run([KERNEL], corruption=corruption)
    print(
        f"permanent defect on shared SM {fault.sm} corrupts "
        f"{len(corruption)} block executions -> comparison detects the "
        f"mismatch: {result.error_detected} (silent: "
        f"{result.silent_corruption})"
    )
    assert result.error_detected and not result.silent_corruption
    print("identical redundant grids on that SM would have agreed on the "
          "wrong answer; the reshaped copy computes the same values with "
          "a different block structure, so the corruptions differ.\n")


def demo_watchdog(gpu: GPUConfig) -> None:
    print("=== watchdog: detecting lost work (outcome 3) ===")
    launches = build_redundant_workload([KERNEL, KERNEL])
    bound = srrs_chain_bound([KERNEL, KERNEL], gpu)
    watchdog = DeadlineWatchdog.for_workload(launches, bound, margin=1.2)

    healthy = GPUSimulator(gpu, SRRSScheduler()).run(launches).trace
    report = watchdog.check(healthy)
    print(f"healthy run: {report.checked_launches} launches supervised, "
          f"all within the {bound:.0f}-cycle bound x1.2: {report.all_met}")

    # emulate a scheduler fault that dropped the last launch entirely
    lost = launches[-1].instance_id
    crippled = GPUSimulator(gpu, SRRSScheduler()).run(launches[:-1]).trace
    report = watchdog.check(crippled)
    violation = report.violations[0]
    print(f"crippled run: launch {violation.instance_id} missing -> "
          f"non-termination detected: {violation.non_termination}")
    assert lost == violation.instance_id

    timeline = report.timeline(gpu, reaction_ms=5.0)
    timeline.check(Ftti(100.0), context="radar offload")
    print(f"watchdog fires at {timeline.detected_at:.3f} ms, recovery "
          f"completes at {timeline.handled_at:.3f} ms — inside the "
          f"100 ms FTTI")


def main() -> None:
    gpu = GPUConfig.gpgpusim_like()
    demo_diverse_grids(gpu)
    demo_watchdog(gpu)


if __name__ == "__main__":
    main()
