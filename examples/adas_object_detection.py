#!/usr/bin/env python3
"""ADAS camera-pipeline example: the paper's five-step offload protocol.

Models the workload the paper's introduction motivates: an autonomous-
driving perception pipeline (preprocess → detect → track) offloaded from
an ASIL-D DCLS microcontroller to the GPU, once per camera frame, with a
100 ms fault-tolerant time interval (FTTI).

For each frame the DCLS host (1) allocates per-copy buffers, (2) uploads
the frame, (3) launches every kernel twice under the HALF policy,
(4) downloads both result buffers and (5) compares them on the lockstep
cores.  The example then injects a voltage-droop CCF into one frame to
show detection and in-FTTI recovery by re-execution.

Run:
    python examples/adas_object_detection.py
"""

from __future__ import annotations

from repro import GPUConfig, KernelDescriptor
from repro.faults import TransientCCF, apply_fault
from repro.host import SafetyCriticalOffload
from repro.iso26262 import Ftti
from repro.redundancy.modes import (
    RecoveryAction,
    RedundancyMode,
    plan_recovery,
    recovery_timeline,
)

#: The perception kernel chain of one camera frame.
PIPELINE = [
    KernelDescriptor(
        name="perception/preprocess", grid_blocks=24, threads_per_block=256,
        work_per_block=1500.0, bytes_per_block=4000.0,
        input_bytes=2 * 1920 * 1080, output_bytes=1 << 20,
    ),
    KernelDescriptor(
        name="perception/detect", grid_blocks=36, threads_per_block=256,
        work_per_block=6000.0, bytes_per_block=2500.0,
        shared_mem_per_block=8192, output_bytes=1 << 16,
    ),
    KernelDescriptor(
        name="perception/track", grid_blocks=12, threads_per_block=128,
        work_per_block=2500.0, bytes_per_block=1000.0,
        output_bytes=1 << 14,
    ),
]

FTTI_MS = Ftti(100.0)


def main() -> None:
    gpu = GPUConfig.gpgpusim_like()
    offload = SafetyCriticalOffload(gpu, policy="half")

    print("=== fault-free frames ===")
    for frame in range(3):
        result = offload.run(PIPELINE, tag=f"frame{frame}")
        print(
            f"frame {frame}: {result.elapsed_ms:7.3f} ms end-to-end "
            f"(GPU busy {result.gpu_busy_ms:6.3f} ms)  "
            f"agree={not result.detected_mismatch}  "
            f"diverse={result.diversity.fully_diverse}"
        )

    print("\n=== frame hit by a chip-wide voltage droop ===")
    # Probe a clean frame on a fresh context to learn the (deterministic)
    # timing, derive the droop's corruption from its trace, then replay
    # the frame on another fresh context with the corruption applied.
    # Fresh contexts guarantee identical launch instance ids.
    probe = SafetyCriticalOffload(gpu, policy="half")
    clean = probe.run(PIPELINE, tag="faulty-frame")
    trace = probe.context.last_result.trace
    droop = TransientCCF(
        time=trace.makespan * 0.4,
        fault_id=1,
        work_per_block=max(k.work_per_block for k in PIPELINE),
    )
    corruption = apply_fault(droop, trace)
    replay = SafetyCriticalOffload(gpu, policy="half")
    result = replay.run(PIPELINE, tag="faulty-frame", corruption=corruption)
    print(
        f"droop at t={droop.time:.0f} cycles corrupted "
        f"{len(corruption)} block executions; "
        f"DCLS comparison mismatch detected: {result.detected_mismatch}"
    )
    assert result.detected_mismatch, (
        "HALF staggering must make the corruptions differ across copies"
    )

    # fail-operational reaction: re-execute the redundant frame
    action = plan_recovery(RedundancyMode.DMR, result.comparisons[0])
    if not result.comparisons[0].error_detected:
        # the droop may have hit a later kernel of the chain
        for comparison in result.comparisons:
            if comparison.error_detected:
                action = plan_recovery(RedundancyMode.DMR, comparison)
                break
    timeline = recovery_timeline(
        action,
        detection_ms=result.elapsed_ms,
        reexecution_ms=clean.elapsed_ms,
    )
    timeline.check(FTTI_MS, context="perception frame")
    print(
        f"recovery: {action.value} — detected at {timeline.detected_at:.3f} ms, "
        f"handled at {timeline.handled_at:.3f} ms, "
        f"within FTTI of {FTTI_MS.milliseconds:.0f} ms"
    )

    assert action is RecoveryAction.REEXECUTE


if __name__ == "__main__":
    main()
