#!/usr/bin/env python3
"""Build and check the full ISO 26262 safety case of the paper's platform.

Constructs the system of Section IV-A — DCLS microcontroller, ECC/CRC
protected memories and interfaces, GPU SMs with redundant kernel
execution — allocates an ASIL-D perception safety goal onto it, and
checks every claim:

* the ASIL-D goal decomposes onto two ASIL-B GPU kernel copies *only*
  because the measured schedule (SRRS here) is diverse;
* every component outside the sphere of replication carries an explicit
  lighter mechanism (ECC / CRC / lockstep / periodic test);
* the kernel scheduler's periodic test is exercised against an injected
  latent placement fault.

Run:
    python examples/safety_case_builder.py
"""

from __future__ import annotations

from repro import GPUConfig, RedundantKernelManager
from repro.analysis.report import render_table
from repro.faults import (
    FaultySchedulerWrapper,
    SchedulerFault,
    SchedulerFaultKind,
    audit_placement,
)
from repro.gpu.scheduler import HALFScheduler, SRRSScheduler
from repro.gpu.simulator import GPUSimulator
from repro.iso26262 import (
    Asil,
    Ftti,
    SafetyGoal,
    SafetyRequirement,
    SystemElement,
    check_system,
)
from repro.redundancy import protection_plan
from repro.redundancy.manager import build_redundant_workload
from repro.workloads import get_benchmark


def main() -> None:
    gpu = GPUConfig.gpgpusim_like()
    kernels = list(get_benchmark("hotspot").kernels)

    # --- measure diversity under the chosen policy -------------------
    run = RedundantKernelManager(gpu, "srrs").run(kernels)
    independent = run.diversity.fully_diverse
    print(f"measured diversity under SRRS: {run.diversity.summary()}\n")

    # --- sphere of replication & protection obligations --------------
    print(render_table(
        ["component", "in SoR", "protection", "rationale"],
        [[p.component, p.inside_sphere, p.protection.value, p.rationale]
         for p in protection_plan()],
        title="Sphere of replication: SM cores (Section II-B / III-B)",
    ))

    # --- safety goal and allocation ----------------------------------
    goal = SafetyGoal(
        name="no undetected erroneous perception output",
        asil=Asil.D,
        ftti=Ftti(100.0),
    )
    elements = {
        "dcls-mcu": SystemElement("dcls-mcu", standalone_asil=Asil.D),
        "gpu-copy-0": SystemElement(
            "gpu-copy-0", standalone_asil=Asil.B,
            redundant_with="gpu-copy-1", independent_of_peer=independent,
        ),
        "gpu-copy-1": SystemElement(
            "gpu-copy-1", standalone_asil=Asil.B,
            redundant_with="gpu-copy-0", independent_of_peer=independent,
        ),
    }
    requirements = [
        SafetyRequirement(
            "REQ-PERC-1  perception computed correctly or error detected",
            goal, allocated_to=("gpu-copy-0", "gpu-copy-1"), decomposed=True,
        ),
        SafetyRequirement(
            "REQ-PERC-2  offload protocol and comparison on lockstep cores",
            goal, allocated_to=("dcls-mcu",),
        ),
    ]
    print()
    for line in check_system(requirements, elements):
        print("  OK", line)

    # --- the periodic scheduler test (keeps faults from latency) -----
    launches = build_redundant_workload(kernels)
    fault = SchedulerFault(kind=SchedulerFaultKind.PIN_TO_SM, pin_sm=0)
    observed = GPUSimulator(
        gpu, FaultySchedulerWrapper(HALFScheduler(), fault)
    ).run(launches).trace
    deviations = audit_placement(observed, gpu, HALFScheduler(), launches)
    print(
        f"\nperiodic scheduler test: injected pin-to-SM0 fault produced "
        f"{len(deviations)} placement deviations — "
        f"{'DETECTED' if deviations else 'MISSED'} before becoming latent"
    )
    assert deviations

    print("\nsafety case complete: ASIL-D goal supported by B(D)+B(D) "
          "decomposition over diverse-redundant GPU execution.")


if __name__ == "__main__":
    main()
