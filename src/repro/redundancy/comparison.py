"""Output signatures and redundant-output comparison.

The reproduction never executes numerical kernels; what matters for the
safety argument is whether the *outputs of redundant copies agree*.  Each
kernel launch therefore produces an :class:`OutputSignature`: one abstract
token per thread block.  A fault-free block yields a token that depends
only on the logical computation (logical id + block index + input), so
fault-free copies always compare equal.  A fault replaces the token with
an error token derived from the fault's *signature* — two copies corrupted
by the same physical cause in the same way carry identical error tokens
and therefore defeat comparison, which is exactly the common-cause-fault
mechanism the paper's policies exclude.

Comparison itself models step (5) of the paper's protocol: the DCLS CPU
cores compare the result buffers of the redundant kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import RedundancyError
from repro.gpu.trace import ExecutionTrace

__all__ = [
    "Token",
    "OutputSignature",
    "build_signature",
    "ComparisonResult",
    "compare_signatures",
    "majority_vote",
]

#: A thread-block output token: ("ok", logical, tb) or ("err", *signature).
Token = Tuple


@dataclass(frozen=True)
class OutputSignature:
    """Abstract output of one kernel launch.

    Attributes:
        instance_id: the launch that produced the output.
        logical_id: logical computation identity.
        copy_id: redundancy copy index.
        tokens: one token per thread block, in block-index order.
    """

    instance_id: int
    logical_id: int
    copy_id: int
    tokens: Tuple[Token, ...]

    @property
    def corrupted_blocks(self) -> Tuple[int, ...]:
        """Indices of blocks carrying an error token."""
        return tuple(
            i for i, tok in enumerate(self.tokens) if tok and tok[0] == "err"
        )

    @property
    def is_clean(self) -> bool:
        """True when no block was corrupted."""
        return not self.corrupted_blocks


def build_signature(trace: ExecutionTrace, instance_id: int,
                    corruption: Optional[Mapping[Tuple[int, int], Tuple]] = None
                    ) -> OutputSignature:
    """Derive a launch's output signature from the execution trace.

    Args:
        trace: simulation trace containing the launch.
        instance_id: the launch.
        corruption: optional map ``(instance_id, tb_index) -> fault
            signature`` produced by the fault-injection machinery; affected
            blocks get ``("err", *signature)`` tokens.

    Returns:
        The launch's :class:`OutputSignature`.
    """
    span = trace.span(instance_id)
    blocks = trace.blocks_of(instance_id)
    tokens = []
    for record in blocks:
        key = (instance_id, record.tb_index)
        if corruption and key in corruption:
            tokens.append(("err",) + tuple(corruption[key]))
        else:
            tokens.append(("ok", span.logical_id, record.tb_index))
    return OutputSignature(
        instance_id=instance_id,
        logical_id=span.logical_id,
        copy_id=span.copy_id,
        tokens=tuple(tokens),
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Result of comparing all redundant copies of one logical kernel.

    Attributes:
        logical_id: the logical computation compared.
        copies: copy ids that participated.
        mismatching_blocks: block indices on which at least two copies
            disagreed.
        agreeing_corrupt_blocks: block indices on which *all* copies carry
            the *same* error token — silent data corruption that the
            comparison cannot detect.
    """

    logical_id: int
    copies: Tuple[int, ...]
    mismatching_blocks: Tuple[int, ...]
    agreeing_corrupt_blocks: Tuple[int, ...]

    @property
    def error_detected(self) -> bool:
        """True when the DCLS comparison flags a mismatch."""
        return bool(self.mismatching_blocks)

    @property
    def silent_corruption(self) -> bool:
        """True when corruption exists that comparison does NOT detect."""
        return bool(self.agreeing_corrupt_blocks)

    @property
    def all_clean(self) -> bool:
        """True when outputs agree and are uncorrupted."""
        return not self.error_detected and not self.silent_corruption


def compare_signatures(signatures: Sequence[OutputSignature]) -> ComparisonResult:
    """Compare the redundant output signatures of one logical kernel.

    Raises:
        RedundancyError: with fewer than two copies, mismatched logical
            ids, duplicate copy ids, or differing grid sizes (a redundant
            launch construction bug, not a modelled fault).
    """
    if len(signatures) < 2:
        raise RedundancyError("comparison requires >= 2 redundant copies")
    logical_ids = {s.logical_id for s in signatures}
    if len(logical_ids) != 1:
        raise RedundancyError(
            f"cannot compare different logical kernels: {sorted(logical_ids)}"
        )
    copy_ids = [s.copy_id for s in signatures]
    if len(set(copy_ids)) != len(copy_ids):
        raise RedundancyError(f"duplicate copy ids: {copy_ids}")
    lengths = {len(s.tokens) for s in signatures}
    if len(lengths) != 1:
        raise RedundancyError(
            f"redundant copies have different grids: {sorted(lengths)}"
        )

    mismatching = []
    agreeing_corrupt = []
    for tb in range(lengths.pop()):
        tokens = [s.tokens[tb] for s in signatures]
        if any(t != tokens[0] for t in tokens[1:]):
            mismatching.append(tb)
        elif tokens[0][0] == "err":
            agreeing_corrupt.append(tb)
    return ComparisonResult(
        logical_id=signatures[0].logical_id,
        copies=tuple(sorted(copy_ids)),
        mismatching_blocks=tuple(mismatching),
        agreeing_corrupt_blocks=tuple(agreeing_corrupt),
    )


def majority_vote(signatures: Sequence[OutputSignature]
                  ) -> Tuple[Tuple[Token, ...], Tuple[int, ...]]:
    """TMR-style per-block majority vote across >= 3 copies.

    Returns:
        ``(voted_tokens, unresolved_blocks)`` — the voted output, and the
        block indices where no strict majority existed (all copies
        disagree), which a fail-operational system must re-execute.

    Raises:
        RedundancyError: with fewer than three copies (majority of two is
            just comparison) or inconsistent grids.
    """
    if len(signatures) < 3:
        raise RedundancyError("majority vote requires >= 3 copies")
    lengths = {len(s.tokens) for s in signatures}
    if len(lengths) != 1:
        raise RedundancyError("copies have different grids")
    voted = []
    unresolved = []
    for tb in range(lengths.pop()):
        tokens = [s.tokens[tb] for s in signatures]
        counts: Dict[Token, int] = {}
        for t in tokens:
            counts[t] = counts.get(t, 0) + 1
        winner, votes = max(counts.items(), key=lambda kv: kv[1])
        if votes * 2 > len(tokens):
            voted.append(winner)
        else:
            voted.append(tokens[0])
            unresolved.append(tb)
    return tuple(voted), tuple(unresolved)
