"""Diverse-redundant kernel execution (Section IV of the paper).

Contents: the redundant execution manager and workload builder
(:mod:`~repro.redundancy.manager`), output comparison
(:mod:`~repro.redundancy.comparison`), diversity metrics
(:mod:`~repro.redundancy.diversity`), DMR/TMR modes and recovery
(:mod:`~repro.redundancy.modes`) and spheres of replication
(:mod:`~repro.redundancy.sphere`).
"""

from repro.redundancy.comparison import (
    ComparisonResult,
    OutputSignature,
    build_signature,
    compare_signatures,
    majority_vote,
)
from repro.redundancy.diversity import (
    DiversityReport,
    PairDiversity,
    analyze_diversity,
)
from repro.redundancy.manager import (
    RedundantKernelManager,
    RedundantRunResult,
    build_redundant_workload,
)
from repro.redundancy.modes import (
    RecoveryAction,
    RedundancyMode,
    plan_recovery,
    recovery_timeline,
)
from repro.redundancy.diverse_kernels import (
    DiverseGridManager,
    DiverseGridResult,
    reduce_signature,
    reshape_kernel,
)
from repro.redundancy.sphere import (
    PAPER_SOR,
    ComponentProtection,
    Protection,
    SphereOfReplication,
    protection_plan,
)
from repro.redundancy.watchdog import (
    DeadlineWatchdog,
    WatchdogReport,
    WatchdogViolation,
)

__all__ = [
    "ComparisonResult",
    "OutputSignature",
    "build_signature",
    "compare_signatures",
    "majority_vote",
    "DiversityReport",
    "PairDiversity",
    "analyze_diversity",
    "RedundantKernelManager",
    "RedundantRunResult",
    "build_redundant_workload",
    "RedundancyMode",
    "RecoveryAction",
    "plan_recovery",
    "recovery_timeline",
    "SphereOfReplication",
    "Protection",
    "ComponentProtection",
    "protection_plan",
    "PAPER_SOR",
    "DiverseGridManager",
    "DiverseGridResult",
    "reshape_kernel",
    "reduce_signature",
    "DeadlineWatchdog",
    "WatchdogReport",
    "WatchdogViolation",
]
