"""Execution watchdog — detecting non-termination (outcome 3).

Section IV-C(3) of the paper: a kernel-scheduler fault may make
"execution not terminate or terminate with errors for at least one
kernel (e.g. by skipping a thread block)".  Output comparison catches
wrong results; *non-termination* needs a timing monitor.  In real
ASIL-D systems this is a watchdog supervised by the DCLS cores: every
offload carries a deadline derived from its worst-case execution bound,
and missing it triggers the safe reaction within the FTTI.

:class:`DeadlineWatchdog` implements that check over execution traces:
it knows which launches were expected, their deadlines (absolute cycles),
and reports launches that never completed or completed late.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.trace import ExecutionTrace
from repro.iso26262.fault_model import FaultHandlingTimeline

__all__ = ["WatchdogViolation", "WatchdogReport", "DeadlineWatchdog"]


@dataclass(frozen=True)
class WatchdogViolation:
    """One launch that missed its deadline.

    Attributes:
        instance_id: the offending launch.
        deadline: its absolute deadline in cycles.
        completion: observed completion (``None`` = never completed,
            i.e. non-termination/skipped work).
    """

    instance_id: int
    deadline: float
    completion: Optional[float]

    @property
    def non_termination(self) -> bool:
        """True when the launch never completed at all."""
        return self.completion is None


@dataclass(frozen=True)
class WatchdogReport:
    """All watchdog findings of one supervised execution."""

    violations: Tuple[WatchdogViolation, ...]
    checked_launches: int

    @property
    def all_met(self) -> bool:
        """True when every launch completed within its deadline."""
        return not self.violations

    def timeline(self, gpu: GPUConfig, reaction_ms: float
                 ) -> FaultHandlingTimeline:
        """Fault-handling timeline implied by the earliest violation.

        Detection happens at the missed deadline (the watchdog fires);
        handling completes ``reaction_ms`` later (reset + re-execution).
        Returns an all-clear timeline (detected and handled at 0) when no
        violation occurred.
        """
        if not self.violations:
            return FaultHandlingTimeline(detected_at=0.0, handled_at=0.0)
        earliest = min(v.deadline for v in self.violations)
        detected_ms = gpu.cycles_to_ms(earliest)
        return FaultHandlingTimeline(
            detected_at=detected_ms,
            handled_at=detected_ms + reaction_ms,
        )


class DeadlineWatchdog:
    """Supervises launches against per-launch absolute deadlines.

    Args:
        deadlines: map ``instance_id -> absolute deadline (cycles)``.
            Launches absent from the map are unsupervised.

    Use :meth:`for_workload` to derive deadlines from an execution-time
    bound with a safety margin (the usual WCET×margin budgeting).
    """

    def __init__(self, deadlines: Dict[int, float]) -> None:
        if not deadlines:
            raise ConfigurationError("watchdog needs at least one deadline")
        for iid, deadline in deadlines.items():
            if deadline <= 0:
                raise ConfigurationError(
                    f"launch {iid}: deadline must be positive"
                )
        self._deadlines = dict(deadlines)

    # ------------------------------------------------------------------
    @classmethod
    def for_workload(cls, launches: Sequence[KernelLaunch],
                     bound_cycles: float, *,
                     margin: float = 1.2) -> "DeadlineWatchdog":
        """Budget every launch against a common completion bound.

        Args:
            launches: the supervised workload.
            bound_cycles: worst-case completion bound of the *whole*
                workload (e.g. from :mod:`repro.analysis.bounds`).
            margin: safety factor applied to the bound.
        """
        if bound_cycles <= 0:
            raise ConfigurationError("bound must be positive")
        if margin < 1.0:
            raise ConfigurationError("margin must be >= 1.0")
        deadline = bound_cycles * margin
        return cls({l.instance_id: deadline for l in launches})

    # ------------------------------------------------------------------
    def check(self, trace: ExecutionTrace) -> WatchdogReport:
        """Check a trace against the deadlines.

        Launches with no span in the trace count as non-terminating —
        that is precisely the skipped-thread-block scheduler-fault case.
        """
        present = set(trace.instance_ids)
        violations: List[WatchdogViolation] = []
        for iid, deadline in sorted(self._deadlines.items()):
            if iid not in present:
                violations.append(
                    WatchdogViolation(instance_id=iid, deadline=deadline,
                                      completion=None)
                )
                continue
            completion = trace.span(iid).completion
            if completion > deadline:
                violations.append(
                    WatchdogViolation(instance_id=iid, deadline=deadline,
                                      completion=completion)
                )
        return WatchdogReport(
            violations=tuple(violations),
            checked_launches=len(self._deadlines),
        )
