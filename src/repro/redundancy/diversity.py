"""Diversity metrics over execution traces.

Section IV-C of the paper argues SRRS and HALF "schedule any given thread
block from both kernels at different time instants and to different SMs".
This module turns that claim into measured quantities:

* **spatial diversity** — no redundant block pair shares an SM (defeats
  permanent/local faults);
* **temporal diversity** — no redundant block pair overlaps in time
  (SRRS's serialization);
* **phase separation** — for pairs that *do* overlap (HALF), the minimum
  distance, in work units, between the copies' execution phases over the
  overlap window.  A chip-wide transient (voltage droop) corrupts two
  copies *identically* only when they execute the same instruction at the
  same instant; a positive phase separation above the instruction
  granularity therefore suffices for detection — this is the paper's
  "staggered execution" diversity.

Progress is approximated as linear over a block's lifetime (exact under
piecewise-constant equal-share rates when shares do not change, and a
symmetric approximation otherwise — see :meth:`TBRecord.phase_at`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import RedundancyError
from repro.gpu.trace import ExecutionTrace, TBRecord

__all__ = ["PairDiversity", "DiversityReport", "analyze_diversity"]

#: Work-unit distance below which two executions count as phase-aligned
#: (roughly "the same instruction packet").
DEFAULT_PHASE_TOLERANCE = 1.0


def _phase_separation(a: TBRecord, b: TBRecord, work: float) -> Optional[float]:
    """Minimum |work-position difference| between two overlapping blocks.

    Work position of block ``r`` at time ``t`` is
    ``work * (t - r.start) / r.duration`` (linear-progress approximation).
    The difference is linear in ``t``, so its absolute minimum over the
    overlap window occurs at a window endpoint or at the zero crossing.

    Returns ``None`` when the blocks do not overlap in time.
    """
    lo = max(a.start, b.start)
    hi = min(a.end, b.end)
    if hi <= lo:
        return None
    if a.duration == 0 or b.duration == 0:
        return 0.0

    def diff(t: float) -> float:
        wa = work * (t - a.start) / a.duration
        wb = work * (t - b.start) / b.duration
        return wa - wb

    d_lo, d_hi = diff(lo), diff(hi)
    if (d_lo <= 0 <= d_hi) or (d_hi <= 0 <= d_lo):
        return 0.0
    return min(abs(d_lo), abs(d_hi))


@dataclass(frozen=True)
class PairDiversity:
    """Diversity of one redundant thread-block pair.

    Attributes:
        logical_id / tb_index: which computation the pair implements.
        sm_a / sm_b: SMs of the two copies.
        time_overlap: whether the execution intervals intersect.
        time_slack: gap between the intervals (negative = overlap length).
        phase_separation: minimum work-position distance while overlapping
            (``None`` when not overlapping — infinitely separated).
    """

    logical_id: int
    tb_index: int
    sm_a: int
    sm_b: int
    time_overlap: bool
    time_slack: float
    phase_separation: Optional[float]

    @property
    def same_sm(self) -> bool:
        """True when both copies used the same SM."""
        return self.sm_a == self.sm_b

    def is_diverse(self, phase_tolerance: float = DEFAULT_PHASE_TOLERANCE) -> bool:
        """Paper criterion: different SM AND never phase-aligned in time."""
        if self.same_sm:
            return False
        if not self.time_overlap:
            return True
        return (
            self.phase_separation is not None
            and self.phase_separation > phase_tolerance
        )


@dataclass(frozen=True)
class DiversityReport:
    """Aggregated diversity over every redundant pair of a trace.

    Attributes:
        pairs: per-pair details.
        phase_tolerance: tolerance used by :attr:`fully_diverse`.
    """

    pairs: Tuple[PairDiversity, ...]
    phase_tolerance: float = DEFAULT_PHASE_TOLERANCE

    # ------------------------------------------------------------------
    @property
    def total_pairs(self) -> int:
        """Number of redundant block pairs analysed."""
        return len(self.pairs)

    @property
    def same_sm_pairs(self) -> int:
        """Pairs whose copies shared an SM (permanent-CCF exposure)."""
        return sum(1 for p in self.pairs if p.same_sm)

    @property
    def overlapping_pairs(self) -> int:
        """Pairs whose copies overlapped in time."""
        return sum(1 for p in self.pairs if p.time_overlap)

    @property
    def phase_aligned_pairs(self) -> int:
        """Overlapping pairs within the phase tolerance (transient-CCF
        exposure)."""
        return sum(
            1
            for p in self.pairs
            if p.time_overlap
            and p.phase_separation is not None
            and p.phase_separation <= self.phase_tolerance
        )

    @property
    def spatially_diverse(self) -> bool:
        """No pair shares an SM."""
        return self.same_sm_pairs == 0

    @property
    def temporally_diverse(self) -> bool:
        """No pair overlaps in time (SRRS's stronger property)."""
        return self.overlapping_pairs == 0

    @property
    def fully_diverse(self) -> bool:
        """The paper's diverse-redundancy criterion for every pair."""
        return all(p.is_diverse(self.phase_tolerance) for p in self.pairs)

    @property
    def min_time_slack(self) -> Optional[float]:
        """Smallest inter-copy gap across pairs (negative = overlap)."""
        if not self.pairs:
            return None
        return min(p.time_slack for p in self.pairs)

    @property
    def min_phase_separation(self) -> Optional[float]:
        """Smallest phase separation among overlapping pairs."""
        seps = [
            p.phase_separation
            for p in self.pairs
            if p.time_overlap and p.phase_separation is not None
        ]
        return min(seps) if seps else None

    def summary(self) -> str:
        """One-line report string used by benches and examples."""
        return (
            f"pairs={self.total_pairs} same_sm={self.same_sm_pairs} "
            f"overlapping={self.overlapping_pairs} "
            f"phase_aligned={self.phase_aligned_pairs} "
            f"fully_diverse={self.fully_diverse}"
        )


def analyze_diversity(trace: ExecutionTrace, *,
                      copy_a: int = 0, copy_b: int = 1,
                      work_per_block: float = 1000.0,
                      phase_tolerance: float = DEFAULT_PHASE_TOLERANCE
                      ) -> DiversityReport:
    """Measure diversity between two redundancy copies across a trace.

    Args:
        trace: simulation trace containing both copies of every logical
            kernel.
        copy_a / copy_b: the two copies to compare.
        work_per_block: work units per block, used to convert phase
            fractions to work positions (instruction-granularity units).
        phase_tolerance: alignment threshold for :meth:`PairDiversity
            .is_diverse`.

    Raises:
        RedundancyError: when a logical kernel lacks one of the copies.
    """
    pairs: List[PairDiversity] = []
    for logical_id in trace.logical_ids():
        copies = trace.copies_of(logical_id)
        if copy_a not in copies or copy_b not in copies:
            raise RedundancyError(
                f"logical kernel {logical_id} lacks copies "
                f"{copy_a}/{copy_b}: has {sorted(copies)}"
            )
        for ra, rb in trace.paired_blocks(logical_id, copy_a, copy_b):
            overlap = ra.overlaps(rb)
            if overlap:
                slack = -(min(ra.end, rb.end) - max(ra.start, rb.start))
            else:
                slack = max(rb.start - ra.end, ra.start - rb.end)
            pairs.append(
                PairDiversity(
                    logical_id=logical_id,
                    tb_index=ra.tb_index,
                    sm_a=ra.sm,
                    sm_b=rb.sm,
                    time_overlap=overlap,
                    time_slack=slack,
                    phase_separation=_phase_separation(ra, rb, work_per_block),
                )
            )
    return DiversityReport(pairs=tuple(pairs), phase_tolerance=phase_tolerance)
