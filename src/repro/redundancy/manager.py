"""Redundant kernel execution manager — the paper's Section IV-A protocol.

The manager drives the five steps the DCLS host performs per safety-
critical offload:

1. allocate GPU memory for both redundant kernels (modelled by the host
   timeline, :mod:`repro.host`);
2. transfer input data (idem);
3. launch the redundant kernels — built here as an interleaved launch
   sequence (``k0 copy0, k0 copy1, k1 copy0, k1 copy1, ...``) whose
   serial dispatch through the host command path provides the natural
   staggering;
4. collect results from both kernels;
5. compare outcomes on the DCLS cores
   (:func:`repro.redundancy.comparison.compare_signatures`).

The GPU-side timing and placement come from :mod:`repro.gpu.simulator`
under the selected scheduling policy; the returned
:class:`RedundantRunResult` bundles timing, per-kernel comparisons and the
measured diversity report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import RedundancyError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.scheduler.registry import make_scheduler
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.redundancy.comparison import (
    ComparisonResult,
    OutputSignature,
    build_signature,
    compare_signatures,
)
from repro.redundancy.diversity import DiversityReport, analyze_diversity

__all__ = ["RedundantRunResult", "RedundantKernelManager", "build_redundant_workload"]


def build_redundant_workload(kernels: Sequence[KernelDescriptor], *,
                             copies: int = 2, tag: str = "",
                             ) -> List[KernelLaunch]:
    """Build the interleaved redundant launch sequence for a kernel chain.

    Kernel *i* of copy *c* receives instance id ``i * copies + c`` and
    logical id ``i``; it depends on kernel *i-1* of the same copy (stream
    ordering).  Submission order interleaves copies per kernel, mirroring
    a host that enqueues the redundant launch right after the primary.

    Args:
        kernels: the application's kernel chain (one entry per launch).
        copies: redundancy degree (2 = DMR, 3 = TMR, ...).
        tag: label copied into every launch/trace record.

    Raises:
        RedundancyError: for fewer than two copies or an empty chain.
    """
    if copies < 2:
        raise RedundancyError("redundant execution requires >= 2 copies")
    if not kernels:
        raise RedundancyError("kernel chain must not be empty")
    launches: List[KernelLaunch] = []
    for i, kd in enumerate(kernels):
        for c in range(copies):
            deps: Tuple[int, ...]
            if i == 0:
                deps = ()
            else:
                deps = ((i - 1) * copies + c,)
            launches.append(
                KernelLaunch(
                    kernel=kd,
                    instance_id=i * copies + c,
                    copy_id=c,
                    depends_on=deps,
                    logical_id=i,
                    tag=tag,
                )
            )
    return launches


@dataclass(frozen=True)
class RedundantRunResult:
    """Outcome of one redundant execution of a kernel chain.

    Attributes:
        sim: the underlying simulation result (trace, makespan).
        signatures: per-launch output signatures keyed by
            ``(logical_id, copy_id)``.
        comparisons: one DCLS comparison per logical kernel.
        diversity: diversity report between copies 0 and 1.
        copies: redundancy degree used.
    """

    sim: SimulationResult
    signatures: Mapping[Tuple[int, int], OutputSignature]
    comparisons: Tuple[ComparisonResult, ...]
    diversity: DiversityReport
    copies: int

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Cycles from first launch arrival to last block completion."""
        return self.sim.makespan

    @property
    def error_detected(self) -> bool:
        """True when any DCLS comparison flagged a mismatch."""
        return any(c.error_detected for c in self.comparisons)

    @property
    def silent_corruption(self) -> bool:
        """True when identical corruption escaped every comparison."""
        return any(c.silent_corruption for c in self.comparisons)

    @property
    def all_clean(self) -> bool:
        """True when all outputs agree and carry no corruption."""
        return not self.error_detected and not self.silent_corruption

    def comparison_for(self, logical_id: int) -> ComparisonResult:
        """The comparison of one logical kernel.

        Raises:
            RedundancyError: for unknown logical ids.
        """
        for c in self.comparisons:
            if c.logical_id == logical_id:
                return c
        raise RedundancyError(f"no comparison for logical kernel {logical_id}")


class RedundantKernelManager:
    """Executes kernel chains redundantly under a scheduling policy.

    Args:
        gpu: GPU configuration.
        policy: scheduler instance or registry name (``"default"``,
            ``"srrs"``, ``"half"``).
        copies: redundancy degree (2 = DMR as in the paper's evaluation,
            3 = TMR as in its footnote 1).
        validate: forward to the simulator's trace validation.
    """

    def __init__(self, gpu: GPUConfig,
                 policy: Union[str, KernelScheduler] = "srrs",
                 *, copies: int = 2, validate: bool = True) -> None:
        if copies < 2:
            raise RedundancyError("redundancy degree must be >= 2")
        self._gpu = gpu
        self._scheduler = (
            make_scheduler(policy) if isinstance(policy, str) else policy
        )
        self._copies = copies
        self._simulator = GPUSimulator(gpu, self._scheduler, validate=validate)

    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GPUConfig:
        """The GPU configuration in use."""
        return self._gpu

    @property
    def scheduler(self) -> KernelScheduler:
        """The scheduling policy in use."""
        return self._scheduler

    @property
    def copies(self) -> int:
        """Redundancy degree."""
        return self._copies

    # ------------------------------------------------------------------
    def run(self, kernels: Sequence[KernelDescriptor], *, tag: str = "",
            corruption: Optional[Mapping[Tuple[int, int], Tuple]] = None
            ) -> RedundantRunResult:
        """Execute a kernel chain redundantly and compare the outputs.

        Args:
            kernels: the application's kernel chain.
            tag: label for traces/reports.
            corruption: optional fault-effect map ``(instance_id,
                tb_index) -> fault signature`` (produced by
                :mod:`repro.faults`); corrupted blocks yield error tokens.

        Returns:
            A :class:`RedundantRunResult`.
        """
        launches = build_redundant_workload(
            kernels, copies=self._copies, tag=tag
        )
        sim = self._simulator.run(launches)

        signatures: Dict[Tuple[int, int], OutputSignature] = {}
        for launch in launches:
            sig = build_signature(sim.trace, launch.instance_id, corruption)
            signatures[(sig.logical_id, sig.copy_id)] = sig

        comparisons = []
        for logical_id in sorted({l.logical_id for l in launches}):
            group = [
                signatures[(logical_id, c)] for c in range(self._copies)
            ]
            comparisons.append(compare_signatures(group))

        work_hint = max(k.work_per_block for k in kernels)
        diversity = analyze_diversity(
            sim.trace, copy_a=0, copy_b=1, work_per_block=work_hint
        )
        return RedundantRunResult(
            sim=sim,
            signatures=signatures,
            comparisons=tuple(comparisons),
            diversity=diversity,
            copies=self._copies,
        )

    def baseline_makespan(self, kernels: Sequence[KernelDescriptor], *,
                          tag: str = "") -> float:
        """Makespan of the *non-redundant* chain under this policy's GPU.

        Used to express redundancy overheads; always simulated with the
        default scheduler (a non-redundant app is unconstrained).
        """
        from repro.gpu.scheduler.default import DefaultScheduler

        launches: List[KernelLaunch] = []
        for i, kd in enumerate(kernels):
            launches.append(
                KernelLaunch(
                    kernel=kd,
                    instance_id=i,
                    copy_id=0,
                    depends_on=(i - 1,) if i else (),
                    logical_id=i,
                    tag=tag,
                )
            )
        sim = GPUSimulator(self._gpu, DefaultScheduler()).run(launches)
        return sim.makespan
