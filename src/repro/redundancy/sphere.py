"""Spheres of replication (SoR).

Section II-B of the paper: diverse lockstep "is typically applied at
specific spheres of replication (SoR) so that physical redundancy is kept
low" — components outside the sphere rely on lighter mechanisms (ECC,
CRC) instead of replication.  This module captures the SoR chosen by the
paper (the GPU *cores/SMs*) and the resulting protection obligations for
everything outside it, which the safety-case example and documentation
consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Protection",
    "SphereOfReplication",
    "ComponentProtection",
    "protection_plan",
    "PAPER_SOR",
]


class Protection(enum.Enum):
    """How a component is protected against (common-cause) faults."""

    REPLICATED_DIVERSE = "diverse redundant execution"
    ECC = "SECDED ECC"
    CRC = "CRC"
    LOCKSTEP = "DCLS lockstep"
    PERIODIC_TEST = "periodic self-test"


class SphereOfReplication(enum.Enum):
    """Granularity at which computation is replicated."""

    SM_CORES = "GPU SM cores"
    FULL_GPU = "entire GPU"
    FULL_SYSTEM = "entire system (sensors to actuators)"


#: The paper's chosen sphere: replicate computation on the SM cores only.
PAPER_SOR = SphereOfReplication.SM_CORES


@dataclass(frozen=True)
class ComponentProtection:
    """Protection assignment of one platform component.

    Attributes:
        component: component name (Figure 2 vocabulary).
        inside_sphere: whether the component is inside the SoR (and thus
            covered by replication).
        protection: the mechanism protecting it.
        rationale: why this mechanism suffices (paper reference).
    """

    component: str
    inside_sphere: bool
    protection: Protection
    rationale: str


def protection_plan(sphere: SphereOfReplication = PAPER_SOR
                    ) -> Tuple[ComponentProtection, ...]:
    """Protection obligations for every GPU-platform component.

    For the paper's SoR (SM cores) this reproduces the Section III-B
    analysis: register files, SM caches and the shared L2 already carry
    SECDED ECC in NVIDIA GPUs; interconnect/DRAM interfaces use ECC/CRC;
    the kernel scheduler — which has *no* redundancy — needs periodic
    tests so its faults cannot become latent (Section IV-C); and the SM
    cores themselves are covered by diverse redundant execution.
    """
    inside = {
        SphereOfReplication.SM_CORES: {"SM cores (CUDA/LD-ST/SFU)"},
        SphereOfReplication.FULL_GPU: {
            "SM cores (CUDA/LD-ST/SFU)", "register file", "SM L1/shared memory",
            "L2 cache", "kernel scheduler", "DRAM interface",
        },
        SphereOfReplication.FULL_SYSTEM: {
            "SM cores (CUDA/LD-ST/SFU)", "register file", "SM L1/shared memory",
            "L2 cache", "kernel scheduler", "DRAM interface", "DCLS CPU",
            "system interconnect",
        },
    }[sphere]

    def mk(component: str, protection: Protection, rationale: str
           ) -> ComponentProtection:
        return ComponentProtection(
            component=component,
            inside_sphere=component in inside,
            protection=(
                Protection.REPLICATED_DIVERSE
                if component in inside
                else protection
            ),
            rationale=rationale,
        )

    return (
        mk(
            "SM cores (CUDA/LD-ST/SFU)", Protection.REPLICATED_DIVERSE,
            "no explicit protection reported; covered by redundant kernels "
            "with SRRS/HALF diversity (Sections III-B, IV)",
        ),
        mk(
            "register file", Protection.ECC,
            "SECDED in NVIDIA GPUs since Fermi (paper ref. [10])",
        ),
        mk(
            "SM L1/shared memory", Protection.ECC,
            "SECDED in NVIDIA GPUs since Fermi (paper ref. [10])",
        ),
        mk(
            "L2 cache", Protection.ECC,
            "SECDED in NVIDIA GPUs since Fermi (paper ref. [10])",
        ),
        mk(
            "kernel scheduler", Protection.PERIODIC_TEST,
            "no redundancy; periodic tests keep placement faults from "
            "becoming latent (Section IV-C)",
        ),
        mk(
            "DRAM interface", Protection.ECC,
            "storage/communication protected by ECC/CRC (Section II-B)",
        ),
        mk(
            "system interconnect", Protection.CRC,
            "communication interfaces rely on CRC (Section II-B)",
        ),
        mk(
            "DCLS CPU", Protection.LOCKSTEP,
            "ASIL-D microcontroller performing launch/collect/compare "
            "(Section IV-A)",
        ),
    )
