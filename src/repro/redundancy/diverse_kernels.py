"""Diverse kernel generation — the paper's future work, implemented.

Section IV-A: "one could create different kernel grids so that thread
blocks across redundant kernels differ to introduce some form of
diversity. However, the lack of control on the global kernel scheduler
... prevents from guaranteeing specific diversity levels ... Therefore,
in this work we do not study diverse kernel generation, which is part of
our future work."

This module implements that idea as a *structural* diversity mechanism,
orthogonal to the scheduling policies: the redundant copy executes a
**reshaped grid** — each original thread block is split into ``factor``
finer blocks covering the same computation.  The two copies then never
execute the same instruction sequence at the same phase, so a
common-cause fault corrupts them *differently by construction*, even
under the unconstrained default scheduler; the DCLS host reduces the fine
copy's outputs back to original-block granularity before comparison.

Trade-offs faithfully modelled:

* the reshaped copy pays more scheduling overhead (more blocks) and can
  have different occupancy behaviour;
* comparison needs the reduction step (extra DCLS work);
* reshaping requires the kernel to be *divisible* (block-independent
  work) — kernels with per-block shared-memory coupling cannot always be
  split, which is why the paper treats this as future work rather than
  the default mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import RedundancyError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.scheduler.registry import make_scheduler
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.redundancy.comparison import (
    ComparisonResult,
    OutputSignature,
    Token,
    build_signature,
)

__all__ = [
    "reshape_kernel",
    "reduce_signature",
    "DiverseGridResult",
    "DiverseGridManager",
]


def reshape_kernel(kernel: KernelDescriptor, factor: int,
                   name_suffix: str = "#fine") -> KernelDescriptor:
    """Split every thread block of ``kernel`` into ``factor`` finer blocks.

    The reshaped kernel covers the same computation: the grid grows by
    ``factor`` while per-block compute work, memory traffic and thread
    count shrink by it.  Register usage per thread is unchanged.

    Args:
        kernel: the original (coarse) kernel.
        factor: sub-blocks per original block (>= 2 for diversity).

    Raises:
        RedundancyError: when the block cannot be split (fewer threads
            than ``factor``, or indivisible thread count) — the model's
            stand-in for kernels whose code cannot be re-tiled.
    """
    if factor < 2:
        raise RedundancyError("reshape factor must be >= 2 for diversity")
    if kernel.threads_per_block % factor != 0:
        raise RedundancyError(
            f"{kernel.name}: {kernel.threads_per_block} threads/block not "
            f"divisible by factor {factor}"
        )
    fine_threads = kernel.threads_per_block // factor
    if fine_threads < 1:
        raise RedundancyError(f"{kernel.name}: too few threads to split")
    return KernelDescriptor(
        name=kernel.name + name_suffix,
        grid_blocks=kernel.grid_blocks * factor,
        threads_per_block=fine_threads,
        regs_per_thread=kernel.regs_per_thread,
        shared_mem_per_block=max(1, kernel.shared_mem_per_block // factor)
        if kernel.shared_mem_per_block else 0,
        work_per_block=kernel.work_per_block / factor,
        bytes_per_block=kernel.bytes_per_block / factor,
        output_bytes=kernel.output_bytes,
        input_bytes=kernel.input_bytes,
    )


def reduce_signature(fine: OutputSignature, factor: int) -> Tuple[Token, ...]:
    """Reduce a fine-grid signature to original-block granularity.

    Each coarse token merges its ``factor`` sub-block tokens: all-clean
    sub-blocks reduce to the canonical ``("ok", logical, coarse_index)``
    token; any corrupted sub-block yields an error token carrying the
    frozen set of sub-block corruptions (order-independent).

    Raises:
        RedundancyError: when the fine grid is not a multiple of factor.
    """
    if len(fine.tokens) % factor != 0:
        raise RedundancyError(
            f"fine grid of {len(fine.tokens)} blocks is not a multiple "
            f"of factor {factor}"
        )
    reduced: List[Token] = []
    for coarse_index in range(len(fine.tokens) // factor):
        group = fine.tokens[coarse_index * factor:(coarse_index + 1) * factor]
        errors = tuple(sorted(
            (t for t in group if t[0] == "err"), key=repr
        ))
        if errors:
            reduced.append(("err", "reduced", errors))
        else:
            reduced.append(("ok", fine.logical_id, coarse_index))
    return tuple(reduced)


@dataclass(frozen=True)
class DiverseGridResult:
    """Outcome of one structurally-diverse redundant execution.

    Attributes:
        sim: the simulation (coarse copy = copy 0, fine copy = copy 1).
        comparisons: per-logical-kernel comparison at coarse granularity.
        factor: grid-reshape factor of the redundant copy.
    """

    sim: SimulationResult
    comparisons: Tuple[ComparisonResult, ...]
    factor: int

    @property
    def error_detected(self) -> bool:
        """True when the reduced comparison flagged a mismatch."""
        return any(c.error_detected for c in self.comparisons)

    @property
    def silent_corruption(self) -> bool:
        """True when identical corruption survived the reduction."""
        return any(c.silent_corruption for c in self.comparisons)

    @property
    def all_clean(self) -> bool:
        """True when outputs agree and are uncorrupted."""
        return not self.error_detected and not self.silent_corruption


class DiverseGridManager:
    """Redundant execution with a grid-reshaped second copy.

    Args:
        gpu: GPU configuration.
        policy: scheduling policy (structural diversity works even with
            ``"default"`` — that is its selling point).
        factor: reshape factor of the redundant copy.
    """

    def __init__(self, gpu: GPUConfig,
                 policy: str | KernelScheduler = "default", *,
                 factor: int = 2) -> None:
        if factor < 2:
            raise RedundancyError("reshape factor must be >= 2")
        self._gpu = gpu
        self._scheduler = (
            make_scheduler(policy) if isinstance(policy, str) else policy
        )
        self._factor = factor

    @property
    def factor(self) -> int:
        """Grid-reshape factor."""
        return self._factor

    def build_workload(self, kernels) -> List[KernelLaunch]:
        """Interleaved launches: coarse copy 0, reshaped copy 1."""
        launches: List[KernelLaunch] = []
        for i, kd in enumerate(kernels):
            fine = reshape_kernel(kd, self._factor)
            for copy_id, descriptor in ((0, kd), (1, fine)):
                deps = ((i - 1) * 2 + copy_id,) if i else ()
                launches.append(
                    KernelLaunch(
                        kernel=descriptor,
                        instance_id=i * 2 + copy_id,
                        copy_id=copy_id,
                        depends_on=deps,
                        logical_id=i,
                    )
                )
        return launches

    def run(self, kernels, *,
            corruption: Optional[Dict[Tuple[int, int], Tuple]] = None
            ) -> DiverseGridResult:
        """Execute and compare at coarse granularity.

        Args:
            kernels: the application's (coarse) kernel chain.
            corruption: fault-effect map over ``(instance_id, tb_index)``
                — fine-copy indices refer to the reshaped grid.
        """
        launches = self.build_workload(kernels)
        sim = GPUSimulator(self._gpu, self._scheduler).run(launches)

        comparisons: List[ComparisonResult] = []
        for i in range(len(kernels)):
            coarse_sig = build_signature(sim.trace, i * 2, corruption)
            fine_sig = build_signature(sim.trace, i * 2 + 1, corruption)
            reduced = reduce_signature(fine_sig, self._factor)

            mismatching = []
            agreeing_corrupt = []
            for tb, (a, b) in enumerate(zip(coarse_sig.tokens, reduced)):
                a_err = a[0] == "err"
                b_err = b[0] == "err"
                if a_err != b_err:
                    mismatching.append(tb)
                elif a_err and b_err:
                    # both corrupted: identical only if the corruption
                    # payloads coincide — structurally impossible for
                    # real CCFs on differing grids, but checked anyway
                    if a == b:
                        agreeing_corrupt.append(tb)
                    else:
                        mismatching.append(tb)
            comparisons.append(
                ComparisonResult(
                    logical_id=i,
                    copies=(0, 1),
                    mismatching_blocks=tuple(mismatching),
                    agreeing_corrupt_blocks=tuple(agreeing_corrupt),
                )
            )
        return DiverseGridResult(
            sim=sim, comparisons=tuple(comparisons), factor=self._factor
        )
