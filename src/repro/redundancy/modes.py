"""Redundancy modes and fail-operational recovery planning.

The paper evaluates dual modular redundancy (DMR) and notes (footnote 1)
that the approach "could be seamlessly extended to other redundancy levels
(e.g. triple modular redundancy)" and that fail-operational capability is
obtained "by, for instance, reexecuting upon an error detection" within
the FTTI.  This module implements that extension:

* :class:`RedundancyMode` — DMR (detect + re-execute) vs TMR (mask by
  majority vote, re-execute only without a majority);
* :func:`plan_recovery` — what a fail-operational controller does with a
  comparison outcome;
* :func:`recovery_time_cycles` — the re-execution time bound used for the
  FTTI check (one extra serialized redundant pass).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import RedundancyError
from repro.iso26262.fault_model import FaultHandlingTimeline, Ftti
from repro.redundancy.comparison import (
    ComparisonResult,
    OutputSignature,
    majority_vote,
)

__all__ = [
    "RedundancyMode",
    "RecoveryAction",
    "plan_recovery",
    "recovery_timeline",
]


class RedundancyMode(enum.Enum):
    """Modular-redundancy degree."""

    DMR = 2
    TMR = 3

    @property
    def copies(self) -> int:
        """Number of redundant kernel copies the mode launches."""
        return self.value


class RecoveryAction(enum.Enum):
    """What the fail-operational controller must do after comparison."""

    NONE = "none"                    # outputs agree, no corruption known
    REEXECUTE = "re-execute"         # mismatch in DMR: detect-and-retry
    VOTE_CORRECT = "vote-correct"    # TMR: majority masks the error
    UNRECOVERABLE = "unrecoverable"  # silent corruption escaped comparison


def plan_recovery(mode: RedundancyMode, comparison: ComparisonResult,
                  signatures: Sequence[OutputSignature] = ()
                  ) -> RecoveryAction:
    """Decide the recovery action for one logical kernel's comparison.

    * DMR: any mismatch → re-execute the redundant pair.
    * TMR: a mismatch where a strict per-block majority exists → correct
      by vote; otherwise re-execute.
    * Agreeing-but-corrupt outputs are *silent corruption*: the mechanism
      failed, flagged as :attr:`RecoveryAction.UNRECOVERABLE` (this is the
      outcome the paper's diverse scheduling makes impossible for single
      faults).

    Args:
        mode: redundancy mode.
        comparison: DCLS comparison result of this logical kernel.
        signatures: the copies' output signatures; required for TMR vote
            feasibility analysis.

    Raises:
        RedundancyError: TMR planning without the three signatures.
    """
    if comparison.silent_corruption:
        return RecoveryAction.UNRECOVERABLE
    if not comparison.error_detected:
        return RecoveryAction.NONE
    if mode is RedundancyMode.DMR:
        return RecoveryAction.REEXECUTE
    # TMR: see whether every mismatching block has a strict majority
    if len(signatures) < 3:
        raise RedundancyError(
            "TMR recovery planning needs the three output signatures"
        )
    _, unresolved = majority_vote(signatures)
    if unresolved:
        return RecoveryAction.REEXECUTE
    return RecoveryAction.VOTE_CORRECT


def recovery_timeline(action: RecoveryAction, *,
                      detection_ms: float,
                      reexecution_ms: float) -> FaultHandlingTimeline:
    """Build the fault-handling timeline implied by a recovery action.

    Args:
        action: planned recovery.
        detection_ms: time from fault to DCLS comparison mismatch (the
            redundant pass completes, results are compared).
        reexecution_ms: time of one full redundant re-execution.

    Returns:
        A :class:`FaultHandlingTimeline` suitable for
        :meth:`~repro.iso26262.fault_model.FaultHandlingTimeline.check`
        against a goal's FTTI.  ``UNRECOVERABLE`` yields an undetected
        timeline (which always fails the check, by design).
    """
    if action is RecoveryAction.UNRECOVERABLE:
        return FaultHandlingTimeline(detected_at=None, handled_at=None)
    if action is RecoveryAction.NONE:
        return FaultHandlingTimeline(detected_at=detection_ms,
                                     handled_at=detection_ms)
    if action is RecoveryAction.VOTE_CORRECT:
        # voting corrects at comparison time, no re-execution needed
        return FaultHandlingTimeline(detected_at=detection_ms,
                                     handled_at=detection_ms)
    return FaultHandlingTimeline(
        detected_at=detection_ms,
        handled_at=detection_ms + reexecution_ms,
    )
