"""CUDA-like host API over the simulated GPU.

Lets example applications be written like CUDA host code — allocate,
copy, launch, synchronize — while everything executes on the
:mod:`repro.gpu` simulator and the :mod:`repro.host.cpu` DCLS model.  The
API keeps a millisecond host clock: host operations advance it by their
modelled cost, and ``synchronize()`` runs the accumulated launches
through the simulator and advances the clock by the GPU busy time.

This is the substrate behind the high-level
:class:`~repro.host.pipeline.SafetyCriticalOffload` helper and the
example applications.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, RedundancyError
from repro.gpu.config import GPUConfig
from repro.gpu.cots import COTSDevice
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.scheduler.registry import make_scheduler
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.host.cpu import DCLSProcessor, HostOp

__all__ = ["DeviceBuffer", "GPUContext"]


@dataclass(frozen=True)
class DeviceBuffer:
    """A device allocation.

    Attributes:
        buffer_id: unique handle.
        nbytes: size in bytes.
        label: debugging label.
    """

    buffer_id: int
    nbytes: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigurationError("buffer size must be positive")


class GPUContext:
    """A CUDA-context-like session against the simulated GPU.

    Args:
        gpu: GPU configuration.
        policy: kernel-scheduler name or instance.
        device: host/transfer cost parameters.
        dcls: lockstep processor executing the host side (a fresh default
            one when omitted).

    Example::

        ctx = GPUContext(GPUConfig.gpgpusim_like(), policy="srrs")
        buf = ctx.malloc(1 << 20, "frame")
        ctx.memcpy_h2d(buf)
        ctx.launch(kernel, copy_id=0, logical_id=0)
        ctx.launch(kernel, copy_id=1, logical_id=0)
        result = ctx.synchronize()
    """

    def __init__(self, gpu: GPUConfig,
                 policy: str | KernelScheduler = "default", *,
                 device: Optional[COTSDevice] = None,
                 dcls: Optional[DCLSProcessor] = None) -> None:
        self._gpu = gpu
        self._scheduler = (
            make_scheduler(policy) if isinstance(policy, str) else policy
        )
        self._device = device or COTSDevice()
        self._dcls = dcls or DCLSProcessor()
        self._buffer_ids = itertools.count(1)
        self._instance_ids = itertools.count(0)
        self._buffers: Dict[int, DeviceBuffer] = {}
        self._pending: List[KernelLaunch] = []
        self._stream_tail: Dict[int, int] = {}
        self._clock_ms = 0.0
        self._last_result: Optional[SimulationResult] = None

    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GPUConfig:
        """The GPU configuration."""
        return self._gpu

    @property
    def dcls(self) -> DCLSProcessor:
        """The lockstep host processor."""
        return self._dcls

    @property
    def clock_ms(self) -> float:
        """Host wall-clock of the session (milliseconds)."""
        return self._clock_ms

    @property
    def last_result(self) -> Optional[SimulationResult]:
        """Simulation result of the most recent :meth:`synchronize`."""
        return self._last_result

    # ------------------------------------------------------------------
    # protocol steps 1-2: allocate & transfer (on the DCLS cores)
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, label: str = "") -> DeviceBuffer:
        """Allocate device memory (protocol step 1)."""
        buf = DeviceBuffer(
            buffer_id=next(self._buffer_ids), nbytes=nbytes, label=label
        )
        self._buffers[buf.buffer_id] = buf
        self._host_op("cudaMalloc", (buf.buffer_id,), self._device.alloc_ms)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release a device allocation (charges :attr:`COTSDevice.free_ms`)."""
        if buf.buffer_id not in self._buffers:
            raise ConfigurationError(f"unknown or already-freed buffer {buf}")
        del self._buffers[buf.buffer_id]
        self._host_op("cudaFree", (buf.buffer_id,), self._device.free_ms)

    def memcpy_h2d(self, buf: DeviceBuffer, nbytes: Optional[int] = None) -> None:
        """Host-to-device transfer (protocol step 2)."""
        self._check_buffer(buf, nbytes)
        n = nbytes if nbytes is not None else buf.nbytes
        self._host_op(
            "cudaMemcpyH2D", (buf.buffer_id, n),
            self._device.transfer_ms(n / 1e6, self._device.h2d_gbps),
        )

    def memcpy_d2h(self, buf: DeviceBuffer, nbytes: Optional[int] = None) -> None:
        """Device-to-host transfer (protocol step 4, collect results)."""
        self._check_buffer(buf, nbytes)
        n = nbytes if nbytes is not None else buf.nbytes
        self._host_op(
            "cudaMemcpyD2H", (buf.buffer_id, n),
            self._device.transfer_ms(n / 1e6, self._device.d2h_gbps),
        )

    def _check_buffer(self, buf: DeviceBuffer, nbytes: Optional[int]) -> None:
        if buf.buffer_id not in self._buffers:
            raise ConfigurationError(f"buffer {buf.buffer_id} is not allocated")
        if nbytes is not None and nbytes > buf.nbytes:
            raise ConfigurationError(
                f"transfer of {nbytes} B exceeds buffer of {buf.nbytes} B"
            )

    def _host_op(self, name: str, payload: Tuple, duration_ms: float) -> None:
        self._dcls.execute(HostOp(name=name, payload=payload,
                                  duration_ms=duration_ms))
        self._clock_ms += duration_ms

    # ------------------------------------------------------------------
    # protocol step 3: launches
    # ------------------------------------------------------------------
    def launch(self, kernel: KernelDescriptor, *, stream: int = 0,
               copy_id: int = 0, logical_id: Optional[int] = None,
               tag: str = "") -> int:
        """Enqueue a kernel launch on a stream (protocol step 3).

        Launches on the same stream are ordered (each depends on the
        stream's previous launch); streams are independent.

        Returns:
            The launch's instance id (for trace lookups after sync).

        Raises:
            ConfigurationError: for negative ``copy_id`` or ``logical_id``.
        """
        if copy_id < 0:
            raise ConfigurationError(
                f"copy_id must be non-negative, got {copy_id}"
            )
        if logical_id is not None and logical_id < 0:
            raise ConfigurationError(
                f"logical_id must be non-negative, got {logical_id}"
            )
        iid = next(self._instance_ids)
        deps: Tuple[int, ...] = ()
        if stream in self._stream_tail:
            deps = (self._stream_tail[stream],)
        self._pending.append(
            KernelLaunch(
                kernel=kernel,
                instance_id=iid,
                copy_id=copy_id,
                depends_on=deps,
                logical_id=logical_id if logical_id is not None else iid,
                tag=tag,
            )
        )
        self._stream_tail[stream] = iid
        self._host_op("cudaLaunchKernel", (kernel.name, iid),
                      self._device.launch_overhead_ms)
        return iid

    def synchronize(self) -> SimulationResult:
        """Run all enqueued launches to completion (cudaDeviceSynchronize).

        Advances the host clock by the GPU's busy time and clears the
        pending queue and stream ordering.

        Raises:
            RedundancyError: when called with no pending launches — in a
                real program this is legal, but in the model it almost
                always indicates a protocol bug, so it is loud.
        """
        if not self._pending:
            raise RedundancyError("synchronize() with no pending launches")
        sim = GPUSimulator(self._gpu, self._scheduler).run(self._pending)
        self._pending = []
        self._stream_tail = {}
        self._last_result = sim
        busy_ms = self._gpu.cycles_to_ms(sim.trace.busy_cycles)
        self._host_op("cudaDeviceSynchronize", ("sync",),
                      busy_ms + self._device.sync_overhead_ms)
        return sim
