"""The complete safety-critical offload protocol (paper Section IV-A).

:class:`SafetyCriticalOffload` performs the paper's five steps end to end
on top of the CUDA-like :class:`~repro.host.api.GPUContext`:

1. allocate GPU memory for both redundant kernels,
2. transfer input data (once per copy — separate buffers),
3. launch the redundant kernels,
4. collect results from both kernels back to the CPU,
5. compare their outcomes on the DCLS cores.

The result carries the host wall-clock cost of each step, the DCLS
comparison verdicts and the diversity report, so examples and benches can
show both the *safety* outcome and the *performance* price of a chosen
scheduling policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import RedundancyError
from repro.gpu.config import GPUConfig
from repro.gpu.cots import COTSDevice
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.scheduler.base import KernelScheduler
from repro.host.api import DeviceBuffer, GPUContext
from repro.redundancy.comparison import (
    ComparisonResult,
    build_signature,
    compare_signatures,
)
from repro.redundancy.diversity import DiversityReport, analyze_diversity

__all__ = ["OffloadResult", "SafetyCriticalOffload"]


@dataclass(frozen=True)
class OffloadResult:
    """Outcome of one five-step redundant offload.

    Attributes:
        comparisons: DCLS verdict per logical kernel.
        diversity: measured diversity between copies 0 and 1.
        elapsed_ms: host wall-clock of the whole protocol.
        gpu_busy_ms: GPU-active share of the elapsed time.
        detected_mismatch: True when step 5 flagged any disagreement.
    """

    comparisons: Tuple[ComparisonResult, ...]
    diversity: DiversityReport
    elapsed_ms: float
    gpu_busy_ms: float
    detected_mismatch: bool


class SafetyCriticalOffload:
    """Drives redundant kernel offloads through a :class:`GPUContext`.

    Args:
        gpu: GPU configuration.
        policy: scheduling policy (name or instance) — per the paper this
            is chosen per kernel during the analysis phase.
        copies: redundancy degree.
        device: host-cost parameters.
    """

    def __init__(self, gpu: GPUConfig,
                 policy: Union[str, KernelScheduler] = "srrs", *,
                 copies: int = 2,
                 device: Optional[COTSDevice] = None) -> None:
        if copies < 2:
            raise RedundancyError("offload protocol requires >= 2 copies")
        self._copies = copies
        self._ctx = GPUContext(gpu, policy, device=device)

    # ------------------------------------------------------------------
    @property
    def context(self) -> GPUContext:
        """The underlying CUDA-like context."""
        return self._ctx

    @property
    def copies(self) -> int:
        """Redundancy degree."""
        return self._copies

    # ------------------------------------------------------------------
    def run(self, kernels: Sequence[KernelDescriptor], *, tag: str = "",
            corruption: Optional[Mapping[Tuple[int, int], Tuple]] = None
            ) -> OffloadResult:
        """Execute one redundant offload of a kernel chain.

        Args:
            kernels: the application's kernel chain.
            tag: label for traces.
            corruption: optional fault-effect map (see
                :mod:`repro.faults`) applied before the comparison.

        Returns:
            The :class:`OffloadResult`.

        Raises:
            RedundancyError: for an empty kernel chain — the five-step
                protocol has nothing to allocate, transfer or compare.
        """
        if not kernels:
            raise RedundancyError(
                "offload protocol requires a non-empty kernel chain"
            )
        ctx = self._ctx
        start_ms = ctx.clock_ms

        # step 1: allocate per-copy input/output buffers
        in_bytes = max(k.input_bytes for k in kernels)
        out_bytes = max(k.output_bytes for k in kernels)
        in_bufs: List[DeviceBuffer] = []
        out_bufs: List[DeviceBuffer] = []
        for c in range(self._copies):
            in_bufs.append(ctx.malloc(in_bytes, f"{tag}/in{c}"))
            out_bufs.append(ctx.malloc(out_bytes, f"{tag}/out{c}"))

        # step 2: transfer inputs (physically, once per copy)
        for buf in in_bufs:
            ctx.memcpy_h2d(buf)

        # step 3: launch the redundant kernels (interleaved per kernel,
        # one stream per copy so chains stay ordered)
        launch_ids: Dict[Tuple[int, int], int] = {}
        for logical, kd in enumerate(kernels):
            for c in range(self._copies):
                iid = ctx.launch(
                    kd, stream=c, copy_id=c, logical_id=logical, tag=tag
                )
                launch_ids[(logical, c)] = iid
        sim = ctx.synchronize()

        # step 4: collect both result buffers
        for buf in out_bufs:
            ctx.memcpy_d2h(buf)

        # step 5: compare outcomes on the DCLS cores
        comparisons: List[ComparisonResult] = []
        detected = False
        for logical in range(len(kernels)):
            signatures = [
                build_signature(sim.trace, launch_ids[(logical, c)], corruption)
                for c in range(self._copies)
            ]
            comparison = compare_signatures(signatures)
            comparisons.append(comparison)
            match = ctx.dcls.compare_outputs(
                signatures[0].tokens, signatures[1].tokens, out_bytes
            )
            detected = detected or not match or comparison.error_detected

        for buf in in_bufs + out_bufs:
            ctx.free(buf)

        work_hint = max(k.work_per_block for k in kernels)
        diversity = analyze_diversity(
            sim.trace, copy_a=0, copy_b=1, work_per_block=work_hint
        )
        gpu_busy_ms = ctx.gpu.cycles_to_ms(sim.trace.busy_cycles)
        return OffloadResult(
            comparisons=tuple(comparisons),
            diversity=diversity,
            elapsed_ms=ctx.clock_ms - start_ms,
            gpu_busy_ms=gpu_busy_ms,
            detected_mismatch=detected,
        )
