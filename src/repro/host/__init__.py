"""Host-side models: the DCLS lockstep CPU, a CUDA-like API and the
five-step safety-critical offload protocol."""

from repro.host.api import DeviceBuffer, GPUContext
from repro.host.cpu import DCLSConfig, DCLSProcessor, HostOp, LockstepError
from repro.host.pipeline import OffloadResult, SafetyCriticalOffload

__all__ = [
    "DeviceBuffer",
    "GPUContext",
    "DCLSConfig",
    "DCLSProcessor",
    "HostOp",
    "LockstepError",
    "OffloadResult",
    "SafetyCriticalOffload",
]
