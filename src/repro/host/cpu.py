"""DCLS (dual-core lockstep) host CPU model.

The paper's system architecture (Section IV-A) keeps all orchestration on
an ASIL-D-capable microcontroller whose cores run in *diverse lockstep*:
both cores execute the same instruction stream with a temporal stagger,
and a hardware checker compares their outputs, so a common-cause fault
cannot corrupt both identically.  All five protocol steps — allocate,
transfer, launch, collect, compare — execute on these cores and are
"naturally protected against CCFs".

This model provides:

* :class:`DCLSConfig` — stagger, checker latency, compare throughput;
* :class:`DCLSProcessor` — executes *operations* (abstract host work) on
  the lockstep pair, with fault hooks per core; disagreement between the
  cores raises a detected lockstep error (never a silent one, because the
  stagger provides the diversity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.iso26262.asil import Asil

__all__ = ["DCLSConfig", "LockstepError", "DCLSProcessor", "HostOp"]


class LockstepError(Exception):
    """The lockstep checker observed diverging core outputs.

    This is a *detected* error by construction — raising it models the
    hardware checker firing, after which the system resets/retries within
    the FTTI.  It deliberately does not derive from
    :class:`~repro.errors.ReproError`: it represents a modelled hardware
    event, not a library misuse.
    """


@dataclass(frozen=True)
class DCLSConfig:
    """Parameters of the lockstep pair.

    Attributes:
        stagger_cycles: temporal offset between the two cores (diversity
            against transient CCFs); must be positive.
        compare_mbps: throughput of the software output comparison
            (step 5 of the protocol), in MB/s.
        checker_latency_cycles: cycles the hardware checker needs to flag
            a divergence.
        asil: integrity level the DCLS pair is certified to (ASIL-D for
            the platforms the paper considers).
    """

    stagger_cycles: int = 2
    compare_mbps: float = 4000.0
    checker_latency_cycles: int = 3
    asil: Asil = Asil.D

    def __post_init__(self) -> None:
        if self.stagger_cycles <= 0:
            raise ConfigurationError(
                "lockstep stagger must be positive (it *is* the diversity)"
            )
        if self.compare_mbps <= 0:
            raise ConfigurationError("compare throughput must be positive")
        if self.checker_latency_cycles < 0:
            raise ConfigurationError("checker latency cannot be negative")


@dataclass(frozen=True)
class HostOp:
    """One abstract host-side operation executed on the DCLS pair.

    Attributes:
        name: operation label (``"alloc"``, ``"memcpy_h2d"``, ...).
        payload: operation input (compared across cores).
        duration_ms: modelled execution time.
    """

    name: str
    payload: Tuple
    duration_ms: float = 0.0


class DCLSProcessor:
    """Executes host operations redundantly on a lockstep core pair.

    Fault hooks allow tests to corrupt the *output of one core* (or both,
    differently or identically); the checker detects any divergence.  An
    identical corruption of both cores would require the same fault to hit
    both despite the stagger — the DCLS design premise excludes this for
    single faults, and the model enforces it by only offering per-core
    hooks.

    Args:
        config: lockstep parameters.
    """

    def __init__(self, config: Optional[DCLSConfig] = None) -> None:
        self._config = config or DCLSConfig()
        self._log: List[str] = []
        self._fault_core_a: Optional[Callable[[HostOp], Tuple]] = None
        self._fault_core_b: Optional[Callable[[HostOp], Tuple]] = None
        self._elapsed_ms = 0.0

    # ------------------------------------------------------------------
    @property
    def config(self) -> DCLSConfig:
        """Lockstep configuration."""
        return self._config

    @property
    def elapsed_ms(self) -> float:
        """Accumulated host execution time."""
        return self._elapsed_ms

    @property
    def log(self) -> Tuple[str, ...]:
        """Executed-operation log (for tests and examples)."""
        return tuple(self._log)

    def inject_core_fault(self, core: str,
                          effect: Callable[[HostOp], Tuple]) -> None:
        """Attach a fault hook corrupting one core's result.

        Args:
            core: ``"A"`` or ``"B"``.
            effect: maps the operation to the corrupted result.
        """
        if core == "A":
            self._fault_core_a = effect
        elif core == "B":
            self._fault_core_b = effect
        else:
            raise ConfigurationError(f"unknown lockstep core {core!r}")

    def clear_faults(self) -> None:
        """Remove all fault hooks."""
        self._fault_core_a = None
        self._fault_core_b = None

    # ------------------------------------------------------------------
    def execute(self, op: HostOp) -> Tuple:
        """Run one operation on both cores and check the outputs.

        Returns:
            The (agreed) operation result: by default the payload itself —
            the model cares about agreement, not computation.

        Raises:
            LockstepError: when the checker sees the cores diverge.
        """
        result_a = (
            self._fault_core_a(op) if self._fault_core_a else op.payload
        )
        result_b = (
            self._fault_core_b(op) if self._fault_core_b else op.payload
        )
        self._elapsed_ms += op.duration_ms
        self._log.append(op.name)
        if result_a != result_b:
            # repro-lint: allow[RL005] LockstepError models a detected hardware event, deliberately outside ReproError (see class docstring)
            raise LockstepError(
                f"lockstep divergence in {op.name!r}: cores disagree "
                f"(detected after {self._config.checker_latency_cycles} cycles)"
            )
        return result_a

    def compare_outputs(self, output_a: Tuple, output_b: Tuple,
                        nbytes: int) -> bool:
        """Step 5 of the protocol: compare two GPU result buffers.

        Executed redundantly on both lockstep cores like any host op.

        Args:
            output_a / output_b: abstract output signatures.
            nbytes: buffer size, setting the comparison duration.

        Returns:
            True when the buffers match.
        """
        duration = nbytes / (self._config.compare_mbps * 1e6) * 1e3
        op = HostOp(
            name="compare_outputs",
            payload=(output_a == output_b,),
            duration_ms=duration,
        )
        (match,) = self.execute(op)
        return bool(match)
