"""Statistical estimation layer: intervals, estimators, repeaters, compare.

Campaign and stream metrics are Monte-Carlo estimates of rare-event
rates (the paper's quantity of interest is the silent-data-corruption
rate under redundant execution), so every point estimate needs an error
bar and every sampling shortcut needs an unbiasedness argument.  This
package provides both, as pure functions of the *aggregated integer
counts* the runners already fold — never of per-injection records:

* :mod:`repro.stats.intervals` — Wilson, normal and bootstrap confidence
  intervals on rates (:class:`RateEstimate`), plus the exact binomial /
  multinomial resamplers the bootstrap is built on;
* :mod:`repro.stats.estimators` — uniform, stratified and importance
  (Horvitz–Thompson) rate estimators over per-stratum outcome counts,
  with matching variance formulas and bootstrap resampling;
* :mod:`repro.stats.repeater` — repeat-until-confidence bookkeeping:
  target evaluation and the :class:`RepeatResult` returned by
  :func:`repro.campaigns.runner.repeat_campaign` and
  :func:`repro.streams.runner.repeat_stream`;
* :mod:`repro.stats.compare` — two-proportion and bootstrap significance
  tests between two campaign/stream/BENCH artifacts (the ``repro
  compare`` CLI and the CI perf gate sit on top of this).

Everything here is deterministic: bootstrap draws come from explicit
:class:`random.Random` instances seeded by the caller, and all estimates
are pure functions of integer counts, so they can never perturb the
digest bit-identity contracts of the reports they annotate (see
``docs/STATISTICS.md``).
"""

from repro.stats.compare import (
    COMPARE_SCHEMA,
    RateComparison,
    compare_artifacts,
    compare_rates,
    detect_artifact_kind,
    two_proportion_test,
)
from repro.stats.estimators import (
    CANONICAL_KINDS,
    ImportanceRate,
    StratifiedRate,
    UniformRate,
)
from repro.stats.intervals import (
    RateEstimate,
    binomial_draw,
    bootstrap_interval,
    multinomial_draw,
    normal_interval,
    wilson_interval,
)
from repro.stats.repeater import RepeatResult, target_met

__all__ = [
    # intervals
    "RateEstimate",
    "wilson_interval",
    "normal_interval",
    "bootstrap_interval",
    "binomial_draw",
    "multinomial_draw",
    # estimators
    "CANONICAL_KINDS",
    "UniformRate",
    "StratifiedRate",
    "ImportanceRate",
    # repeater
    "RepeatResult",
    "target_met",
    # compare
    "COMPARE_SCHEMA",
    "RateComparison",
    "two_proportion_test",
    "compare_rates",
    "compare_artifacts",
    "detect_artifact_kind",
]
