"""Confidence intervals on rates, from aggregated integer counts.

Three interval constructions cover the estimators in this package:

* :func:`wilson_interval` — the Wilson score interval for a plain
  binomial proportion.  Well-behaved at the boundaries (rate 0 or 1)
  and for the small event counts typical of rare-event campaigns.
* :func:`normal_interval` — a normal (Wald-style) interval around an
  estimator whose variance the caller supplies.  Used by the stratified
  and importance estimators, whose variances are not binomial.
* :func:`bootstrap_interval` — a seeded percentile bootstrap over a
  caller-supplied resampling function.  The resamplers in this module
  (:func:`binomial_draw`, :func:`multinomial_draw`) draw *exactly* from
  the counting distributions, so resampling a campaign costs
  O(resamples x strata) — never O(injections).

All functions return a :class:`RateEstimate`, the value object the
repeaters' stopping rule and the CLI's report rendering consume.
Every random draw comes from an explicit :class:`random.Random`
instance, keeping the library deterministic end to end.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Dict, Sequence

from repro.errors import StatsError

__all__ = [
    "RateEstimate",
    "z_value",
    "wilson_interval",
    "normal_interval",
    "bootstrap_interval",
    "binomial_draw",
    "multinomial_draw",
]

#: Default bootstrap resample count (percentile method).
DEFAULT_RESAMPLES = 1000


@dataclass(frozen=True)
class RateEstimate:
    """A rate estimate with its confidence interval.

    Attributes:
        metric: label of the estimated rate (e.g. ``"sdc"``).
        rate: the point estimate, in ``[0, 1]``.
        low: lower confidence bound (clamped to ``[0, 1]``).
        high: upper confidence bound (clamped to ``[0, 1]``).
        confidence: the two-sided confidence level, in ``(0, 1)``.
        method: interval construction (``wilson``/``normal``/``bootstrap``).
        samples: number of underlying samples (injections, frames).
    """

    metric: str
    rate: float
    low: float
    high: float
    confidence: float
    method: str
    samples: int

    @property
    def half_width(self) -> float:
        """Half the interval width — the ± error bar."""
        return (self.high - self.low) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to the rate; ``inf`` for a zero rate."""
        if self.rate == 0.0:
            return math.inf
        return self.half_width / self.rate

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for reports and ``--json`` output."""
        return {
            "metric": self.metric,
            "rate": self.rate,
            "low": self.low,
            "high": self.high,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "method": self.method,
            "samples": self.samples,
        }

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``0.0450 ±0.0123 (95% CI)``."""
        return (f"{self.rate:.4f} ±{self.half_width:.4f} "
                f"({self.confidence:.0%} CI)")


def z_value(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level.

    Raises:
        StatsError: when ``confidence`` is outside ``(0, 1)``.
    """
    if not 0.0 < confidence < 1.0:
        raise StatsError(
            f"confidence level must be in (0, 1), got {confidence}"
        )
    return NormalDist().inv_cdf((1.0 + confidence) / 2.0)


def _check_counts(events: int, trials: int) -> None:
    """Validate an (events, trials) pair.

    Raises:
        StatsError: on zero/negative trials or events outside
            ``[0, trials]``.
    """
    if trials <= 0:
        raise StatsError(f"interval needs at least one trial, got {trials}")
    if not 0 <= events <= trials:
        raise StatsError(
            f"event count {events} outside [0, {trials}]"
        )


def wilson_interval(events: int, trials: int, *,
                    confidence: float = 0.95,
                    metric: str = "rate") -> RateEstimate:
    """Wilson score interval for a binomial proportion.

    Args:
        events: number of successes.
        trials: number of Bernoulli trials.
        confidence: two-sided confidence level.
        metric: label stamped into the returned estimate.

    Raises:
        StatsError: on invalid counts or confidence level.
    """
    _check_counts(events, trials)
    z = z_value(confidence)
    n = float(trials)
    p = events / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    spread = (z / denom) * math.sqrt(
        p * (1.0 - p) / n + z2 / (4.0 * n * n)
    )
    return RateEstimate(
        metric=metric,
        rate=p,
        low=max(0.0, centre - spread),
        high=min(1.0, centre + spread),
        confidence=confidence,
        method="wilson",
        samples=trials,
    )


def normal_interval(rate: float, variance: float, trials: int, *,
                    confidence: float = 0.95,
                    metric: str = "rate") -> RateEstimate:
    """Normal interval around an estimator with caller-supplied variance.

    Args:
        rate: the point estimate.
        variance: variance *of the estimator* (already divided by the
            sample size where applicable).
        trials: number of underlying samples (bookkeeping only).
        confidence: two-sided confidence level.
        metric: label stamped into the returned estimate.

    Raises:
        StatsError: on a negative variance, non-positive trials, or an
            invalid confidence level.
    """
    if trials <= 0:
        raise StatsError(f"interval needs at least one trial, got {trials}")
    if variance < 0.0:
        raise StatsError(f"estimator variance cannot be negative: {variance}")
    z = z_value(confidence)
    spread = z * math.sqrt(variance)
    return RateEstimate(
        metric=metric,
        rate=rate,
        low=max(0.0, rate - spread),
        high=min(1.0, rate + spread),
        confidence=confidence,
        method="normal",
        samples=trials,
    )


def bootstrap_interval(resample: Callable[[random.Random], float], *,
                       rate: float, trials: int,
                       confidence: float = 0.95,
                       resamples: int = DEFAULT_RESAMPLES,
                       seed: int = 0,
                       metric: str = "rate") -> RateEstimate:
    """Seeded percentile-bootstrap interval.

    Args:
        resample: draws one bootstrap replicate of the rate from the
            supplied PRNG (the estimators in
            :mod:`repro.stats.estimators` provide these).
        rate: the point estimate reported alongside the interval.
        trials: number of underlying samples (bookkeeping only).
        confidence: two-sided confidence level.
        resamples: number of bootstrap replicates.
        seed: PRNG seed — the interval is a pure function of
            ``(counts, confidence, resamples, seed)``.
        metric: label stamped into the returned estimate.

    Raises:
        StatsError: on a non-positive resample count, non-positive
            trials, or an invalid confidence level.
    """
    z_value(confidence)  # validates the confidence level
    if trials <= 0:
        raise StatsError(f"interval needs at least one trial, got {trials}")
    if resamples < 1:
        raise StatsError(f"bootstrap needs >= 1 resample, got {resamples}")
    rng = random.Random(seed)
    draws = sorted(resample(rng) for _ in range(resamples))
    low, high = _percentile_bounds(draws, confidence)
    return RateEstimate(
        metric=metric,
        rate=rate,
        low=max(0.0, low),
        high=min(1.0, high),
        confidence=confidence,
        method="bootstrap",
        samples=trials,
    )


def _percentile_bounds(sorted_draws: Sequence[float],
                       confidence: float) -> "tuple[float, float]":
    """Symmetric percentile bounds over pre-sorted bootstrap draws."""
    count = len(sorted_draws)
    tail = (1.0 - confidence) / 2.0
    lo_index = min(count - 1, max(0, math.floor(tail * (count - 1))))
    hi_index = min(count - 1, max(0, math.ceil((1.0 - tail) * (count - 1))))
    return sorted_draws[lo_index], sorted_draws[hi_index]


# ----------------------------------------------------------------------
# exact count resamplers (the bootstrap's substrate)
# ----------------------------------------------------------------------
def binomial_draw(rng: random.Random, trials: int, p: float) -> int:
    """One exact Binomial(``trials``, ``p``) draw.

    Classic bootstrap resampling of a Bernoulli sample of size ``n`` with
    ``x`` successes is exactly a ``Binomial(n, x/n)`` draw, so this is
    the whole per-stratum bootstrap in one call.  Implemented as inverse
    transform enumerated outward from the distribution's mode, which
    costs an expected O(standard deviation) probability-mass evaluations
    per draw — fast even for million-injection campaigns.

    Raises:
        StatsError: on negative trials or ``p`` outside ``[0, 1]``.
    """
    if trials < 0:
        raise StatsError(f"binomial trials cannot be negative: {trials}")
    if not 0.0 <= p <= 1.0:
        raise StatsError(f"binomial probability outside [0, 1]: {p}")
    if trials == 0 or p == 0.0:
        return 0
    if p == 1.0:
        return trials
    n = trials
    mode = int((n + 1) * p)
    mode = min(mode, n)
    log_pmf_mode = (
        math.lgamma(n + 1) - math.lgamma(mode + 1) - math.lgamma(n - mode + 1)
        + mode * math.log(p) + (n - mode) * math.log1p(-p)
    )
    pmf_mode = math.exp(log_pmf_mode)
    odds = p / (1.0 - p)
    u = rng.random()
    # enumerate k = mode, mode+1, mode-1, mode+2, ... — a fixed order, so
    # subtracting probability mass until u is exhausted is an exact
    # inverse transform of the (reordered) distribution
    u -= pmf_mode
    if u <= 0.0:
        return mode
    pmf_up = pmf_mode
    pmf_down = pmf_mode
    k_up = mode
    k_down = mode
    while k_up < n or k_down > 0:
        if k_up < n:
            pmf_up *= (n - k_up) / (k_up + 1) * odds
            k_up += 1
            u -= pmf_up
            if u <= 0.0:
                return k_up
        if k_down > 0:
            pmf_down *= k_down / ((n - k_down + 1) * odds)
            k_down -= 1
            u -= pmf_down
            if u <= 0.0:
                return k_down
    # float round-off exhausted the mass without crossing zero
    return mode


def multinomial_draw(rng: random.Random, trials: int,
                     probs: Sequence[float]) -> "list[int]":
    """One exact Multinomial(``trials``, ``probs``) draw.

    Implemented by the conditional method: cell by cell, draw a binomial
    of the remaining trials with the cell's renormalised probability.
    Used to bootstrap importance-sampled estimates, where the per-cell
    counts are jointly (not independently) random.

    Raises:
        StatsError: on negative trials, an empty or negative probability
            vector, or probabilities summing to zero.
    """
    if trials < 0:
        raise StatsError(f"multinomial trials cannot be negative: {trials}")
    if not probs:
        raise StatsError("multinomial needs at least one cell")
    if any(p < 0.0 for p in probs):
        raise StatsError("multinomial probabilities cannot be negative")
    mass = float(sum(probs))
    if mass <= 0.0:
        raise StatsError("multinomial probabilities sum to zero")
    counts: "list[int]" = []
    remaining = trials
    for prob in probs[:-1]:
        if remaining == 0 or mass <= 0.0:
            counts.append(0)
            continue
        share = min(1.0, max(0.0, prob / mass))
        drawn = binomial_draw(rng, remaining, share)
        counts.append(drawn)
        remaining -= drawn
        mass -= prob
    counts.append(remaining)
    return counts
