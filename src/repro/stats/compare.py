"""Significance-tested comparison of two run artifacts.

``repro compare A B`` (and the CI perf gate next to
``tools/bench_compare.py``) answer one question: *did this rate actually
move, or is the difference sampling noise?*  Both artifacts must be of
the same kind — campaign reports (:meth:`CampaignReport.to_dict`),
stream reports (:meth:`StreamReport.to_dict`) or ``BENCH_*.json``
performance artifacts — and every shared rate is tested twice:

* a pooled two-proportion z-test (:func:`two_proportion_test`) giving a
  p-value against "the underlying rates are equal";
* a seeded bootstrap interval on the rate *difference*
  (:func:`compare_rates`), giving an error bar on the observed delta.

The comparison operates on the integer counts inside the artifacts, so
it needs no per-injection records and costs O(resamples) per rate.  The
JSON payload (:func:`compare_artifacts`) is schema-stable
(:data:`COMPARE_SCHEMA`); the CLI exit code derives from its
``significant`` field.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import StatsError
from repro.stats.intervals import (
    DEFAULT_RESAMPLES,
    binomial_draw,
    z_value,
)

__all__ = [
    "COMPARE_SCHEMA",
    "RateComparison",
    "two_proportion_test",
    "compare_rates",
    "detect_artifact_kind",
    "compare_artifacts",
    "render_comparison",
]

#: Stable schema tag of the ``repro compare --json`` payload.
COMPARE_SCHEMA = "repro-compare/v1"


@dataclass(frozen=True)
class RateComparison:
    """One rate, tested across two artifacts.

    Attributes:
        metric: the rate's label (e.g. ``"sdc"``, ``"drop"``).
        events_a / trials_a: integer counts in artifact A.
        events_b / trials_b: integer counts in artifact B.
        rate_a / rate_b: the two point estimates.
        diff: ``rate_b - rate_a``.
        diff_low / diff_high: bootstrap confidence bounds on ``diff``.
        z: pooled two-proportion z statistic.
        p_value: two-sided p-value of the z-test.
        significant: ``p_value < alpha``.
        alpha: the significance level tested against.
    """

    metric: str
    events_a: int
    trials_a: int
    events_b: int
    trials_b: int
    rate_a: float
    rate_b: float
    diff: float
    diff_low: float
    diff_high: float
    z: float
    p_value: float
    significant: bool
    alpha: float

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (one entry of the compare payload)."""
        return {
            "metric": self.metric,
            "a": {"events": self.events_a, "trials": self.trials_a,
                  "rate": self.rate_a},
            "b": {"events": self.events_b, "trials": self.trials_b,
                  "rate": self.rate_b},
            "diff": self.diff,
            "diff_low": self.diff_low,
            "diff_high": self.diff_high,
            "z": self.z,
            "p_value": self.p_value,
            "significant": self.significant,
            "alpha": self.alpha,
        }

    def describe(self) -> str:
        """One human-readable comparison line."""
        verdict = "SIGNIFICANT" if self.significant else "noise"
        return (
            f"{self.metric}: {self.rate_a:.5f} -> {self.rate_b:.5f} "
            f"(diff {self.diff:+.5f} "
            f"[{self.diff_low:+.5f}, {self.diff_high:+.5f}], "
            f"p={self.p_value:.4f}) {verdict}"
        )


def two_proportion_test(events_a: int, trials_a: int,
                        events_b: int, trials_b: int
                        ) -> Tuple[float, float]:
    """Pooled two-proportion z-test.

    Returns:
        ``(z, p_value)`` — the z statistic and its two-sided p-value
        under the null hypothesis that both samples share one rate.
        Degenerate pools (0% or 100% everywhere) return ``(0.0, 1.0)``.

    Raises:
        StatsError: on non-positive trial counts or events outside
            their trials.
    """
    for label, events, trials in (("a", events_a, trials_a),
                                  ("b", events_b, trials_b)):
        if trials <= 0:
            raise StatsError(
                f"artifact {label}: needs at least one trial, got {trials}"
            )
        if not 0 <= events <= trials:
            raise StatsError(
                f"artifact {label}: event count {events} outside "
                f"[0, {trials}]"
            )
    pooled = (events_a + events_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if variance <= 0.0:
        return 0.0, 1.0
    z = (events_b / trials_b - events_a / trials_a) / math.sqrt(variance)
    p_value = 2.0 * (1.0 - NormalDist().cdf(abs(z)))
    return z, p_value


def compare_rates(metric: str, a: Tuple[int, int], b: Tuple[int, int], *,
                  alpha: float = 0.05, confidence: float = 0.95,
                  resamples: int = DEFAULT_RESAMPLES,
                  seed: int = 0) -> RateComparison:
    """Test one rate across two artifacts.

    Args:
        metric: label of the rate under test.
        a: ``(events, trials)`` counts of artifact A.
        b: ``(events, trials)`` counts of artifact B.
        alpha: significance level of the z-test.
        confidence: level of the bootstrap interval on the difference.
        resamples: bootstrap replicates.
        seed: bootstrap PRNG seed (the comparison is a pure function of
            counts and parameters).

    Raises:
        StatsError: on malformed counts or parameters.
    """
    if not 0.0 < alpha < 1.0:
        raise StatsError(f"alpha must be in (0, 1), got {alpha}")
    z_value(confidence)  # validates the confidence level
    if resamples < 1:
        raise StatsError(f"bootstrap needs >= 1 resample, got {resamples}")
    events_a, trials_a = a
    events_b, trials_b = b
    z, p_value = two_proportion_test(events_a, trials_a, events_b, trials_b)
    rate_a = events_a / trials_a
    rate_b = events_b / trials_b
    rng = random.Random(seed)
    diffs = sorted(
        binomial_draw(rng, trials_b, rate_b) / trials_b
        - binomial_draw(rng, trials_a, rate_a) / trials_a
        for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    lo_index = min(resamples - 1, max(0, math.floor(tail * (resamples - 1))))
    hi_index = min(resamples - 1,
                   max(0, math.ceil((1.0 - tail) * (resamples - 1))))
    return RateComparison(
        metric=metric,
        events_a=events_a, trials_a=trials_a,
        events_b=events_b, trials_b=trials_b,
        rate_a=rate_a, rate_b=rate_b,
        diff=rate_b - rate_a,
        diff_low=diffs[lo_index], diff_high=diffs[hi_index],
        z=z, p_value=p_value,
        significant=p_value < alpha,
        alpha=alpha,
    )


# ----------------------------------------------------------------------
# artifact-level comparison
# ----------------------------------------------------------------------
def detect_artifact_kind(data: Mapping[str, Any]) -> str:
    """Classify an artifact payload as campaign, stream or bench.

    Campaign reports carry ``policy`` + ``by_kind``; stream reports carry
    ``frames`` + a ``faults`` table; BENCH artifacts carry ``scenarios``
    (and a ``bench-*`` schema tag).

    Raises:
        StatsError: when the payload matches none of the three shapes.
    """
    if not isinstance(data, Mapping):
        raise StatsError(f"artifact must be a JSON object, got {data!r}")
    if "by_kind" in data and "policy" in data:
        return "campaign"
    if "frames" in data and "faults" in data:
        return "stream"
    if "scenarios" in data:
        return "bench"
    raise StatsError(
        "unrecognised artifact: expected a campaign report (policy/"
        "by_kind), a stream report (frames/faults) or a BENCH artifact "
        "(scenarios)"
    )


def _int_field(data: Mapping[str, Any], key: str, where: str) -> int:
    """Fetch one non-negative integer field.

    Raises:
        StatsError: when the field is missing or not a usable count.
    """
    value = data.get(key)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise StatsError(f"{where}: {key!r} must be a count, got {value!r}")
    return value


def _campaign_counts(data: Mapping[str, Any],
                     where: str) -> List[Tuple[str, int, int]]:
    """``(metric, events, trials)`` rows of a campaign report."""
    total = _int_field(data, "total", where)
    return [(metric, _int_field(data, metric, where), total)
            for metric in ("masked", "detected", "sdc")]


def _stream_counts(data: Mapping[str, Any],
                   where: str) -> List[Tuple[str, int, int]]:
    """``(metric, events, trials)`` rows of a stream report."""
    frames = _int_field(data, "frames", where)
    completed = _int_field(data, "completed", where)
    dropped = _int_field(data, "dropped", where)
    misses = _int_field(data, "deadline_misses", where)
    faults = data.get("faults")
    if not isinstance(faults, Mapping):
        raise StatsError(f"{where}: 'faults' must be an object")
    sdc = _int_field(faults, "sdc", where + ".faults")
    injected = _int_field(faults, "injected", where + ".faults")
    rows = [
        ("deadline_miss", misses, completed),
        ("drop", dropped, frames),
        ("unsafe", min(frames, dropped + misses + sdc), frames),
    ]
    if injected > 0:
        rows.append(("fault_sdc", sdc, injected))
    return rows


def _bench_count_pairs(scenario: Mapping[str, Any]
                       ) -> List[Tuple[str, int, int]]:
    """``<m>_events`` / ``<m>_trials`` count pairs inside one scenario."""
    rows: List[Tuple[str, int, int]] = []
    for key in sorted(scenario):
        if not key.endswith("_events"):
            continue
        stem = key[: -len("_events")]
        trials_key = stem + "_trials"
        if trials_key not in scenario:
            continue
        events = scenario[key]
        trials = scenario[trials_key]
        if (isinstance(events, int) and not isinstance(events, bool)
                and isinstance(trials, int) and not isinstance(trials, bool)
                and 0 <= events <= trials and trials > 0):
            rows.append((stem, events, trials))
    return rows


def _paired_rows(kind: str, a: Mapping[str, Any], b: Mapping[str, Any]
                 ) -> List[Tuple[str, Tuple[int, int], Tuple[int, int]]]:
    """Rate rows present in both artifacts, ready for testing."""
    if kind == "campaign":
        rows_a = dict((m, (x, n)) for m, x, n in _campaign_counts(a, "A"))
        rows_b = dict((m, (x, n)) for m, x, n in _campaign_counts(b, "B"))
    elif kind == "stream":
        rows_a = dict((m, (x, n)) for m, x, n in _stream_counts(a, "A"))
        rows_b = dict((m, (x, n)) for m, x, n in _stream_counts(b, "B"))
    else:
        rows_a = {}
        rows_b = {}
        scenarios_a = a.get("scenarios", {})
        scenarios_b = b.get("scenarios", {})
        shared = sorted(set(scenarios_a) & set(scenarios_b))
        for name in shared:
            for stem, events, trials in _bench_count_pairs(scenarios_a[name]):
                rows_a[f"{name}/{stem}"] = (events, trials)
            for stem, events, trials in _bench_count_pairs(scenarios_b[name]):
                rows_b[f"{name}/{stem}"] = (events, trials)
    shared_metrics = sorted(set(rows_a) & set(rows_b))
    return [(m, rows_a[m], rows_b[m]) for m in shared_metrics]


def _bench_deltas(a: Mapping[str, Any],
                  b: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Untested relative deltas of shared scalar BENCH metrics."""
    deltas: List[Dict[str, Any]] = []
    scenarios_a = a.get("scenarios", {})
    scenarios_b = b.get("scenarios", {})
    for name in sorted(set(scenarios_a) & set(scenarios_b)):
        sa, sb = scenarios_a[name], scenarios_b[name]
        for key in sorted(set(sa) & set(sb)):
            va, vb = sa[key], sb[key]
            if (isinstance(va, bool) or isinstance(vb, bool)
                    or not isinstance(va, (int, float))
                    or not isinstance(vb, (int, float))):
                continue
            if key.endswith(("_events", "_trials")):
                continue  # already covered by the proportion rows
            rel = (vb - va) / va if va else None
            deltas.append({
                "metric": f"{name}/{key}",
                "a": va, "b": vb,
                "relative_change": rel,
            })
    return deltas


def compare_artifacts(a: Mapping[str, Any], b: Mapping[str, Any], *,
                      alpha: float = 0.05, confidence: float = 0.95,
                      resamples: int = DEFAULT_RESAMPLES,
                      seed: int = 0) -> Dict[str, Any]:
    """Full significance comparison of two same-kind artifacts.

    Returns:
        The stable :data:`COMPARE_SCHEMA` payload: one tested row per
        shared rate, untested relative deltas for scalar BENCH metrics,
        and an overall ``significant`` flag (any row significant).

    Raises:
        StatsError: on unrecognised payloads, mismatched artifact kinds,
            or no shared rates to test.
    """
    kind_a = detect_artifact_kind(a)
    kind_b = detect_artifact_kind(b)
    if kind_a != kind_b:
        raise StatsError(
            f"cannot compare a {kind_a} artifact against a {kind_b} "
            "artifact — both sides must be the same kind"
        )
    rows = _paired_rows(kind_a, a, b)
    deltas = _bench_deltas(a, b) if kind_a == "bench" else []
    if not rows and not deltas:
        raise StatsError(
            f"the two {kind_a} artifacts share no comparable metrics"
        )
    comparisons = [
        compare_rates(metric, counts_a, counts_b, alpha=alpha,
                      confidence=confidence, resamples=resamples, seed=seed)
        for metric, counts_a, counts_b in rows
    ]
    return {
        "schema": COMPARE_SCHEMA,
        "kind": kind_a,
        "alpha": alpha,
        "confidence": confidence,
        "resamples": resamples,
        "comparisons": [c.to_dict() for c in comparisons],
        "deltas": deltas,
        "significant": any(c.significant for c in comparisons),
    }


def render_comparison(payload: Mapping[str, Any]) -> str:
    """Human-readable rendering of a :func:`compare_artifacts` payload."""
    lines = [f"kind: {payload['kind']}  alpha: {payload['alpha']}"]
    for row in payload["comparisons"]:
        verdict = "SIGNIFICANT" if row["significant"] else "noise"
        lines.append(
            f"  {row['metric']}: {row['a']['rate']:.5f} -> "
            f"{row['b']['rate']:.5f} (diff {row['diff']:+.5f} "
            f"[{row['diff_low']:+.5f}, {row['diff_high']:+.5f}], "
            f"p={row['p_value']:.4f}) {verdict}"
        )
    for row in payload.get("deltas", []):
        rel = row["relative_change"]
        rel_text = f"{rel:+.1%}" if rel is not None else "n/a"
        lines.append(
            f"  {row['metric']}: {row['a']} -> {row['b']} ({rel_text}, "
            "untested scalar)"
        )
    lines.append(
        "verdict: significant difference"
        if payload["significant"] else "verdict: no significant difference"
    )
    return "\n".join(lines)
