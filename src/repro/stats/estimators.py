"""Rate estimators over per-stratum integer outcome counts.

Three estimators mirror the three campaign sampling methods:

* :class:`UniformRate` — plain Monte-Carlo proportion (the legacy v1
  sampler): rate ``x / n``, Wilson interval by default.
* :class:`StratifiedRate` — post-stratified estimator for campaigns that
  fix per-stratum sample sizes: ``r = sum_k p_k * x_k / n_k`` where
  ``p_k`` are the *population* stratum probabilities.  Unbiased whenever
  every stratum with positive population weight was sampled.
* :class:`ImportanceRate` — Horvitz–Thompson estimator for campaigns
  that draw each injection's stratum from a proposal distribution
  ``q_k``: every event in stratum ``k`` carries weight
  ``w_k = p_k / q_k`` and ``r = (1/N) * sum_k w_k * x_k``.  Unbiased
  whenever ``q_k > 0`` wherever ``p_k > 0``.

All three consume only aggregated integer counts — the ``by_kind``
tables :meth:`repro.faults.campaign.CampaignReport.merge_counts` already
folds — so estimation is O(strata) regardless of campaign size, and
bootstrap resampling (via the exact samplers in
:mod:`repro.stats.intervals`) is O(resamples x strata).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Tuple

from repro.errors import StatsError
from repro.stats.intervals import (
    RateEstimate,
    binomial_draw,
    bootstrap_interval,
    multinomial_draw,
    normal_interval,
    wilson_interval,
)

__all__ = [
    "CANONICAL_KINDS",
    "UniformRate",
    "StratifiedRate",
    "ImportanceRate",
]

#: Canonical fault-kind order used by every sampler and estimator.
CANONICAL_KINDS: Tuple[str, ...] = ("ccf", "perm", "seu")

_METHODS = ("auto", "wilson", "normal", "bootstrap")


def _check_method(method: str) -> None:
    """Reject unknown interval methods up front.

    Raises:
        StatsError: when ``method`` is not one of :data:`_METHODS`.
    """
    if method not in _METHODS:
        raise StatsError(
            f"unknown interval method {method!r} "
            f"(expected one of {', '.join(_METHODS)})"
        )


class UniformRate:
    """Binomial proportion estimator for uniformly sampled campaigns.

    Args:
        events: number of samples exhibiting the metric's outcome.
        trials: total number of samples.
        metric: label stamped into produced estimates.

    Raises:
        StatsError: on non-positive trials or events outside
            ``[0, trials]``.
    """

    def __init__(self, events: int, trials: int, *,
                 metric: str = "rate") -> None:
        if trials <= 0:
            raise StatsError(
                f"estimator needs at least one trial, got {trials}"
            )
        if not 0 <= events <= trials:
            raise StatsError(f"event count {events} outside [0, {trials}]")
        self._events = events
        self._trials = trials
        self._metric = metric

    @property
    def trials(self) -> int:
        """Total sample count behind the estimate."""
        return self._trials

    def rate(self) -> float:
        """The point estimate ``events / trials``."""
        return self._events / self._trials

    def variance(self) -> float:
        """Variance of the estimator: ``p (1 - p) / n``."""
        p = self.rate()
        return p * (1.0 - p) / self._trials

    def _resample(self, rng: random.Random) -> float:
        """One bootstrap replicate of the rate."""
        return binomial_draw(rng, self._trials, self.rate()) / self._trials

    def interval(self, *, confidence: float = 0.95, method: str = "auto",
                 resamples: int = 1000, seed: int = 0) -> RateEstimate:
        """Confidence interval; ``auto`` resolves to Wilson.

        Raises:
            StatsError: on an unknown method or invalid parameters.
        """
        _check_method(method)
        if method in ("auto", "wilson"):
            return wilson_interval(self._events, self._trials,
                                   confidence=confidence,
                                   metric=self._metric)
        if method == "normal":
            return normal_interval(self.rate(), self.variance(),
                                   self._trials, confidence=confidence,
                                   metric=self._metric)
        return bootstrap_interval(self._resample, rate=self.rate(),
                                  trials=self._trials,
                                  confidence=confidence,
                                  resamples=resamples, seed=seed,
                                  metric=self._metric)


class _WeightedRate:
    """Shared validation and interval plumbing of the weighted estimators."""

    def __init__(self, strata: Mapping[str, Tuple[int, int]],
                 metric: str) -> None:
        self._strata: Dict[str, Tuple[int, int]] = {}
        for name in sorted(strata):
            events, trials = strata[name]
            if trials < 0:
                raise StatsError(
                    f"stratum {name!r}: negative trial count {trials}"
                )
            if not 0 <= events <= max(trials, 0):
                raise StatsError(
                    f"stratum {name!r}: event count {events} outside "
                    f"[0, {trials}]"
                )
            self._strata[name] = (events, trials)
        self._metric = metric
        if self.trials <= 0:
            raise StatsError("estimator needs at least one trial")

    @property
    def trials(self) -> int:
        """Total sample count across strata."""
        return sum(n for (_x, n) in self._strata.values())

    def rate(self) -> float:
        """The point estimate (subclass responsibility)."""
        raise NotImplementedError

    def variance(self) -> float:
        """Variance of the estimator (subclass responsibility)."""
        raise NotImplementedError

    def _resample(self, rng: random.Random) -> float:
        """One bootstrap replicate (subclass responsibility)."""
        raise NotImplementedError

    def interval(self, *, confidence: float = 0.95, method: str = "auto",
                 resamples: int = 1000, seed: int = 0) -> RateEstimate:
        """Confidence interval; ``auto`` resolves to normal.

        The Wilson construction is specific to a plain binomial
        proportion, which a weighted estimate is not.

        Raises:
            StatsError: on ``method="wilson"`` (undefined here), an
                unknown method, or invalid parameters.
        """
        _check_method(method)
        if method == "wilson":
            raise StatsError(
                "the Wilson interval is only defined for uniform "
                "sampling; use method='normal' or 'bootstrap' on "
                "weighted estimators"
            )
        if method in ("auto", "normal"):
            return normal_interval(self.rate(), self.variance(),
                                   self.trials, confidence=confidence,
                                   metric=self._metric)
        return bootstrap_interval(self._resample, rate=self.rate(),
                                  trials=self.trials,
                                  confidence=confidence,
                                  resamples=resamples, seed=seed,
                                  metric=self._metric)


class StratifiedRate(_WeightedRate):
    """Stratified estimator: fixed per-stratum sample sizes.

    Args:
        strata: ``stratum -> (events, trials)`` integer counts.
        population: ``stratum -> p_k`` population probabilities (the
            nominal fault-mix proportions); must sum to 1 within float
            tolerance.
        metric: label stamped into produced estimates.

    Raises:
        StatsError: when a stratum with positive population weight has
            no samples (the estimate would be biased), when weights do
            not sum to 1, or on malformed counts.
    """

    def __init__(self, strata: Mapping[str, Tuple[int, int]],
                 population: Mapping[str, float], *,
                 metric: str = "rate") -> None:
        super().__init__(strata, metric)
        total = float(sum(population.values()))
        if not 0.999999 < total < 1.000001:
            raise StatsError(
                f"population stratum weights must sum to 1, got {total}"
            )
        self._population: Dict[str, float] = {}
        for name in sorted(population):
            weight = population[name]
            if weight < 0.0:
                raise StatsError(
                    f"stratum {name!r}: negative population weight {weight}"
                )
            if weight > 0.0 and self._strata.get(name, (0, 0))[1] == 0:
                raise StatsError(
                    f"stratum {name!r} carries population weight {weight} "
                    "but has no samples — the stratified estimate would "
                    "be biased"
                )
            self._population[name] = weight

    def rate(self) -> float:
        """Unbiased stratified estimate ``sum_k p_k * x_k / n_k``."""
        rate = 0.0
        for name, weight in self._population.items():
            if weight == 0.0:
                continue
            events, trials = self._strata[name]
            rate += weight * events / trials
        return rate

    def variance(self) -> float:
        """Estimator variance ``sum_k p_k^2 * r_k (1 - r_k) / n_k``."""
        variance = 0.0
        for name, weight in self._population.items():
            if weight == 0.0:
                continue
            events, trials = self._strata[name]
            r_k = events / trials
            variance += weight * weight * r_k * (1.0 - r_k) / trials
        return variance

    def _resample(self, rng: random.Random) -> float:
        """Per-stratum binomial resample (sample sizes are fixed)."""
        rate = 0.0
        for name, weight in self._population.items():
            if weight == 0.0:
                continue
            events, trials = self._strata[name]
            rate += weight * binomial_draw(rng, trials,
                                           events / trials) / trials
        return rate


class ImportanceRate(_WeightedRate):
    """Horvitz–Thompson estimator: strata drawn from a proposal.

    Args:
        strata: ``stratum -> (events, trials)`` integer counts, where
            ``trials`` is how often the proposal landed in the stratum.
        weights: ``stratum -> w_k = p_k / q_k`` importance weights.
        metric: label stamped into produced estimates.

    Raises:
        StatsError: on negative weights, a sampled stratum with no
            weight, or malformed counts.
    """

    def __init__(self, strata: Mapping[str, Tuple[int, int]],
                 weights: Mapping[str, float], *,
                 metric: str = "rate") -> None:
        super().__init__(strata, metric)
        self._weights: Dict[str, float] = {}
        for name in sorted(self._strata):
            if self._strata[name][1] == 0:
                continue
            if name not in weights:
                raise StatsError(
                    f"stratum {name!r} was sampled but has no importance "
                    "weight"
                )
            weight = float(weights[name])
            if weight < 0.0:
                raise StatsError(
                    f"stratum {name!r}: negative importance weight {weight}"
                )
            self._weights[name] = weight

    def rate(self) -> float:
        """Horvitz–Thompson estimate ``(1/N) * sum_k w_k * x_k``."""
        total = self.trials
        weighted = sum(self._weights[name] * self._strata[name][0]
                       for name in self._weights)
        return weighted / total

    def variance(self) -> float:
        """Estimator variance ``(E[v^2] - r^2) / N``.

        Each sample contributes ``v = w_k`` on an event and ``0``
        otherwise, so ``E[v^2]`` is ``(1/N) * sum_k w_k^2 * x_k``.
        """
        total = self.trials
        second_moment = sum(
            self._weights[name] ** 2 * self._strata[name][0]
            for name in self._weights
        ) / total
        rate = self.rate()
        return max(0.0, second_moment - rate * rate) / total

    def _resample(self, rng: random.Random) -> float:
        """Joint multinomial resample over (stratum, event) cells.

        Under importance sampling the per-stratum sample sizes are
        themselves random, so the bootstrap must resample the full
        (stratum x event) contingency table, not each stratum
        independently.
        """
        total = self.trials
        names = sorted(self._weights)
        cells: "list[float]" = []
        values: "list[float]" = []
        for name in names:
            events, trials = self._strata[name]
            cells.append(events / total)
            values.append(self._weights[name])
            cells.append((trials - events) / total)
            values.append(0.0)
        counts = multinomial_draw(rng, total, cells)
        weighted = sum(v * c for v, c in zip(values, counts))
        return weighted / total
