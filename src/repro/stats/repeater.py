"""Repeat-until-confidence bookkeeping shared by campaigns and streams.

A *repeater* keeps extending a deterministic run — additional shard
batches of a campaign's indexed fault population, or geometrically more
frames of a stream soak — until the confidence interval on a chosen
metric is tight enough, or a hard budget cap is hit.  This module holds
the pieces both repeaters share: the stopping rule (:func:`target_met`)
and the :class:`RepeatResult` value object they return.

The execution loops themselves live with their subsystems
(:func:`repro.campaigns.runner.repeat_campaign`,
:func:`repro.streams.runner.repeat_stream`) because stopping must be a
pure function of the *data prefix*, not of scheduling: a campaign
repeater stops at the first shard-prefix whose fold meets the target, so
the stop point — and therefore the returned aggregate — is bit-identical
for any worker count or kill/resume history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import RepeatBudgetError, StatsError
from repro.stats.intervals import RateEstimate

__all__ = ["RepeatResult", "target_met"]

#: ``stop_reason`` when the CI target was met within budget.
STOP_TARGET = "target_met"
#: ``stop_reason`` when the budget cap was exhausted first.
STOP_BUDGET = "budget_exhausted"


def target_met(estimate: RateEstimate, *,
               relative_half_width: Optional[float] = None,
               half_width: Optional[float] = None) -> bool:
    """Whether an estimate satisfies the repeater's CI-width target.

    Exactly one of the two targets must be given.  A relative target is
    never met while the rate estimate is zero (its relative half-width
    is infinite) — the repeater keeps sampling until it has seen events.

    Args:
        estimate: the interval to test.
        relative_half_width: target on ``half_width / rate``.
        half_width: absolute target on the half-width.

    Raises:
        StatsError: when neither or both targets are given, or a target
            is not positive.
    """
    if (relative_half_width is None) == (half_width is None):
        raise StatsError(
            "exactly one of relative_half_width / half_width must be set"
        )
    if relative_half_width is not None:
        if relative_half_width <= 0.0:
            raise StatsError(
                f"relative_half_width must be positive: {relative_half_width}"
            )
        return estimate.relative_half_width <= relative_half_width
    if half_width <= 0.0:
        raise StatsError(f"half_width must be positive: {half_width}")
    return estimate.half_width <= half_width


@dataclass(frozen=True)
class RepeatResult:
    """Outcome of one repeat-until-confidence run.

    Attributes:
        metric: the targeted rate (e.g. ``"sdc"``, ``"deadline_miss"``).
        converged: whether the CI target was met within budget.
        stop_reason: ``"target_met"`` or ``"budget_exhausted"``.
        batches: number of evaluation points the repeater folded.
        total: samples (injections / frames) in the returned aggregate.
        estimate: the final interval on the targeted metric.
        history: one interval per evaluation point, in order — the
            convergence trajectory.
        report: the final aggregate report
            (:class:`~repro.faults.campaign.CampaignReport` or
            :class:`~repro.streams.report.StreamReport`).
        error: human-readable budget-failure description (``None`` when
            converged); :meth:`check` raises it as a typed error.
    """

    metric: str
    converged: bool
    stop_reason: str
    batches: int
    total: int
    estimate: RateEstimate
    report: Any
    history: Tuple[RateEstimate, ...] = field(default_factory=tuple)
    error: Optional[str] = None

    def check(self) -> "RepeatResult":
        """Return ``self`` when converged, raise otherwise.

        Raises:
            RepeatBudgetError: when the budget cap was exhausted before
                the CI target was met (the message is :attr:`error`).
        """
        if not self.converged:
            raise RepeatBudgetError(
                self.error or
                f"repeat budget exhausted before the CI target on "
                f"{self.metric!r} was met"
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for CLI ``--json`` output.

        Contains the embedded report's canonical dict, the final
        estimate, and the convergence trajectory.
        """
        return {
            "metric": self.metric,
            "converged": self.converged,
            "stop_reason": self.stop_reason,
            "batches": self.batches,
            "total": self.total,
            "estimate": self.estimate.to_dict(),
            "history": [e.to_dict() for e in self.history],
            "error": self.error,
            "report": self.report.to_dict(),
        }
