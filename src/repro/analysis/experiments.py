"""Shared experiment runners behind the benchmark harness.

Each function regenerates one paper artifact (or extension experiment)
and returns structured rows, so benches, tests and EXPERIMENTS.md all
consume the same code path.  See DESIGN.md's per-experiment index.

.. deprecated::
    These runners are thin compatibility shims: each one now builds its
    specs through the scenario registry (:mod:`repro.api.scenarios`) and
    executes them on the :class:`repro.api.Engine`, then reshapes the
    uniform :class:`~repro.api.artifact.RunArtifact` list into the legacy
    row dataclasses.  New code should call the engine directly::

        artifacts = repro.run_many(repro.build_scenario("fig4"), workers=4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.artifact import RunArtifact
from repro.api.engine import Engine
from repro.api.scenarios import FIG3_SYNTHETICS, build_scenario
from repro.faults.campaign import CampaignConfig
from repro.gpu.config import GPUConfig
from repro.gpu.cots import COTSDevice
from repro.gpu.scheduler.registry import PAPER_POLICIES
from repro.workloads.rodinia import FIG4_BENCHMARKS, FIG5_BENCHMARKS

__all__ = [
    "Fig4Row",
    "fig4_scheduler_comparison",
    "Fig5Row",
    "fig5_cots_comparison",
    "Fig3Row",
    "fig3_kernel_categories",
    "CoverageRow",
    "fault_coverage_by_policy",
    "PolicyFitRow",
    "policy_fit_matrix",
    "dispatch_latency_sweep",
    "sm_count_sweep",
]

_ENGINE = Engine()


def _by_tag_and_policy(artifacts: Sequence[RunArtifact]
                       ) -> Dict[Tuple[str, str], RunArtifact]:
    return {(a.spec.tag, a.spec.policy): a for a in artifacts}


# ----------------------------------------------------------------------
# E3 — Figure 4
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Row:
    """One benchmark of the Figure 4 comparison.

    Attributes:
        benchmark: Rodinia benchmark name.
        default_cycles: GPU busy cycles of redundant execution under the
            stock scheduler (the normalisation base).
        half_ratio / srrs_ratio: normalized busy cycles under HALF / SRRS.
        half_diverse / srrs_diverse: whether the run satisfied the
            diverse-redundancy criterion (must be True — that is the
            point of the policies).
        default_diverse: diversity under the stock scheduler (typically
            False — the motivation).
    """

    benchmark: str
    default_cycles: float
    half_ratio: float
    srrs_ratio: float
    default_diverse: bool
    half_diverse: bool
    srrs_diverse: bool


def fig4_scheduler_comparison(gpu: Optional[GPUConfig] = None,
                              benchmarks: Sequence[str] = FIG4_BENCHMARKS
                              ) -> List[Fig4Row]:
    """Regenerate Figure 4: normalized redundant-execution cycles.

    Simulates each benchmark's redundant kernel chain under the default,
    HALF and SRRS policies on the 6-SM GPGPU-Sim-like GPU and normalizes
    GPU busy cycles to the default scheduler.
    """
    artifacts = _by_tag_and_policy(
        _ENGINE.run_many(build_scenario("fig4", benchmarks=benchmarks, gpu=gpu))
    )
    rows: List[Fig4Row] = []
    for name in benchmarks:
        cycles: Dict[str, float] = {}
        diverse: Dict[str, bool] = {}
        for policy in PAPER_POLICIES:
            artifact = artifacts[(name, policy)]
            cycles[policy] = artifact.timing.busy_cycles
            diverse[policy] = artifact.diversity.fully_diverse
        base = cycles["default"]
        rows.append(
            Fig4Row(
                benchmark=name,
                default_cycles=base,
                half_ratio=cycles["half"] / base,
                srrs_ratio=cycles["srrs"] / base,
                default_diverse=diverse["default"],
                half_diverse=diverse["half"],
                srrs_diverse=diverse["srrs"],
            )
        )
    return rows


# ----------------------------------------------------------------------
# E4 — Figure 5
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Row:
    """One benchmark of the Figure 5 COTS comparison (milliseconds)."""

    benchmark: str
    baseline_ms: float
    redundant_ms: float

    @property
    def ratio(self) -> float:
        """Redundant-serialized over baseline end-to-end time."""
        return self.redundant_ms / self.baseline_ms


def fig5_cots_comparison(device: Optional[COTSDevice] = None,
                         benchmarks: Sequence[str] = FIG5_BENCHMARKS
                         ) -> List[Fig5Row]:
    """Regenerate Figure 5: COTS baseline vs redundant-serialized times."""
    artifacts = _ENGINE.run_many(
        build_scenario("fig5", benchmarks=benchmarks, device=device)
    )
    return [
        Fig5Row(
            benchmark=a.cots.benchmark,
            baseline_ms=a.cots.baseline_ms,
            redundant_ms=a.cots.redundant_ms,
        )
        for a in artifacts
    ]


# ----------------------------------------------------------------------
# E2 — Figure 3
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Row:
    """Classification evidence for one kernel (Figure 3 taxonomy)."""

    kernel: str
    category: str
    isolated_cycles: float
    overlap_fraction: float
    resident_fraction: float
    recommended_policy: str


def fig3_kernel_categories(gpu: Optional[GPUConfig] = None) -> List[Fig3Row]:
    """Regenerate Figure 3 with synthetic archetype kernels.

    Builds one representative kernel per category (plus a narrow
    myocyte-like one) and reports the measured overlap evidence.
    """
    artifacts = _ENGINE.run_many(build_scenario("fig3", gpu=gpu))
    rows: List[Fig3Row] = []
    for artifact in artifacts:
        row = artifact.classification[0]
        rows.append(
            Fig3Row(
                kernel=row.kernel,
                category=row.category,
                isolated_cycles=row.isolated_cycles,
                overlap_fraction=row.overlap_fraction,
                resident_fraction=row.resident_fraction,
                recommended_policy=row.recommended_policy,
            )
        )
    return rows


# ----------------------------------------------------------------------
# E5 — fault coverage by policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoverageRow:
    """Fault-injection outcome of one policy (extension experiment E5)."""

    policy: str
    total: int
    masked: int
    detected: int
    sdc: int
    coverage: float


def fault_coverage_by_policy(gpu: Optional[GPUConfig] = None,
                             benchmark: str = "hotspot",
                             config: Optional[CampaignConfig] = None
                             ) -> List[CoverageRow]:
    """Run the E5 campaign for all three policies on one benchmark."""
    artifacts = _ENGINE.run_many(
        build_scenario("coverage", benchmark=benchmark, gpu=gpu, config=config)
    )
    return [
        CoverageRow(
            policy=a.faults.policy,
            total=a.faults.total,
            masked=a.faults.masked,
            detected=a.faults.detected,
            sdc=a.faults.sdc,
            coverage=a.faults.detection_coverage,
        )
        for a in artifacts
    ]


# ----------------------------------------------------------------------
# E6 — policy-fit matrix (Section IV-D)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyFitRow:
    """Overhead of each policy for one kernel category."""

    kernel: str
    category: str
    half_ratio: float
    srrs_ratio: float
    best_policy: str


def policy_fit_matrix(gpu: Optional[GPUConfig] = None) -> List[PolicyFitRow]:
    """Measure each policy's overhead per kernel category (Section IV-D).

    Expected: SRRS wins for short and heavy kernels, HALF for friendly
    ones — with the narrow-long kernel as the extreme SRRS loss case.
    """
    artifacts = _by_tag_and_policy(
        _ENGINE.run_many(build_scenario("policyfit", gpu=gpu))
    )
    rows: List[PolicyFitRow] = []
    for name in FIG3_SYNTHETICS:
        tag = f"synthetic/{name}"
        cycles = {
            policy: artifacts[(tag, policy)].timing.busy_cycles
            for policy in PAPER_POLICIES
        }
        classification = artifacts[(tag, PAPER_POLICIES[0])].classification[0]
        base = cycles["default"]
        half_ratio = cycles["half"] / base
        srrs_ratio = cycles["srrs"] / base
        rows.append(
            PolicyFitRow(
                kernel=classification.kernel,
                category=classification.category,
                half_ratio=half_ratio,
                srrs_ratio=srrs_ratio,
                best_policy="half" if half_ratio < srrs_ratio else "srrs",
            )
        )
    return rows


# ----------------------------------------------------------------------
# E9 — ablation sweeps
# ----------------------------------------------------------------------
def dispatch_latency_sweep(latencies: Sequence[float],
                           benchmark: str = "hotspot",
                           gpu: Optional[GPUConfig] = None
                           ) -> List[Tuple[float, float, float]]:
    """Sweep the host dispatch latency (the natural-staggering knob).

    Returns:
        ``(latency, half_ratio, srrs_ratio)`` tuples — how each policy's
        overhead depends on the serial-dispatch gap.
    """
    artifacts = _by_tag_and_policy(
        _ENGINE.run_many(
            build_scenario("sweep-dispatch", latencies=latencies,
                           benchmark=benchmark, gpu=gpu)
        )
    )
    rows: List[Tuple[float, float, float]] = []
    for latency in latencies:
        tag = f"{benchmark}@{latency:g}"
        cycles = {
            policy: artifacts[(tag, policy)].timing.busy_cycles
            for policy in PAPER_POLICIES
        }
        rows.append(
            (
                latency,
                cycles["half"] / cycles["default"],
                cycles["srrs"] / cycles["default"],
            )
        )
    return rows


def sm_count_sweep(sm_counts: Sequence[int], benchmark: str = "hotspot",
                   gpu: Optional[GPUConfig] = None
                   ) -> List[Tuple[int, float, float]]:
    """Sweep the SM count (scaling toward bigger automotive GPUs).

    Returns:
        ``(num_sms, half_ratio, srrs_ratio)`` tuples.
    """
    artifacts = _by_tag_and_policy(
        _ENGINE.run_many(
            build_scenario("sweep-sms", sm_counts=sm_counts,
                           benchmark=benchmark, gpu=gpu)
        )
    )
    rows: List[Tuple[int, float, float]] = []
    for count in sm_counts:
        tag = f"{benchmark}@{count}sm"
        cycles = {
            policy: artifacts[(tag, policy)].timing.busy_cycles
            for policy in PAPER_POLICIES
        }
        rows.append(
            (
                count,
                cycles["half"] / cycles["default"],
                cycles["srrs"] / cycles["default"],
            )
        )
    return rows
