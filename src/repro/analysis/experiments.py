"""Shared experiment runners behind the benchmark harness.

Each function regenerates one paper artifact (or extension experiment)
and returns structured rows, so benches, tests and EXPERIMENTS.md all
consume the same code path.  See DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.campaign import CampaignConfig, CampaignReport, FaultCampaign
from repro.gpu.config import GPUConfig
from repro.gpu.cots import COTSDevice, cots_end_to_end
from repro.gpu.scheduler.registry import PAPER_POLICIES
from repro.redundancy.manager import RedundantKernelManager
from repro.workloads.classify import classify_kernel, recommend_policy
from repro.workloads.rodinia import (
    FIG4_BENCHMARKS,
    FIG5_BENCHMARKS,
    get_benchmark,
)
from repro.workloads.synthetic import (
    make_friendly_kernel,
    make_heavy_kernel,
    make_narrow_kernel,
    make_short_kernel,
)

__all__ = [
    "Fig4Row",
    "fig4_scheduler_comparison",
    "Fig5Row",
    "fig5_cots_comparison",
    "Fig3Row",
    "fig3_kernel_categories",
    "CoverageRow",
    "fault_coverage_by_policy",
    "PolicyFitRow",
    "policy_fit_matrix",
    "dispatch_latency_sweep",
    "sm_count_sweep",
]


# ----------------------------------------------------------------------
# E3 — Figure 4
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Row:
    """One benchmark of the Figure 4 comparison.

    Attributes:
        benchmark: Rodinia benchmark name.
        default_cycles: GPU busy cycles of redundant execution under the
            stock scheduler (the normalisation base).
        half_ratio / srrs_ratio: normalized busy cycles under HALF / SRRS.
        half_diverse / srrs_diverse: whether the run satisfied the
            diverse-redundancy criterion (must be True — that is the
            point of the policies).
        default_diverse: diversity under the stock scheduler (typically
            False — the motivation).
    """

    benchmark: str
    default_cycles: float
    half_ratio: float
    srrs_ratio: float
    default_diverse: bool
    half_diverse: bool
    srrs_diverse: bool


def fig4_scheduler_comparison(gpu: Optional[GPUConfig] = None,
                              benchmarks: Sequence[str] = FIG4_BENCHMARKS
                              ) -> List[Fig4Row]:
    """Regenerate Figure 4: normalized redundant-execution cycles.

    Simulates each benchmark's redundant kernel chain under the default,
    HALF and SRRS policies on the 6-SM GPGPU-Sim-like GPU and normalizes
    GPU busy cycles to the default scheduler.
    """
    gpu = gpu or GPUConfig.gpgpusim_like()
    rows: List[Fig4Row] = []
    for name in benchmarks:
        bench = get_benchmark(name)
        cycles: Dict[str, float] = {}
        diverse: Dict[str, bool] = {}
        for policy in PAPER_POLICIES:
            run = RedundantKernelManager(gpu, policy).run(
                list(bench.kernels), tag=name
            )
            cycles[policy] = run.sim.trace.busy_cycles
            diverse[policy] = run.diversity.fully_diverse
        base = cycles["default"]
        rows.append(
            Fig4Row(
                benchmark=name,
                default_cycles=base,
                half_ratio=cycles["half"] / base,
                srrs_ratio=cycles["srrs"] / base,
                default_diverse=diverse["default"],
                half_diverse=diverse["half"],
                srrs_diverse=diverse["srrs"],
            )
        )
    return rows


# ----------------------------------------------------------------------
# E4 — Figure 5
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Row:
    """One benchmark of the Figure 5 COTS comparison (milliseconds)."""

    benchmark: str
    baseline_ms: float
    redundant_ms: float

    @property
    def ratio(self) -> float:
        """Redundant-serialized over baseline end-to-end time."""
        return self.redundant_ms / self.baseline_ms


def fig5_cots_comparison(device: Optional[COTSDevice] = None,
                         benchmarks: Sequence[str] = FIG5_BENCHMARKS
                         ) -> List[Fig5Row]:
    """Regenerate Figure 5: COTS baseline vs redundant-serialized times."""
    device = device or COTSDevice()
    rows: List[Fig5Row] = []
    for name in benchmarks:
        bench = get_benchmark(name)
        rows.append(
            Fig5Row(
                benchmark=name,
                baseline_ms=cots_end_to_end(bench, device).total_ms,
                redundant_ms=cots_end_to_end(
                    bench, device, redundant=True
                ).total_ms,
            )
        )
    return rows


# ----------------------------------------------------------------------
# E2 — Figure 3
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Row:
    """Classification evidence for one kernel (Figure 3 taxonomy)."""

    kernel: str
    category: str
    isolated_cycles: float
    overlap_fraction: float
    resident_fraction: float
    recommended_policy: str


def fig3_kernel_categories(gpu: Optional[GPUConfig] = None) -> List[Fig3Row]:
    """Regenerate Figure 3 with synthetic archetype kernels.

    Builds one representative kernel per category (plus a narrow
    myocyte-like one) and reports the measured overlap evidence.
    """
    gpu = gpu or GPUConfig.gpgpusim_like()
    kernels = [
        make_short_kernel(gpu),
        make_heavy_kernel(gpu),
        make_friendly_kernel(gpu),
        make_narrow_kernel(gpu, name="synthetic/narrow-long"),
    ]
    rows: List[Fig3Row] = []
    for kernel in kernels:
        report = classify_kernel(kernel, gpu)
        rows.append(
            Fig3Row(
                kernel=kernel.name,
                category=report.category.value,
                isolated_cycles=report.isolated_cycles,
                overlap_fraction=report.overlap_fraction,
                resident_fraction=report.resident_fraction,
                recommended_policy=recommend_policy(report.category),
            )
        )
    return rows


# ----------------------------------------------------------------------
# E5 — fault coverage by policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoverageRow:
    """Fault-injection outcome of one policy (extension experiment E5)."""

    policy: str
    total: int
    masked: int
    detected: int
    sdc: int
    coverage: float


def fault_coverage_by_policy(gpu: Optional[GPUConfig] = None,
                             benchmark: str = "hotspot",
                             config: Optional[CampaignConfig] = None
                             ) -> List[CoverageRow]:
    """Run the E5 campaign for all three policies on one benchmark."""
    gpu = gpu or GPUConfig.gpgpusim_like()
    config = config or CampaignConfig()
    bench = get_benchmark(benchmark)
    rows: List[CoverageRow] = []
    for policy in PAPER_POLICIES:
        run = RedundantKernelManager(gpu, policy).run(
            list(bench.kernels), tag=benchmark
        )
        report = FaultCampaign(run).run(config)
        rows.append(
            CoverageRow(
                policy=report.policy,
                total=report.total,
                masked=report.masked,
                detected=report.detected,
                sdc=report.sdc,
                coverage=report.detection_coverage,
            )
        )
    return rows


# ----------------------------------------------------------------------
# E6 — policy-fit matrix (Section IV-D)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyFitRow:
    """Overhead of each policy for one kernel category."""

    kernel: str
    category: str
    half_ratio: float
    srrs_ratio: float
    best_policy: str


def policy_fit_matrix(gpu: Optional[GPUConfig] = None) -> List[PolicyFitRow]:
    """Measure each policy's overhead per kernel category (Section IV-D).

    Expected: SRRS wins for short and heavy kernels, HALF for friendly
    ones — with the narrow-long kernel as the extreme SRRS loss case.
    """
    gpu = gpu or GPUConfig.gpgpusim_like()
    kernels = [
        make_short_kernel(gpu),
        make_heavy_kernel(gpu),
        make_friendly_kernel(gpu),
        make_narrow_kernel(gpu, name="synthetic/narrow-long"),
    ]
    rows: List[PolicyFitRow] = []
    for kernel in kernels:
        category = classify_kernel(kernel, gpu).category
        cycles: Dict[str, float] = {}
        for policy in PAPER_POLICIES:
            run = RedundantKernelManager(gpu, policy).run([kernel])
            cycles[policy] = run.sim.trace.busy_cycles
        base = cycles["default"]
        half_ratio = cycles["half"] / base
        srrs_ratio = cycles["srrs"] / base
        rows.append(
            PolicyFitRow(
                kernel=kernel.name,
                category=category.value,
                half_ratio=half_ratio,
                srrs_ratio=srrs_ratio,
                best_policy="half" if half_ratio < srrs_ratio else "srrs",
            )
        )
    return rows


# ----------------------------------------------------------------------
# E9 — ablation sweeps
# ----------------------------------------------------------------------
def dispatch_latency_sweep(latencies: Sequence[float],
                           benchmark: str = "hotspot",
                           gpu: Optional[GPUConfig] = None
                           ) -> List[Tuple[float, float, float]]:
    """Sweep the host dispatch latency (the natural-staggering knob).

    Returns:
        ``(latency, half_ratio, srrs_ratio)`` tuples — how each policy's
        overhead depends on the serial-dispatch gap.
    """
    from dataclasses import replace

    base_gpu = gpu or GPUConfig.gpgpusim_like()
    bench = get_benchmark(benchmark)
    rows: List[Tuple[float, float, float]] = []
    for latency in latencies:
        cfg = replace(base_gpu, dispatch_latency=latency)
        cycles = {}
        for policy in PAPER_POLICIES:
            run = RedundantKernelManager(cfg, policy).run(list(bench.kernels))
            cycles[policy] = run.sim.trace.busy_cycles
        rows.append(
            (
                latency,
                cycles["half"] / cycles["default"],
                cycles["srrs"] / cycles["default"],
            )
        )
    return rows


def sm_count_sweep(sm_counts: Sequence[int], benchmark: str = "hotspot",
                   gpu: Optional[GPUConfig] = None
                   ) -> List[Tuple[int, float, float]]:
    """Sweep the SM count (scaling toward bigger automotive GPUs).

    Returns:
        ``(num_sms, half_ratio, srrs_ratio)`` tuples.
    """
    base_gpu = gpu or GPUConfig.gpgpusim_like()
    bench = get_benchmark(benchmark)
    rows: List[Tuple[int, float, float]] = []
    for count in sm_counts:
        cfg = base_gpu.with_sms(count)
        cycles = {}
        for policy in PAPER_POLICIES:
            run = RedundantKernelManager(cfg, policy).run(list(bench.kernels))
            cycles[policy] = run.sim.trace.busy_cycles
        rows.append(
            (
                count,
                cycles["half"] / cycles["default"],
                cycles["srrs"] / cycles["default"],
            )
        )
    return rows
