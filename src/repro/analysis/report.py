"""Plain-text rendering of tables and bar charts.

The paper's artifacts are figures; in a terminal-only reproduction the
benches print aligned tables and ASCII bar charts instead.  Rendering is
deliberately dependency-free and deterministic so bench output can be
diffed across runs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["render_table", "render_bars", "render_grouped_bars"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """Render an aligned text table.

    Floats are shown with three decimals; everything else via ``str``.

    Args:
        headers: column names.
        rows: table body; every row must match the header length.
        title: optional heading printed above the table.

    Raises:
        ConfigurationError: on ragged rows.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row of {len(row)} cells does not match "
                f"{len(headers)} headers"
            )
        text_rows.append([fmt(c) for c in row])

    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(r) for r in text_rows)
    return "\n".join(parts)


def render_bars(labels: Sequence[str], values: Sequence[float], *,
                width: int = 50, title: str = "",
                unit: str = "") -> str:
    """Render a horizontal ASCII bar chart.

    Args:
        labels: one label per bar.
        values: bar magnitudes (must be non-negative).
        width: character width of the longest bar.
        title: optional heading.
        unit: suffix appended to the numeric value.

    Raises:
        ConfigurationError: on mismatched lengths or negative values.
    """
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if any(v < 0 for v in values):
        raise ConfigurationError("bar values cannot be negative")
    peak = max(values, default=0.0)
    label_w = max((len(l) for l in labels), default=0)
    parts: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(value / peak * width)) if peak else 0)
        parts.append(f"{label.ljust(label_w)} | {bar} {value:.3f}{unit}")
    return "\n".join(parts)


def render_grouped_bars(labels: Sequence[str],
                        series: Mapping[str, Sequence[float]], *,
                        width: int = 40, title: str = "") -> str:
    """Render grouped bars (one group per label, one bar per series).

    This is the shape of the paper's Figures 4 and 5: benchmarks on the
    x-axis, one bar per policy/variant.

    Raises:
        ConfigurationError: when a series' length differs from the labels.
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    peak = max((v for vs in series.values() for v in vs), default=0.0)
    name_w = max((len(n) for n in series), default=0)
    label_w = max((len(l) for l in labels), default=0)
    parts: List[str] = [title] if title else []
    for i, label in enumerate(labels):
        parts.append(label.ljust(label_w))
        for name, values in series.items():
            v = values[i]
            bar = "#" * (int(round(v / peak * width)) if peak else 0)
            parts.append(f"  {name.ljust(name_w)} | {bar} {v:.3f}")
    return "\n".join(parts)
