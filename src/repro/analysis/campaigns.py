"""Campaign-scaling measurements (the ``BENCH_campaigns.json`` rows).

Measures how sharded campaign throughput (injections/second) scales with
the worker count, while asserting the determinism contract along the way:
every worker count must produce the *same* aggregate report digest —
parallelism changes the wall clock, never the safety numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.api.campaign import CampaignSpec
from repro.campaigns.runner import run_campaign
from repro.errors import CampaignError

__all__ = ["CampaignScalingRow", "campaign_worker_scaling"]


@dataclass(frozen=True)
class CampaignScalingRow:
    """Throughput of one worker count over the same campaign.

    Attributes:
        workers: process-pool size used.
        injections: campaign size (identical across rows).
        wall_s: wall-clock seconds for the full campaign.
        injections_per_sec: ``injections / wall_s``.
        speedup: throughput relative to the ``workers=1`` row.
        digest: aggregate-report digest (identical across rows by the
            determinism contract).
    """

    workers: int
    injections: int
    wall_s: float
    injections_per_sec: float
    speedup: float
    digest: str


def campaign_worker_scaling(spec: CampaignSpec,
                            worker_counts: Sequence[int] = (1, 2, 4)
                            ) -> List[CampaignScalingRow]:
    """Run the same campaign at several worker counts and time each run.

    Every run is in-memory (no store) and starts from scratch, so rows
    are comparable.  The aggregate digest is verified to be identical
    across worker counts.

    Raises:
        CampaignError: when two worker counts disagree on the aggregate
            report — a determinism regression, never a measurement issue.
    """
    rows: List[CampaignScalingRow] = []
    base_throughput: float = 0.0
    digest: str = ""
    for workers in worker_counts:
        # repro-lint: allow[RL002] times wall-clock throughput only; the digest is verified identical across worker counts below
        start = time.perf_counter()
        report = run_campaign(spec, workers=workers)
        # repro-lint: allow[RL002] same measurement — wall time never reaches a digest
        wall = time.perf_counter() - start
        run_digest = report.digest()
        if digest and run_digest != digest:
            raise CampaignError(
                f"workers={workers} produced digest {run_digest}, previous "
                f"counts produced {digest} — sharded campaign determinism "
                "is broken"
            )
        digest = run_digest
        throughput = report.total / wall if wall > 0 else float("inf")
        if not rows:
            base_throughput = throughput
        rows.append(
            CampaignScalingRow(
                workers=workers,
                injections=report.total,
                wall_s=round(wall, 6),
                injections_per_sec=round(throughput, 1),
                speedup=round(throughput / base_throughput, 3),
                digest=run_digest,
            )
        )
    return rows
