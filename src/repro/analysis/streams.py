"""Stream-level measurements (the ``BENCH_streams.json`` rows).

Sweeps the arrival rate of one stream spec and summarises each operating
point — throughput, utilisation, deadline-miss and drop rates, tail
latency — into plain rows for tables and the benchmark artifact.  The
determinism contract rides along: every row records the stream's report
digest, so regenerating a sweep proves bit-stability of the whole
operating curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.api.stream import StreamSpec
from repro.streams.report import StreamReport
from repro.streams.runner import run_stream

__all__ = ["StreamRateRow", "arrival_rate_sweep", "stream_summary_rows"]


@dataclass(frozen=True)
class StreamRateRow:
    """One operating point of an arrival-rate sweep.

    Attributes:
        period_ms: arrival period of this point.
        arrival_hz: mean arrival rate (``1000 / period_ms``).
        frames: frames generated.
        completed: frames executed to completion.
        dropped: frames rejected by backpressure.
        miss_rate: deadline misses over completed frames.
        drop_rate: drops over generated frames.
        p_tail_ms: the highest tracked latency quantile (milliseconds).
        throughput_fps: completed frames per second of stream time.
        utilisation: server busy fraction.
        digest: the stream report's digest (determinism evidence).
    """

    period_ms: float
    arrival_hz: float
    frames: int
    completed: int
    dropped: int
    miss_rate: float
    drop_rate: float
    p_tail_ms: float
    throughput_fps: float
    utilisation: float
    digest: str


def arrival_rate_sweep(spec: StreamSpec, periods_ms: Sequence[float], *,
                       frames: Optional[int] = None,
                       workers: int = 1) -> List[StreamRateRow]:
    """Run the same stream at several arrival periods.

    Args:
        spec: the base stream (its own arrival period is replaced point
            by point; jitter scales are kept).
        periods_ms: arrival periods to sweep, typically from
            under-loaded to saturated.
        frames: optional frame-count override for every point.
        workers: forwarded to :func:`repro.streams.runner.run_stream`.

    Returns:
        One :class:`StreamRateRow` per period, in the given order.
    """
    rows: List[StreamRateRow] = []
    for period in periods_ms:
        jitter = min(spec.arrival.jitter_ms, period / 2)
        point = replace(
            spec,
            arrival=replace(spec.arrival, period_ms=period,
                            jitter_ms=jitter),
            frames=frames if frames is not None else spec.frames,
        )
        report = run_stream(point, workers=workers)
        tail_keys = [k for k in report.latency if k.startswith("p")]
        rows.append(
            StreamRateRow(
                period_ms=period,
                arrival_hz=1000.0 / period,
                frames=report.frames,
                completed=report.completed,
                dropped=report.dropped,
                miss_rate=report.miss_rate,
                drop_rate=report.drop_rate,
                p_tail_ms=report.latency[tail_keys[-1]] if tail_keys else 0.0,
                throughput_fps=report.throughput_fps,
                utilisation=report.utilisation,
                digest=report.digest(),
            )
        )
    return rows


def stream_summary_rows(report: StreamReport) -> List[List[object]]:
    """Key/value rows of one report for ``render_table``."""
    rows: List[List[object]] = [
        ["stream", report.label],
        ["policy", report.policy],
        ["frames", report.frames],
        ["completed", report.completed],
        ["dropped", report.dropped],
        ["deadline (ms)", report.deadline_ms],
        ["deadline misses", report.deadline_misses],
        ["safe rate", f"{report.safe_rate:.4f}"],
        ["throughput (fps)", f"{report.throughput_fps:.2f}"],
        ["utilisation", f"{report.utilisation:.4f}"],
        ["elapsed (ms)", f"{report.elapsed_ms:.3f}"],
    ]
    for key in sorted(report.latency):
        if key.startswith("p") or key in ("mean", "max"):
            rows.append([f"latency {key} (ms)", f"{report.latency[key]:.4f}"])
    if report.faults_injected:
        rows.append(["faults injected", report.faults_injected])
        rows.append(["faults detected", report.faults_detected])
        rows.append(["faults sdc", report.faults_sdc])
        rows.append(["re-executions", report.re_executions])
    rows.append(["digest", report.digest()])
    return rows
