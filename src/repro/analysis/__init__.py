"""Experiment runners and report rendering."""

from repro.analysis.experiments import (
    CoverageRow,
    Fig3Row,
    Fig4Row,
    Fig5Row,
    PolicyFitRow,
    dispatch_latency_sweep,
    fault_coverage_by_policy,
    fig3_kernel_categories,
    fig4_scheduler_comparison,
    fig5_cots_comparison,
    policy_fit_matrix,
    sm_count_sweep,
)
from repro.analysis.campaigns import (
    CampaignScalingRow,
    campaign_worker_scaling,
)
from repro.analysis.streams import (
    StreamRateRow,
    arrival_rate_sweep,
    stream_summary_rows,
)
from repro.analysis.platform import (
    DeviceCountRow,
    PlacementPolicyRow,
    device_count_sweep,
    placement_policy_sweep,
    platform_summary_rows,
)
from repro.analysis.bounds import (
    half_chain_bound,
    isolated_kernel_bound,
    srrs_chain_bound,
)
from repro.analysis.report import render_bars, render_grouped_bars, render_table

__all__ = [
    "Fig3Row",
    "Fig4Row",
    "Fig5Row",
    "CoverageRow",
    "PolicyFitRow",
    "fig3_kernel_categories",
    "fig4_scheduler_comparison",
    "fig5_cots_comparison",
    "fault_coverage_by_policy",
    "policy_fit_matrix",
    "dispatch_latency_sweep",
    "sm_count_sweep",
    "CampaignScalingRow",
    "campaign_worker_scaling",
    "StreamRateRow",
    "arrival_rate_sweep",
    "stream_summary_rows",
    "PlacementPolicyRow",
    "DeviceCountRow",
    "placement_policy_sweep",
    "device_count_sweep",
    "platform_summary_rows",
    "render_table",
    "render_bars",
    "render_grouped_bars",
    "isolated_kernel_bound",
    "srrs_chain_bound",
    "half_chain_bound",
]
