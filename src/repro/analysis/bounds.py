"""Analytic execution-time bounds (the real-time angle of the paper).

The paper targets *critical real-time* systems: schedulability needs
worst-case execution bounds, and the related work it cites ([19], [20])
shows why uncontrolled GPU scheduling defeats timing analysis.  SRRS and
HALF, by *constraining* the schedule, make simple compositional bounds
valid:

* under SRRS, kernels run alone on the whole GPU and serialize, so the
  chain bound is the sum of per-kernel isolated bounds plus dispatch
  gaps;
* under HALF, each copy runs alone in its partition, so the chain bound
  is the per-copy bound over the partition's SMs (copies proceed in
  parallel, staggered by dispatch gaps);
* under the *default* policy no such compositional bound exists (copies
  interfere arbitrarily) — mirroring the timing-analyzability critique.

Per-kernel isolated bounds use the fluid model's exact structure: with
least-loaded placement the worst per-SM load of a grid of ``G`` blocks
over ``S`` SMs is ``ceil(G / S)`` blocks (capped by occupancy waves), and
memory drains at full DRAM bandwidth, overlapped.  These bounds are
*sound* for the simulator (property-tested in
``tests/test_bounds_properties.py``) and tight when grids divide the
machine evenly.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.occupancy import blocks_per_sm

__all__ = [
    "isolated_kernel_bound",
    "srrs_chain_bound",
    "half_chain_bound",
]


def isolated_kernel_bound(kernel: KernelDescriptor, gpu: GPUConfig,
                          num_sms: int | None = None) -> float:
    """Worst-case cycles of one kernel alone on ``num_sms`` SMs.

    Sound for the fluid simulator with least-loaded or round-robin
    placement.  Two components, summed:

    * **compute**: the busiest SM receives at most ``ceil(G / S)`` blocks
      and drains them at full issue throughput;
    * **memory**: DRAM traffic drains at the full GPU bandwidth whenever
      any resident block has outstanding traffic.

    The components are *added*, not maxed: at occupancy-limited wave
    boundaries the DRAM can sit idle while resident blocks finish their
    compute tails (the next wave's traffic has not been admitted yet), so
    in the worst case the two phases do not overlap at all.  The sum is
    therefore a sound envelope; it is tight for pure-compute kernels and
    within the compute tail for memory-bound ones (property-tested).

    Args:
        kernel: the kernel.
        gpu: platform configuration.
        num_sms: SMs available to the kernel (defaults to the whole GPU;
            pass the partition size for HALF).
    """
    sms = num_sms if num_sms is not None else gpu.num_sms
    if sms <= 0 or sms > gpu.num_sms:
        raise ConfigurationError(f"invalid SM count {sms}")
    # occupancy cannot increase the bound: resident or queued, the SM
    # still has to retire its share of work at issue_throughput — but it
    # must be computable (raises CapacityError for impossible kernels)
    blocks_per_sm(kernel, gpu.sm)
    worst_blocks_per_sm = math.ceil(kernel.grid_blocks / sms)
    compute_bound = (
        worst_blocks_per_sm * kernel.work_per_block
        / gpu.sm.issue_throughput
    )
    memory_bound = kernel.total_bytes / gpu.dram_bandwidth
    return compute_bound + memory_bound


def srrs_chain_bound(kernels: Sequence[KernelDescriptor], gpu: GPUConfig,
                     copies: int = 2) -> float:
    """Worst-case makespan of a redundant chain under SRRS.

    SRRS fully serializes: every copy of every kernel runs alone on the
    whole GPU.  The bound is the sum of isolated bounds of all copies
    plus one dispatch gap per launch (each launch traverses the serial
    host dispatch path, and admission additionally waits for idle —
    already covered by the serialization sum).

    Args:
        kernels: the chain.
        copies: redundancy degree.
    """
    if copies < 1:
        raise ConfigurationError("copies must be >= 1")
    if not kernels:
        raise ConfigurationError("chain must be non-empty")
    execution = sum(
        isolated_kernel_bound(k, gpu) for k in kernels
    ) * copies
    dispatch = gpu.dispatch_latency * len(kernels) * copies
    return execution + dispatch


def half_chain_bound(kernels: Sequence[KernelDescriptor], gpu: GPUConfig,
                     partitions: int = 2) -> float:
    """Worst-case makespan of a redundant chain under HALF.

    Every copy is confined to its partition and shares it with no other
    copy, so the chain bound per copy is compositional over the partition
    size; copies run concurrently, so the makespan is the slowest copy's
    bound plus its dispatch offsets.  The smallest partition (for uneven
    splits) gives the worst bound.

    Args:
        kernels: the chain.
        partitions: SM groups (= redundancy degree under HALF).
    """
    if partitions < 2:
        raise ConfigurationError("HALF needs >= 2 partitions")
    if partitions > gpu.num_sms:
        raise ConfigurationError("more partitions than SMs")
    if not kernels:
        raise ConfigurationError("chain must be non-empty")
    smallest = gpu.num_sms // partitions
    execution = sum(
        isolated_kernel_bound(k, gpu, num_sms=smallest) for k in kernels
    )
    # every launch of every copy traverses the serial dispatch path; in
    # the worst case the observed copy is dispatched last each round
    dispatch = gpu.dispatch_latency * len(kernels) * partitions
    return execution + dispatch
