"""Platform-level measurements (the ``BENCH_platform.json`` rows).

Two sweeps cover the questions the platform layer exists to answer —
*which placement policy should a platform use?* and *how does the
platform scale with devices?* — plus the key/value rows the ``platform``
CLI renders.  Every row records the relevant digest, so regenerating a
sweep proves bit-stability of the whole surface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.api.platform import DeviceSpec, PlacementSpec, PlatformSpec
from repro.api.stream import StreamSpec
from repro.platform.placement import plan_placement
from repro.platform.report import PlatformReport
from repro.platform.runner import run_platform

__all__ = [
    "PlacementPolicyRow",
    "DeviceCountRow",
    "placement_policy_sweep",
    "device_count_sweep",
    "platform_summary_rows",
]


@dataclass(frozen=True)
class PlacementPolicyRow:
    """One policy's placement outcome on a fixed platform.

    Attributes:
        policy: placement policy name.
        max_utilisation: utilisation of the most loaded device.
        mean_utilisation: mean device utilisation.
        spread: max minus min device utilisation (balance quality).
        assignments: ``(task, device)`` pairs in canonical order.
    """

    policy: str
    max_utilisation: float
    mean_utilisation: float
    spread: float
    assignments: Tuple[Tuple[str, str], ...]


def placement_policy_sweep(
    spec: PlatformSpec,
    policies: Sequence[str] = ("first_fit", "worst_fit", "balanced"),
) -> List[PlacementPolicyRow]:
    """Plan the same platform under several placement policies.

    Args:
        spec: the base platform (its placement policy is replaced point
            by point; pins are kept).
        policies: policy names to sweep (``pinned`` only makes sense
            when the spec's pins cover every task).

    Returns:
        One :class:`PlacementPolicyRow` per policy, in the given order.
    """
    rows: List[PlacementPolicyRow] = []
    for policy in policies:
        point = replace(
            spec, placement=replace(spec.placement, policy=policy)
        )
        plan = plan_placement(point)
        utils = list(plan.device_utilisation.values())
        rows.append(
            PlacementPolicyRow(
                policy=policy,
                max_utilisation=max(utils),
                mean_utilisation=sum(utils) / len(utils),
                spread=max(utils) - min(utils),
                assignments=plan.assignments,
            )
        )
    return rows


@dataclass(frozen=True)
class DeviceCountRow:
    """One operating point of a device-count scaling sweep.

    Attributes:
        devices: number of devices in the fleet.
        tasks: number of task streams placed.
        frames: frames generated platform-wide.
        max_utilisation: utilisation of the most loaded device.
        throughput_fps: summed stream throughput.
        verdict: the ISO 26262 rollup verdict (``"pass"``/``"fail"``).
        digest: the platform report digest (determinism evidence).
    """

    devices: int
    tasks: int
    frames: float
    max_utilisation: float
    throughput_fps: float
    verdict: str
    digest: str


def device_count_sweep(
    tasks: Sequence[StreamSpec],
    counts: Sequence[int],
    *,
    presets: Sequence[str] = ("gtx1050ti",),
    policy: str = "balanced",
    workers: int = 1,
) -> List[DeviceCountRow]:
    """Run the same task set on fleets of growing size.

    Device ``i`` of an ``n``-device fleet is named ``gpu{i}`` and uses
    ``presets[i % len(presets)]`` — pass several presets to sweep a
    heterogeneous fleet.

    Args:
        tasks: the task streams (labels must be unique).
        counts: fleet sizes to sweep.
        presets: device preset cycle.
        policy: placement policy for every point.
        workers: forwarded to :func:`repro.platform.runner.run_platform`.

    Returns:
        One :class:`DeviceCountRow` per count, in the given order.
    """
    rows: List[DeviceCountRow] = []
    for count in counts:
        spec = PlatformSpec(
            devices=tuple(
                DeviceSpec(name=f"gpu{i}", preset=presets[i % len(presets)])
                for i in range(count)
            ),
            tasks=tuple(tasks),
            placement=PlacementSpec(policy=policy),
            tag=f"{count}-device sweep",
        )
        report = run_platform(spec, workers=workers)
        utils = [entry["utilisation"] for entry in report.devices.values()]
        rows.append(
            DeviceCountRow(
                devices=count,
                tasks=len(report.tasks),
                frames=report.totals["frames"],
                max_utilisation=max(utils),
                throughput_fps=report.totals["throughput_fps"],
                verdict=report.asil["verdict"],
                digest=report.digest(),
            )
        )
    return rows


def platform_summary_rows(report: PlatformReport) -> List[List[object]]:
    """Key/value rows of one report for ``render_table``."""
    totals = report.totals
    rows: List[List[object]] = [
        ["platform", report.label],
        ["placement policy", report.policy],
        ["devices", len(report.devices)],
        ["tasks", len(report.tasks)],
        ["frames", f"{totals.get('frames', 0):g}"],
        ["completed", f"{totals.get('completed', 0):g}"],
        ["dropped", f"{totals.get('dropped', 0):g}"],
        ["deadline misses", f"{totals.get('deadline_misses', 0):g}"],
        ["SDCs", f"{totals.get('faults_sdc', 0):g}"],
        ["safe rate", f"{totals.get('safe_rate', 0.0):.4f}"],
        ["throughput (fps)", f"{totals.get('throughput_fps', 0.0):.2f}"],
    ]
    for name, entry in sorted(report.devices.items()):
        rows.append([
            f"device {name}",
            f"util={entry['utilisation']:.3f}/{entry['capacity']:g} "
            f"tasks={','.join(entry['tasks']) or '-'}",
        ])
    for label, entry in sorted(report.tasks.items()):
        rows.append([
            f"task {label}",
            f"{entry['device']} asil={entry['asil']} "
            f"ok={entry['ok']} misses={entry['deadline_misses']}",
        ])
    rows.append(["worst ASIL", report.asil.get("worst_asil", "-")])
    rows.append(["verdict", report.asil.get("verdict", "-")])
    rows.append(["digest", report.digest()])
    return rows
