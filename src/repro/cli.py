"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig1            # ASIL decomposition examples
    python -m repro fig3            # kernel categories
    python -m repro fig4            # scheduler policy comparison
    python -m repro fig5            # COTS end-to-end comparison
    python -m repro coverage        # fault-injection coverage by policy
    python -m repro policyfit       # Section IV-D policy-fit matrix
    python -m repro sweeps          # dispatch-latency / SM-count ablations
    python -m repro all             # everything above

Options: ``--sms N`` changes the GPU size for the simulated artifacts,
``--benchmark NAME`` selects the workload for ``coverage``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.experiments import (
    dispatch_latency_sweep,
    fault_coverage_by_policy,
    fig3_kernel_categories,
    fig4_scheduler_comparison,
    fig5_cots_comparison,
    policy_fit_matrix,
    sm_count_sweep,
)
from repro.analysis.report import render_table
from repro.gpu.config import GPUConfig
from repro.iso26262.decomposition import FIGURE1_EXAMPLES

__all__ = ["main"]


def _cmd_fig1(args: argparse.Namespace) -> str:
    return render_table(
        ["example", "decomposition"],
        [[name, rule.describe()] for name, rule in FIGURE1_EXAMPLES],
        title="Figure 1 — ASIL decomposition examples",
    )


def _cmd_fig3(args: argparse.Namespace) -> str:
    rows = fig3_kernel_categories(_gpu(args))
    return render_table(
        ["kernel", "category", "isolated(cy)", "overlap", "policy"],
        [[r.kernel, r.category, r.isolated_cycles, r.overlap_fraction,
          r.recommended_policy] for r in rows],
        title="Figure 3 — Kernel categories",
    )


def _cmd_fig4(args: argparse.Namespace) -> str:
    rows = fig4_scheduler_comparison(_gpu(args))
    return render_table(
        ["benchmark", "default(cy)", "HALF", "SRRS"],
        [[r.benchmark, r.default_cycles, r.half_ratio, r.srrs_ratio]
         for r in rows],
        title="Figure 4 — Redundant kernel cycles (normalized to default)",
    )


def _cmd_fig5(args: argparse.Namespace) -> str:
    rows = fig5_cots_comparison()
    return render_table(
        ["benchmark", "baseline(ms)", "redundant(ms)", "ratio"],
        [[r.benchmark, r.baseline_ms, r.redundant_ms, r.ratio] for r in rows],
        title="Figure 5 — COTS end-to-end execution time",
    )


def _cmd_coverage(args: argparse.Namespace) -> str:
    rows = fault_coverage_by_policy(_gpu(args), benchmark=args.benchmark)
    return render_table(
        ["policy", "n", "masked", "detected", "SDC", "coverage"],
        [[r.policy, r.total, r.masked, r.detected, r.sdc, r.coverage]
         for r in rows],
        title=f"Fault-detection coverage by policy ({args.benchmark})",
    )


def _cmd_policyfit(args: argparse.Namespace) -> str:
    rows = policy_fit_matrix(_gpu(args))
    return render_table(
        ["kernel", "category", "HALF", "SRRS", "best"],
        [[r.kernel, r.category, r.half_ratio, r.srrs_ratio, r.best_policy]
         for r in rows],
        title="Policy fit per kernel category (Section IV-D)",
    )


def _cmd_sweeps(args: argparse.Namespace) -> str:
    latency_rows = dispatch_latency_sweep(
        [500.0, 1500.0, 3000.0, 6000.0, 12000.0], gpu=_gpu(args)
    )
    sm_rows = sm_count_sweep([2, 4, 6, 8, 12, 16])
    return "\n\n".join([
        render_table(
            ["dispatch latency (cy)", "HALF", "SRRS"], latency_rows,
            title="Ablation — dispatch-latency sweep (hotspot)",
        ),
        render_table(
            ["SMs", "HALF", "SRRS"], sm_rows,
            title="Ablation — SM-count sweep (hotspot)",
        ),
    ])


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig1": _cmd_fig1,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "coverage": _cmd_coverage,
    "policyfit": _cmd_policyfit,
    "sweeps": _cmd_sweeps,
}


def _gpu(args: argparse.Namespace) -> GPUConfig:
    return GPUConfig.gpgpusim_like(num_sms=args.sms)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and extension "
                    "experiments (Alcaide et al., DATE 2019).",
    )
    parser.add_argument(
        "command",
        choices=sorted(_COMMANDS) + ["all"],
        help="artifact to regenerate",
    )
    parser.add_argument(
        "--sms", type=int, default=6,
        help="number of SMs for the simulated artifacts (default 6)",
    )
    parser.add_argument(
        "--benchmark", default="hotspot",
        help="workload for the coverage command (default hotspot)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "all":
        names: List[str] = sorted(_COMMANDS)
    else:
        names = [args.command]
    outputs = []
    for name in names:
        outputs.append(_COMMANDS[name](args))
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
