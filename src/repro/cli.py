"""Command-line interface: regenerate any paper artifact from a shell.

Figure commands (legacy front door, kept stable)::

    python -m repro fig1            # ASIL decomposition examples
    python -m repro fig3            # kernel categories
    python -m repro fig4            # scheduler policy comparison
    python -m repro fig5            # COTS end-to-end comparison
    python -m repro coverage        # fault-injection coverage by policy
    python -m repro policyfit       # Section IV-D policy-fit matrix
    python -m repro sweeps          # dispatch-latency / SM-count ablations
    python -m repro all             # everything above

Declarative front door (:mod:`repro.api`)::

    python -m repro scenarios                       # list the registry
    python -m repro run --spec spec.json            # one RunSpec file
    python -m repro run --scenario fig4 --json      # a named scenario
    python -m repro batch a.json b.json --workers 4 # parallel batch

``run``/``batch`` accept ``--json`` to emit the full artifact(s) as JSON;
spec files may hold a single RunSpec object or a list of them.

Sharded resumable fault-injection campaigns (:mod:`repro.campaigns`)::

    python -m repro campaign run --spec campaign.json --dir out/c1 --workers 4
    python -m repro campaign resume --dir out/c1 --workers 4
    python -m repro campaign status --dir out/c1
    python -m repro campaign report --dir out/c1 --json

Continuous frame streams (:mod:`repro.streams`)::

    python -m repro stream run --spec stream.json --json
    python -m repro stream run --task camera-perception --frames 10000
    python -m repro stream run --spec stream.json --out report.json
    python -m repro stream report --report report.json

Multi-device vehicle platforms (:mod:`repro.platform`)::

    python -m repro platform plan --spec platform.json
    python -m repro platform run --spec platform.json --workers 4 --json
    python -m repro platform run --spec platform.json --out report.json
    python -m repro platform report --report report.json

Determinism-contract linter (:mod:`repro.lint`)::

    python -m repro lint                            # lint src/repro
    python -m repro lint --json src/repro           # machine-readable
    python -m repro lint --rule RL002 src/repro     # one rule only
    python -m repro lint --config repro-lint.toml src/repro

``lint`` exits 1 when violations are found (the CI gate) and 2 when the
linter itself is misconfigured.

Observability (:mod:`repro.obs`) — every ``campaign run/resume``,
``stream run`` and ``platform run`` accepts ``--telemetry PATH`` (typed
``repro-telemetry/v1`` JSONL event log), ``--progress`` (live stderr
ticker) and ``--heartbeat S``; telemetry never changes any report::

    python -m repro campaign run --spec c.json --telemetry t.jsonl --progress
    python -m repro obs validate t.jsonl            # schema check
    python -m repro obs validate t.jsonl --strict   # warnings become errors
    python -m repro obs report t.jsonl --top 5      # span tree + hotspots
    python -m repro obs archive t.jsonl --tag base  # into .repro-obs/
    python -m repro obs list                        # archived runs
    python -m repro obs gc --keep 3                 # prune per (kinds, spec)
    python -m repro obs export t.jsonl --chrome     # Perfetto trace JSON
    python -m repro obs export RUNID --folded       # flamegraph stacks
    python -m repro obs export RUNID --csv          # heartbeat series
    python -m repro obs diff BASE CAND --json       # cross-run span deltas

``obs validate`` exits 1 on schema violations and 2 when the file
cannot be read (``--strict`` promotes tolerated findings — unknown
event types, stale worker seq — to violations); ``obs report`` renders
run summaries, the span tree and self-time hotspots (``--json`` for the
repro-obs-report/v1 schema).  ``archive``/``list``/``gc`` manage the
``.repro-obs`` store (run ids are content digests; every command
taking TELEMETRY also accepts an archived tag or run-id prefix).
``export`` writes Chrome/Perfetto trace JSON, collapsed stacks or
heartbeat CSV;
``obs diff`` aligns the span trees of two runs, tests per-path
self-time deltas for significance (repro-obs-diff/v1) and exits like
``compare``: 0 = indistinguishable, 1 = significant, 2 = misuse.

Statistical significance diff (:mod:`repro.stats`)::

    python -m repro compare old.json new.json           # same-kind artifacts
    python -m repro compare a.json b.json --alpha 0.01
    python -m repro compare a.json b.json --json        # repro-compare/v1

``compare`` accepts two campaign reports, two stream reports or two
BENCH artifacts, runs a two-proportion z-test plus a bootstrap
difference interval on every shared rate, and exits like ``diff``:
0 = statistically indistinguishable, 1 = at least one significant
difference, 2 = misuse (unreadable file, mismatched kinds).

Options: ``--sms N`` changes the GPU size for the simulated artifacts,
``--benchmark NAME`` selects the workload for ``coverage``;
``python -m repro --version`` prints the package version.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    dispatch_latency_sweep,
    fault_coverage_by_policy,
    fig3_kernel_categories,
    fig4_scheduler_comparison,
    fig5_cots_comparison,
    policy_fit_matrix,
    sm_count_sweep,
)
from repro.analysis.platform import platform_summary_rows
from repro.analysis.report import render_table
from repro.analysis.streams import stream_summary_rows
from repro.api.artifact import RunArtifact
from repro.api.campaign import CampaignSpec
from repro.api.engine import Engine
from repro.api.scenarios import get_scenario, scenario_names
from repro.api.platform import PlatformSpec
from repro.api.spec import RunSpec
from repro.api.stream import StreamSpec
from repro.campaigns import (
    CampaignStore,
    campaign_plan,
    campaign_status,
    fold_report,
    repeat_campaign,
    run_campaign,
    spec_sampling_meta,
    validated_records,
)
from repro.errors import (
    CampaignError,
    ConfigurationError,
    LintError,
    ObsError,
    ReproError,
    StatsError,
)
from repro.faults.campaign import CampaignReport
from repro.lint import load_config, run_lint
from repro.obs import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_OBS_DIR,
    TELEMETRY_SCHEMA,
    ObsStore,
    Telemetry,
    classify_events,
    diff_events,
    heartbeat_csv,
    profiled,
    read_telemetry,
    render_chrome_trace,
    render_diff,
    render_report,
    scan_telemetry,
    summarize,
    to_folded,
)
from repro.gpu.config import GPUConfig
from repro.iso26262.decomposition import FIGURE1_EXAMPLES
from repro.platform.placement import plan_placement
from repro.platform.report import PlatformReport
from repro.platform.runner import run_platform
from repro.stats.compare import compare_artifacts, render_comparison
from repro.stats.repeater import RepeatResult
from repro.streams.report import StreamReport
from repro.streams.runner import run_stream

__all__ = ["main"]


def _cmd_fig1(args: argparse.Namespace) -> str:
    return render_table(
        ["example", "decomposition"],
        [[name, rule.describe()] for name, rule in FIGURE1_EXAMPLES],
        title="Figure 1 — ASIL decomposition examples",
    )


def _cmd_fig3(args: argparse.Namespace) -> str:
    rows = fig3_kernel_categories(_gpu(args))
    return render_table(
        ["kernel", "category", "isolated(cy)", "overlap", "policy"],
        [[r.kernel, r.category, r.isolated_cycles, r.overlap_fraction,
          r.recommended_policy] for r in rows],
        title="Figure 3 — Kernel categories",
    )


def _cmd_fig4(args: argparse.Namespace) -> str:
    rows = fig4_scheduler_comparison(_gpu(args))
    return render_table(
        ["benchmark", "default(cy)", "HALF", "SRRS"],
        [[r.benchmark, r.default_cycles, r.half_ratio, r.srrs_ratio]
         for r in rows],
        title="Figure 4 — Redundant kernel cycles (normalized to default)",
    )


def _cmd_fig5(args: argparse.Namespace) -> str:
    rows = fig5_cots_comparison()
    return render_table(
        ["benchmark", "baseline(ms)", "redundant(ms)", "ratio"],
        [[r.benchmark, r.baseline_ms, r.redundant_ms, r.ratio] for r in rows],
        title="Figure 5 — COTS end-to-end execution time",
    )


def _cmd_coverage(args: argparse.Namespace) -> str:
    rows = fault_coverage_by_policy(_gpu(args), benchmark=args.benchmark)
    return render_table(
        ["policy", "n", "masked", "detected", "SDC", "coverage"],
        [[r.policy, r.total, r.masked, r.detected, r.sdc, r.coverage]
         for r in rows],
        title=f"Fault-detection coverage by policy ({args.benchmark})",
    )


def _cmd_policyfit(args: argparse.Namespace) -> str:
    rows = policy_fit_matrix(_gpu(args))
    return render_table(
        ["kernel", "category", "HALF", "SRRS", "best"],
        [[r.kernel, r.category, r.half_ratio, r.srrs_ratio, r.best_policy]
         for r in rows],
        title="Policy fit per kernel category (Section IV-D)",
    )


def _cmd_sweeps(args: argparse.Namespace) -> str:
    latency_rows = dispatch_latency_sweep(
        [500.0, 1500.0, 3000.0, 6000.0, 12000.0], gpu=_gpu(args)
    )
    sm_rows = sm_count_sweep([2, 4, 6, 8, 12, 16])
    return "\n\n".join([
        render_table(
            ["dispatch latency (cy)", "HALF", "SRRS"], latency_rows,
            title="Ablation — dispatch-latency sweep (hotspot)",
        ),
        render_table(
            ["SMs", "HALF", "SRRS"], sm_rows,
            title="Ablation — SM-count sweep (hotspot)",
        ),
    ])


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig1": _cmd_fig1,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "coverage": _cmd_coverage,
    "policyfit": _cmd_policyfit,
    "sweeps": _cmd_sweeps,
}


def _gpu(args: argparse.Namespace) -> GPUConfig:
    return GPUConfig.gpgpusim_like(num_sms=args.sms)


# ----------------------------------------------------------------------
# declarative front door: run / batch / scenarios
# ----------------------------------------------------------------------
def _load_specs(path: str) -> List[RunSpec]:
    """Load one spec file (a single RunSpec object or a list of them)."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path!r} is not valid JSON: {exc}")
    entries = data if isinstance(data, list) else [data]
    return [RunSpec.from_dict(entry) for entry in entries]


def _scenario_specs(args: argparse.Namespace) -> List[RunSpec]:
    """Build a scenario's specs from the forwarded CLI params.

    Raises:
        ConfigurationError: when a given option is not a parameter of the
            scenario's builder (silently ignoring it would run a
            different configuration than the user asked for).
    """
    scenario = get_scenario(args.scenario)
    accepted = set(inspect.signature(scenario.builder).parameters)
    params = {}
    for name, value in (("sms", args.sms), ("benchmark", args.benchmark),
                        ("policy", args.policy)):
        if value is None:
            continue
        if name not in accepted:
            raise ConfigurationError(
                f"scenario {scenario.name!r} does not accept --{name}; "
                f"its parameters are: {', '.join(sorted(accepted))}"
            )
        params[name] = value
    return scenario.build(**params)


def _artifact_table(artifacts: Sequence[RunArtifact], title: str) -> str:
    rows = []
    for a in artifacts:
        timing = f"{a.timing.busy_cycles:.0f}" if a.timing else "-"
        diverse = str(a.diversity.fully_diverse) if a.diversity else "-"
        clean = str(a.comparisons.all_clean) if a.comparisons else "-"
        coverage = (
            f"{a.faults.detection_coverage:.4f}" if a.faults else "-"
        )
        cots = f"{a.cots.ratio:.3f}" if a.cots else "-"
        category = (
            a.classification[0].category if a.classification else "-"
        )
        rows.append([a.spec.label, a.spec.policy, timing, diverse, clean,
                     coverage, cots, category, a.config_hash])
    return render_table(
        ["run", "policy", "busy(cy)", "diverse", "clean", "coverage",
         "cots", "category", "config"],
        rows,
        title=title,
    )


def _emit(artifacts: List[RunArtifact], *, as_json: bool, single: bool,
          title: str) -> str:
    if as_json:
        if single and len(artifacts) == 1:
            return artifacts[0].to_json(indent=2)
        return json.dumps(
            [a.to_dict() for a in artifacts], sort_keys=True, indent=2
        )
    return _artifact_table(artifacts, title)


def _cmd_run(args: argparse.Namespace) -> str:
    if bool(args.spec) == bool(args.scenario):
        raise ConfigurationError(
            "run needs exactly one of --spec FILE or --scenario NAME"
        )
    if args.spec:
        ignored = [name for name, value in (("sms", args.sms),
                                            ("benchmark", args.benchmark),
                                            ("policy", args.policy))
                   if value is not None]
        if ignored:
            raise ConfigurationError(
                f"--{'/--'.join(ignored)} only applies to --scenario; a "
                "--spec file fully describes its run — edit the file instead"
            )
        specs = _load_specs(args.spec)
        title = f"run — {args.spec}"
    else:
        specs = _scenario_specs(args)
        title = f"run — scenario {args.scenario!r}"
    artifacts = Engine().run_many(specs, workers=args.workers)
    return _emit(artifacts, as_json=args.json, single=len(specs) == 1,
                 title=title)


def _cmd_batch(args: argparse.Namespace) -> str:
    specs: List[RunSpec] = []
    for path in args.specs:
        specs.extend(_load_specs(path))
    artifacts = Engine().run_many(specs, workers=args.workers)
    return _emit(artifacts, as_json=args.json, single=False,
                 title=f"batch — {len(specs)} runs, {args.workers} worker(s)")


# ----------------------------------------------------------------------
# observability: --telemetry/--progress plumbing and the obs command
# ----------------------------------------------------------------------
def _open_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """Build the Telemetry session the run flags ask for (or ``None``)."""
    if not (args.telemetry or args.progress):
        return None
    return Telemetry.create(path=args.telemetry, progress=args.progress,
                            heartbeat_s=args.heartbeat)


def _obs_events(ref: str, obs_dir: str) -> Tuple[List[Dict[str, Any]], str]:
    """Load telemetry events from a file path or an archived run ref.

    ``ref`` naming an existing file wins; anything else is resolved as a
    (prefix of a) run id in the ``obs_dir`` archive.  Returns the events
    plus a display label (the path, or the full resolved run id).

    Raises:
        ObsError: unreadable/corrupt file, or an unknown/ambiguous id.
    """
    if Path(ref).is_file():
        return read_telemetry(ref), ref
    store = ObsStore(obs_dir)
    entry = store.resolve(ref)
    return store.load_events(entry["run_id"]), entry["run_id"]


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    """``obs validate``: lenient by default, ``--strict`` promotes."""
    events, tears = scan_telemetry(args.path)
    problems, tolerated = classify_events(events)
    if args.strict:
        problems, tolerated = problems + tolerated, []
    for problem in problems:
        print(f"{args.path}: {problem}", file=sys.stderr)
    for note in tolerated:
        print(f"{args.path}: warning: {note}", file=sys.stderr)
    for tear in tears:
        where = ("end of file" if tear["tear"] == "file"
                 else "end of an interrupted session")
        print(f"{args.path}: note: torn line {tear['line']} "
              f"skipped ({where})", file=sys.stderr)
    if problems:
        return 1
    extra = ""
    if tolerated:
        extra += f", {len(tolerated)} warning(s)"
    if tears:
        extra += f", {len(tears)} torn line(s) skipped"
    print(f"{args.path}: {len(events)} event(s) OK "
          f"({TELEMETRY_SCHEMA}){extra}")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """``obs export``: one telemetry log to one analysis format."""
    chosen = [name for name, flag in (("--chrome", args.chrome),
                                      ("--folded", args.folded),
                                      ("--csv", args.csv)) if flag]
    if len(chosen) != 1:
        raise ObsError("choose exactly one of --chrome, --folded, --csv")
    events, _ = _obs_events(args.path, args.dir)
    if args.chrome:
        text = render_chrome_trace(events) + "\n"
    elif args.folded:
        text = to_folded(events)
    else:
        text = heartbeat_csv(events)
    if args.out:
        try:
            Path(args.out).write_text(text)
        except OSError as exc:
            raise ObsError(f"cannot write {args.out!r}: {exc}")
        print(f"wrote {chosen[0].lstrip('-')} export to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    """``obs diff``: exits 0 alike / 1 significant (like ``compare``)."""
    events_a, label_a = _obs_events(args.a, args.dir)
    events_b, label_b = _obs_events(args.b, args.dir)
    payload = diff_events(
        events_a, events_b, label_a=label_a, label_b=label_b,
        confidence=args.confidence, min_rel=args.min_rel,
        min_abs_ms=args.min_abs_ms,
    )
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(render_diff(payload))
    return 1 if payload["significant"] else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Dispatch the ``obs`` analysis-plane actions; return the exit code.

    ``validate`` exits 0 when the log is schema-valid (tolerated
    findings print as warnings unless ``--strict`` promotes them), 1 on
    violations, 2 when the file cannot be read.  ``report`` and
    ``export`` render one log; ``archive``/``list``/``gc`` manage the
    ``.repro-obs`` store; ``diff`` compares two logs and exits like
    ``compare`` (0 = indistinguishable, 1 = significant difference,
    2 = misuse).
    """
    try:
        if args.obs_command == "validate":
            return _cmd_obs_validate(args)
        if args.obs_command == "archive":
            store = ObsStore(args.dir)
            entry = store.archive(args.path, tag=args.tag)
            kinds = ",".join(entry["kinds"]) or "-"
            print(f"archived {entry['run_id']} ({entry['events']} event(s), "
                  f"{entry['sessions']} session(s), kinds: {kinds})")
            return 0
        if args.obs_command == "list":
            entries = ObsStore(args.dir).entries()
            if args.json:
                print(json.dumps(entries, sort_keys=True, indent=2))
                return 0
            if not entries:
                print(f"no archived runs in {args.dir}")
                return 0
            rows = [
                [e["run_id"], e["tag"] or "-", ",".join(e["kinds"]) or "-",
                 str(e["sessions"]), str(e["events"]), str(e["spans"]),
                 ",".join(h[:8] for h in e["spec_hashes"]) or "-",
                 e["source"]]
                for e in entries
            ]
            print(render_table(
                ["run id", "tag", "kinds", "sessions", "events", "spans",
                 "spec", "source"],
                rows, title=f"telemetry archive — {args.dir}"))
            return 0
        if args.obs_command == "gc":
            removed = ObsStore(args.dir).gc(keep=args.keep)
            for entry in removed:
                print(f"removed {entry['run_id']} ({entry['source']})")
            print(f"{len(removed)} run(s) removed, keep={args.keep} "
                  "per (kinds, spec) group")
            return 0
        if args.obs_command == "export":
            return _cmd_obs_export(args)
        if args.obs_command == "diff":
            return _cmd_obs_diff(args)
        # report
        events, _ = _obs_events(args.path, args.dir)
        summary = summarize(events)
        if args.json:
            print(json.dumps(summary, sort_keys=True, indent=2))
        else:
            print(render_report(summary, top=args.top))
        return 0
    except (ObsError, StatsError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# sharded campaigns: campaign run / resume / status / report
# ----------------------------------------------------------------------
def _load_campaign_spec(path: str) -> CampaignSpec:
    """Load one CampaignSpec JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path!r}: {exc}")
    return CampaignSpec.from_json(text)


def _campaign_report_text(report: CampaignReport, *, as_json: bool,
                          title: str) -> str:
    if as_json:
        return json.dumps(report.to_dict(), sort_keys=True, indent=2)
    data = report.to_dict()
    table = render_table(
        ["policy", "n", "masked", "detected", "SDC", "coverage", "digest"],
        [[report.policy, report.total, report.masked, report.detected,
          report.sdc, report.detection_coverage, report.digest()]],
        title=title,
    )
    samples = data["sdc_samples"]
    if samples:
        table += "\nSDC examples: " + "; ".join(samples)
    if report.sampling is not None:
        try:
            table += "\nSDC rate: " + report.rate_interval("sdc").describe()
        except StatsError:
            pass
    return table


def _repeat_result_text(result: RepeatResult, *, as_json: bool,
                        title: str) -> str:
    if as_json:
        return json.dumps(result.to_dict(), sort_keys=True, indent=2)
    estimate = result.estimate
    table = render_table(
        ["metric", "estimate", "CI", "batches", "n", "stop"],
        [[result.metric, f"{estimate.rate:.6f}",
          f"[{estimate.low:.6f}, {estimate.high:.6f}]",
          result.batches, result.total, result.stop_reason]],
        title=title,
    )
    if result.error:
        table += f"\nWARNING: {result.error}"
    return table


def _campaign_status_text(status, *, as_json: bool) -> str:
    if as_json:
        return json.dumps(status.to_dict(), sort_keys=True, indent=2)
    return render_table(
        ["policy", "shards", "injections", "masked", "detected", "SDC",
         "complete"],
        [[status.policy or "-",
          f"{status.completed_shards}/{status.total_shards}",
          f"{status.completed_injections}/{status.total_injections}",
          status.masked, status.detected, status.sdc, status.complete]],
        title=f"Campaign status — spec {status.spec_hash}",
    )


def _cmd_campaign(args: argparse.Namespace) -> str:
    # a complete campaign's aggregate covers exactly the spec's population
    # (shards are validated against the plan, so the totals can only match
    # when every shard is in) — checking totals avoids re-reading and
    # re-verifying the whole shard log just to decide completeness
    command = args.campaign_command
    if command == "run":
        spec = _load_campaign_spec(args.spec)
        telemetry = _open_telemetry(args)
        try:
            if spec.repeat is not None:
                if args.max_shards is not None:
                    raise CampaignError(
                        "--max-shards does not apply to a repeat-until-"
                        "confidence campaign — the stopping rule decides"
                    )
                result = repeat_campaign(spec, store=args.dir,
                                         workers=args.workers,
                                         telemetry=telemetry)
                return _repeat_result_text(
                    result, as_json=args.json,
                    title=f"Campaign repeat — {spec.label} "
                          f"({spec.config_hash})",
                )
            report = run_campaign(spec, store=args.dir,
                                  workers=args.workers,
                                  max_shards=args.max_shards,
                                  telemetry=telemetry)
        finally:
            if telemetry is not None:
                telemetry.close()
        if report.total < spec.total_injections:
            if args.dir is not None:
                return _campaign_status_text(
                    campaign_status(args.dir), as_json=args.json
                )
            qualifier = " (PARTIAL)"
        else:
            qualifier = ""
        return _campaign_report_text(
            report, as_json=args.json,
            title=f"Campaign report{qualifier} — {spec.label} "
                  f"({spec.config_hash})",
        )
    if command == "resume":
        store = CampaignStore(args.dir)
        spec = store.load_spec()
        telemetry = _open_telemetry(args)
        try:
            if spec.repeat is not None:
                if args.max_shards is not None:
                    raise CampaignError(
                        "--max-shards does not apply to a repeat-until-"
                        "confidence campaign — the stopping rule decides"
                    )
                result = repeat_campaign(spec, store=store,
                                         workers=args.workers,
                                         telemetry=telemetry)
                return _repeat_result_text(
                    result, as_json=args.json,
                    title=f"Campaign repeat — spec {spec.config_hash}",
                )
            report = run_campaign(spec, store=store, workers=args.workers,
                                  max_shards=args.max_shards,
                                  telemetry=telemetry)
        finally:
            if telemetry is not None:
                telemetry.close()
        if report.total < spec.total_injections:
            return _campaign_status_text(
                campaign_status(store), as_json=args.json
            )
        return _campaign_report_text(
            report, as_json=args.json,
            title=f"Campaign report — spec {spec.config_hash}",
        )
    if command == "status":
        return _campaign_status_text(
            campaign_status(args.dir), as_json=args.json
        )
    # report: fold the persisted shards without executing anything
    store = CampaignStore(args.dir)
    spec = store.load_spec()
    plan = campaign_plan(spec)
    records = validated_records(store, plan)
    if (len(records) < len(plan) and not args.partial
            and spec.repeat is None):
        raise CampaignError(
            f"campaign incomplete ({len(records)}/{len(plan)} shards "
            f"done); resume it with `python -m repro campaign resume "
            f"--dir {args.dir}` or pass --partial for a partial fold"
        )
    report = fold_report(records.values(),
                         sampling=spec_sampling_meta(spec))
    qualifier = "" if len(records) == len(plan) else " (PARTIAL)"
    return _campaign_report_text(
        report, as_json=args.json,
        title=f"Campaign report{qualifier} — spec {spec.config_hash}",
    )


# ----------------------------------------------------------------------
# streams: stream run / report
# ----------------------------------------------------------------------
def _stream_report_text(report: StreamReport, *, as_json: bool) -> str:
    if as_json:
        return report.to_json(indent=2)
    return render_table(
        ["metric", "value"],
        stream_summary_rows(report),
        title=f"Stream report — {report.label} ({report.spec_hash})",
    )


def _cmd_stream(args: argparse.Namespace) -> str:
    if args.stream_command == "run":
        if bool(args.spec) == bool(args.task):
            raise ConfigurationError(
                "stream run needs exactly one of --spec FILE or --task NAME"
            )
        if args.spec:
            try:
                text = Path(args.spec).read_text()
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot read spec file {args.spec!r}: {exc}"
                )
            spec = StreamSpec.from_json(text)
        else:
            spec = StreamSpec.for_task(args.task)
        if args.frames is not None:
            if args.frames < 1:
                raise ConfigurationError("--frames must be >= 1")
            from dataclasses import replace

            spec = replace(spec, frames=args.frames)
        telemetry = _open_telemetry(args)
        try:
            if args.profile:
                with profiled(out=args.profile):
                    report = run_stream(spec, workers=args.workers,
                                        telemetry=telemetry)
            else:
                report = run_stream(spec, workers=args.workers,
                                    telemetry=telemetry)
        finally:
            if telemetry is not None:
                telemetry.close()
        if args.out:
            try:
                Path(args.out).write_text(report.to_json(indent=2) + "\n")
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot write report file {args.out!r}: {exc}"
                )
        return _stream_report_text(report, as_json=args.json)
    # report: render a previously saved StreamReport JSON file
    try:
        text = Path(args.report).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read report file {args.report!r}: {exc}"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{args.report!r} is not valid JSON: {exc}"
        )
    report = StreamReport.from_dict(data)
    return _stream_report_text(report, as_json=args.json)


# ----------------------------------------------------------------------
# platforms: platform run / plan / report
# ----------------------------------------------------------------------
def _load_platform_spec(path: str) -> PlatformSpec:
    """Load one PlatformSpec JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path!r}: {exc}")
    return PlatformSpec.from_json(text)


def _platform_report_text(report: PlatformReport, *, as_json: bool) -> str:
    if as_json:
        return report.to_json(indent=2)
    return render_table(
        ["metric", "value"],
        platform_summary_rows(report),
        title=f"Platform report — {report.label} ({report.spec_hash})",
    )


def _cmd_platform(args: argparse.Namespace) -> str:
    if args.platform_command == "run":
        spec = _load_platform_spec(args.spec)
        if args.frames is not None:
            if args.frames < 1:
                raise ConfigurationError("--frames must be >= 1")
            from dataclasses import replace

            spec = replace(spec, tasks=tuple(
                replace(task, frames=args.frames) for task in spec.tasks
            ))
        telemetry = _open_telemetry(args)
        try:
            report = run_platform(spec, workers=args.workers,
                                  telemetry=telemetry)
        finally:
            if telemetry is not None:
                telemetry.close()
        if args.out:
            try:
                Path(args.out).write_text(report.to_json(indent=2) + "\n")
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot write report file {args.out!r}: {exc}"
                )
        return _platform_report_text(report, as_json=args.json)
    if args.platform_command == "plan":
        spec = _load_platform_spec(args.spec)
        plan = plan_placement(spec)
        if args.json:
            return json.dumps(plan.to_dict(), sort_keys=True, indent=2)
        rows = [
            [task, device,
             f"{plan.demands[task].utilisation:.4f}",
             f"{plan.demands[task].service_ms:.4f}",
             f"{plan.demands[task].protocol_ms:.4f}"]
            for task, device in plan.assignments
        ]
        rows += [
            ["(device total)", name, f"{util:.4f}", "-", "-"]
            for name, util in sorted(plan.device_utilisation.items())
        ]
        return render_table(
            ["task", "device", "utilisation", "service(ms)", "protocol(ms)"],
            rows,
            title=f"Placement plan — {spec.label} [{plan.policy}]",
        )
    # report: render a previously saved PlatformReport JSON file
    try:
        text = Path(args.report).read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read report file {args.report!r}: {exc}"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{args.report!r} is not valid JSON: {exc}"
        )
    report = PlatformReport.from_dict(data)
    return _platform_report_text(report, as_json=args.json)


# ----------------------------------------------------------------------
# significance comparison: compare
# ----------------------------------------------------------------------
def _load_artifact_json(path: str) -> Dict[str, object]:
    """Load one artifact JSON file for comparison."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read artifact {path!r}: {exc}")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path!r} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{path!r} does not hold a JSON object"
        )
    return data


def _cmd_compare(args: argparse.Namespace) -> int:
    """Compare two artifacts; print the verdict, return the exit code.

    Exit codes mirror ``diff``: 0 = no significant difference, 1 = at
    least one rate differs significantly, 2 = misuse (unreadable files,
    mismatched artifact kinds, nothing to compare).
    """
    try:
        payload = compare_artifacts(
            _load_artifact_json(args.a),
            _load_artifact_json(args.b),
            alpha=args.alpha,
            confidence=args.confidence,
            resamples=args.resamples,
            seed=args.seed,
        )
    except (StatsError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(render_comparison(payload))
    return 1 if payload["significant"] else 0


# ----------------------------------------------------------------------
# determinism linter: lint
# ----------------------------------------------------------------------
def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism linter; print the report, return the exit code."""
    config = load_config(args.config)
    report = run_lint(args.paths, config=config, rule_ids=args.rule or None)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_scenarios(args: argparse.Namespace) -> str:
    return render_table(
        ["scenario", "description"],
        [[name, get_scenario(name).description] for name in scenario_names()],
        title="Registered scenarios (python -m repro run --scenario NAME)",
    )


# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and extension "
                    "experiments (Alcaide et al., DATE 2019).",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    for name in sorted(_COMMANDS) + ["all"]:
        p = sub.add_parser(name, help=f"regenerate the {name} artifact(s)")
        p.add_argument(
            "--sms", type=int, default=6,
            help="number of SMs for the simulated artifacts (default 6)",
        )
        p.add_argument(
            "--benchmark", default="hotspot",
            help="workload for the coverage command (default hotspot)",
        )

    run_p = sub.add_parser(
        "run", help="execute a RunSpec file or a registered scenario"
    )
    run_p.add_argument("--spec", help="path to a RunSpec JSON file")
    run_p.add_argument("--scenario", help="registered scenario name")
    run_p.add_argument("--sms", type=int, default=None,
                       help="GPU size forwarded to the scenario builder")
    run_p.add_argument("--benchmark", default=None,
                       help="benchmark forwarded to the scenario builder")
    run_p.add_argument("--policy", default=None,
                       help="policy forwarded to the scenario builder")
    run_p.add_argument("--workers", type=int, default=1,
                       help="process-pool size (default 1)")
    run_p.add_argument("--json", action="store_true",
                       help="emit full artifact JSON instead of a table")

    batch_p = sub.add_parser(
        "batch", help="execute many RunSpec files on a process pool"
    )
    batch_p.add_argument("specs", nargs="+", metavar="SPEC.json",
                         help="spec files (each a RunSpec or a list)")
    batch_p.add_argument("--workers", type=int, default=4,
                         help="process-pool size (default 4)")
    batch_p.add_argument("--json", action="store_true",
                         help="emit full artifact JSON instead of a table")

    sub.add_parser("scenarios", help="list the registered scenarios")

    compare_p = sub.add_parser(
        "compare",
        help="statistical significance diff of two artifact JSON files",
    )
    compare_p.add_argument("a", metavar="A.json",
                           help="baseline artifact (campaign/stream/BENCH)")
    compare_p.add_argument("b", metavar="B.json",
                           help="candidate artifact of the same kind")
    compare_p.add_argument("--alpha", type=float, default=0.05,
                           help="significance level of the two-proportion "
                                "tests (default 0.05)")
    compare_p.add_argument("--confidence", type=float, default=0.95,
                           help="confidence level of the bootstrap "
                                "difference intervals (default 0.95)")
    compare_p.add_argument("--resamples", type=int, default=1000,
                           help="bootstrap resamples per rate "
                                "(default 1000)")
    compare_p.add_argument("--seed", type=int, default=0,
                           help="bootstrap seed (default 0)")
    compare_p.add_argument("--json", action="store_true",
                           help="emit the stable repro-compare/v1 schema")

    lint_p = sub.add_parser(
        "lint",
        help="statically check the determinism contract (repro.lint)",
    )
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        metavar="PATH",
                        help="files/directories to lint (default src/repro)")
    lint_p.add_argument("--rule", action="append", metavar="RLnnn",
                        help="run only this rule (repeatable)")
    lint_p.add_argument("--config", default=None,
                        help="lint config file (default: repro-lint.toml "
                             "in the working directory, if present)")
    lint_p.add_argument("--json", action="store_true",
                        help="emit the stable JSON report schema")

    def _telemetry_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--telemetry", default=None, metavar="OUT.jsonl",
                       help="append a repro-telemetry/v1 event log to this "
                            "file (inspect with `repro obs report`)")
        p.add_argument("--progress", action="store_true",
                       help="paint a live progress line on stderr")
        p.add_argument("--heartbeat", type=float,
                       default=DEFAULT_HEARTBEAT_S, metavar="S",
                       help="seconds between heartbeat events "
                            f"(default {DEFAULT_HEARTBEAT_S})")

    campaign_p = sub.add_parser(
        "campaign",
        help="sharded resumable fault-injection campaigns",
    )
    campaign_sub = campaign_p.add_subparsers(
        dest="campaign_command", required=True, metavar="action"
    )

    def _campaign_common(p: argparse.ArgumentParser, *,
                         execution: bool) -> None:
        if execution:
            p.add_argument("--workers", type=int, default=1,
                           help="process-pool size for shards (default 1)")
            p.add_argument("--max-shards", type=int, default=None,
                           help="run at most N pending shards, then stop "
                                "(checkpointed budget)")
        p.add_argument("--json", action="store_true",
                       help="emit JSON instead of a table")

    crun = campaign_sub.add_parser(
        "run", help="run a CampaignSpec (skips shards already in --dir)"
    )
    crun.add_argument("--spec", required=True,
                      help="path to a CampaignSpec JSON file")
    crun.add_argument("--dir", default=None,
                      help="campaign store directory (enables "
                           "checkpoint/resume; omit for in-memory)")
    _campaign_common(crun, execution=True)
    _telemetry_flags(crun)

    cresume = campaign_sub.add_parser(
        "resume", help="continue a persisted campaign from its manifest"
    )
    cresume.add_argument("--dir", required=True,
                         help="campaign store directory")
    _campaign_common(cresume, execution=True)
    _telemetry_flags(cresume)

    cstatus = campaign_sub.add_parser(
        "status", help="shard/injection progress of a campaign store"
    )
    cstatus.add_argument("--dir", required=True,
                         help="campaign store directory")
    _campaign_common(cstatus, execution=False)

    creport = campaign_sub.add_parser(
        "report", help="fold the persisted shards into the aggregate report"
    )
    creport.add_argument("--dir", required=True,
                         help="campaign store directory")
    creport.add_argument("--partial", action="store_true",
                         help="allow folding an incomplete campaign")
    _campaign_common(creport, execution=False)

    stream_p = sub.add_parser(
        "stream",
        help="continuous frame streams with online deadline analytics",
    )
    stream_sub = stream_p.add_subparsers(
        dest="stream_command", required=True, metavar="action"
    )

    srun = stream_sub.add_parser(
        "run", help="execute a StreamSpec (or a built-in ADAS task stream)"
    )
    srun.add_argument("--spec", default=None,
                      help="path to a StreamSpec JSON file")
    srun.add_argument("--task", default=None,
                      help="built-in ADAS task name (e.g. camera-perception)")
    srun.add_argument("--frames", type=int, default=None,
                      help="override the spec's frame count")
    srun.add_argument("--workers", type=int, default=1,
                      help="process-pool size for distinct-job simulation "
                           "(default 1; never changes the report)")
    srun.add_argument("--out", default=None,
                      help="also write the report JSON to this file")
    srun.add_argument("--profile", default=None, metavar="OUT.pstats",
                      help="run under cProfile and dump stats to this file "
                           "(inspect with pstats or snakeviz)")
    srun.add_argument("--json", action="store_true",
                      help="emit report JSON instead of a table")
    _telemetry_flags(srun)

    sreport = stream_sub.add_parser(
        "report", help="render a previously saved stream report"
    )
    sreport.add_argument("--report", required=True,
                         help="path to a StreamReport JSON file")
    sreport.add_argument("--json", action="store_true",
                         help="emit report JSON instead of a table")

    platform_p = sub.add_parser(
        "platform",
        help="multi-device vehicle platforms with task placement",
    )
    platform_sub = platform_p.add_subparsers(
        dest="platform_command", required=True, metavar="action"
    )

    prun = platform_sub.add_parser(
        "run", help="place and execute a PlatformSpec"
    )
    prun.add_argument("--spec", required=True,
                      help="path to a PlatformSpec JSON file")
    prun.add_argument("--frames", type=int, default=None,
                      help="override every task's frame count")
    prun.add_argument("--workers", type=int, default=1,
                      help="process-pool size, one pool task per device "
                           "(default 1; never changes the report)")
    prun.add_argument("--out", default=None,
                      help="also write the report JSON to this file")
    prun.add_argument("--json", action="store_true",
                      help="emit report JSON instead of a table")
    _telemetry_flags(prun)

    pplan = platform_sub.add_parser(
        "plan", help="show the placement decision without executing"
    )
    pplan.add_argument("--spec", required=True,
                       help="path to a PlatformSpec JSON file")
    pplan.add_argument("--json", action="store_true",
                       help="emit plan JSON instead of a table")

    preport = platform_sub.add_parser(
        "report", help="render a previously saved platform report"
    )
    preport.add_argument("--report", required=True,
                         help="path to a PlatformReport JSON file")
    preport.add_argument("--json", action="store_true",
                         help="emit report JSON instead of a table")

    obs_p = sub.add_parser(
        "obs",
        help="inspect repro-telemetry/v1 event logs (repro.obs)",
    )
    obs_sub = obs_p.add_subparsers(
        dest="obs_command", required=True, metavar="action"
    )

    def _obs_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", default=DEFAULT_OBS_DIR, metavar="DIR",
                       help="telemetry archive directory "
                            f"(default {DEFAULT_OBS_DIR})")

    oreport = obs_sub.add_parser(
        "report", help="render run summaries, the span tree and hotspots"
    )
    oreport.add_argument("path", metavar="TELEMETRY",
                         help="telemetry file or archived tag/run-id prefix")
    oreport.add_argument("--top", type=int, default=10,
                         help="hotspot rows to show (default 10)")
    oreport.add_argument("--json", action="store_true",
                         help="emit the stable repro-obs-report/v1 schema")
    _obs_dir(oreport)

    ovalidate = obs_sub.add_parser(
        "validate", help="check a telemetry file against the v1 schema"
    )
    ovalidate.add_argument("path", metavar="TELEMETRY.jsonl",
                           help="telemetry file written by --telemetry")
    ovalidate.add_argument("--strict", action="store_true",
                           help="promote tolerated findings (unknown event "
                                "types, stale worker seq) to violations")

    oarchive = obs_sub.add_parser(
        "archive", help="copy a telemetry log into the .repro-obs archive"
    )
    oarchive.add_argument("path", metavar="TELEMETRY.jsonl",
                          help="telemetry file written by --telemetry")
    oarchive.add_argument("--tag", default="",
                          help="free-form label stored with the run")
    _obs_dir(oarchive)

    olist = obs_sub.add_parser(
        "list", help="list archived telemetry runs"
    )
    olist.add_argument("--json", action="store_true",
                       help="emit repro-obs-store/v1 manifest entries")
    _obs_dir(olist)

    ogc = obs_sub.add_parser(
        "gc", help="prune the archive, keeping the newest runs per group"
    )
    ogc.add_argument("--keep", type=int, default=5, metavar="N",
                     help="runs to keep per (kinds, spec) group (default 5)")
    _obs_dir(ogc)

    oexport = obs_sub.add_parser(
        "export", help="export a telemetry log for external tools"
    )
    oexport.add_argument("path", metavar="TELEMETRY",
                         help="telemetry file or archived tag/run-id prefix")
    oexport.add_argument("--chrome", action="store_true",
                         help="Chrome/Perfetto trace-event JSON")
    oexport.add_argument("--folded", action="store_true",
                         help="collapsed-stack lines for flamegraph tools")
    oexport.add_argument("--csv", action="store_true",
                         help="heartbeat metric series as CSV")
    oexport.add_argument("--out", metavar="FILE",
                         help="write to FILE instead of stdout")
    _obs_dir(oexport)

    odiff = obs_sub.add_parser(
        "diff", help="compare two telemetry runs (span + counter deltas)"
    )
    odiff.add_argument("a", metavar="A",
                       help="baseline: telemetry file or archived tag/run id")
    odiff.add_argument("b", metavar="B",
                       help="candidate: telemetry file or archived tag/run id")
    odiff.add_argument("--json", action="store_true",
                       help="emit the stable repro-obs-diff/v1 schema")
    odiff.add_argument("--confidence", type=float, default=0.95,
                       help="interval confidence level (default 0.95)")
    odiff.add_argument("--min-rel", type=float, default=0.10,
                       help="relative self-time change floor (default 0.10)")
    odiff.add_argument("--min-abs-ms", type=float, default=1.0,
                       help="absolute self-time change floor in ms "
                            "(default 1.0)")
    _obs_dir(odiff)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "lint":
            # lint prints its own report; exit 1 = violations, 2 = misuse
            return _cmd_lint(args)
        if args.command == "compare":
            # compare prints its own verdict; exit 1 = significant
            # difference, 2 = misuse
            return _cmd_compare(args)
        if args.command == "obs":
            # obs prints its own output; exit 1 = schema violations,
            # 2 = unreadable file
            return _cmd_obs(args)
        if args.command == "run":
            print(_cmd_run(args))
        elif args.command == "batch":
            print(_cmd_batch(args))
        elif args.command == "scenarios":
            print(_cmd_scenarios(args))
        elif args.command == "campaign":
            print(_cmd_campaign(args))
        elif args.command == "stream":
            print(_cmd_stream(args))
        elif args.command == "platform":
            print(_cmd_platform(args))
        elif args.command == "all":
            print("\n\n".join(
                _COMMANDS[name](args) for name in sorted(_COMMANDS)
            ))
        else:
            print(_COMMANDS[args.command](args))
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
