"""Declarative vehicle-platform specifications — the input of :mod:`repro.platform`.

A :class:`PlatformSpec` describes a whole vehicle compute platform: a
fleet of heterogeneous :class:`DeviceSpec` GPUs (each a simulated
:class:`~repro.api.spec.GPUSpec` paired with a
:class:`~repro.gpu.cots.COTSDevice` host/transfer parameter set) and a
set of concurrent task streams (:class:`~repro.api.stream.StreamSpec`),
plus a :class:`PlacementSpec` that says how tasks are bound to devices.
Like every spec in :mod:`repro.api` all three are frozen dataclasses of
plain values: hashable, picklable, JSON-round-trippable, with a
``config_hash`` digest as provenance.

The task set is **order-canonicalised** at construction: tasks are
sorted by ``(label, config_hash)``, so two platforms that declare the
same tasks in a different order are *equal* specs with identical hashes
— the root of the platform determinism contract (see
``docs/PLATFORM.md``).

Example::

    from repro.api import DeviceSpec, PlatformSpec, StreamSpec

    spec = PlatformSpec(
        devices=(DeviceSpec(name="gpu0"),
                 DeviceSpec(name="gpu1", preset="embedded-igpu")),
        tasks=(StreamSpec.for_task("camera-perception", frames=2000),
               StreamSpec.for_task("radar-cfar", frames=2000)),
    )
    assert PlatformSpec.from_json(spec.to_json()) == spec
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.spec import GPUSpec, CotsSpec, _check_keys
from repro.api.stream import StreamSpec
from repro.errors import ConfigurationError
from repro.gpu.cots import COTSDevice, cots_device_preset

__all__ = [
    "DeviceSpec",
    "PlacementSpec",
    "PlatformSpec",
    "DEVICE_PRESETS",
    "PLACEMENT_POLICIES",
]

#: Placement-policy names accepted by :class:`PlacementSpec`.
PLACEMENT_POLICIES: Tuple[str, ...] = (
    "first_fit", "worst_fit", "pinned", "balanced",
)

#: Device presets: name -> (simulated GPU, COTS preset name).  The GPU
#: side scales the simulated kernel service times; the COTS side (see
#: :data:`repro.gpu.cots.COTS_DEVICE_PRESETS`) scales the per-frame
#: protocol overhead.  ``gtx1050ti`` is the paper's testbed;
#: ``pcie4-discrete`` / ``embedded-igpu`` are the faster/slower pair of
#: a heterogeneous vehicle platform.
DEVICE_PRESETS: Dict[str, Tuple[GPUSpec, str]] = {
    "gtx1050ti": (GPUSpec(preset="gtx1050ti"), "gtx1050ti"),
    "pcie4-discrete": (
        GPUSpec(preset="gtx1050ti", name="pcie4-discrete",
                clock_mhz=1900.0, dram_bandwidth=120.0,
                dispatch_latency=6000.0),
        "pcie4-discrete",
    ),
    "embedded-igpu": (
        GPUSpec(preset="gtx1050ti", name="embedded-igpu", num_sms=4,
                clock_mhz=900.0, dram_bandwidth=40.0,
                dispatch_latency=12000.0),
        "embedded-igpu",
    ),
}


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU of the vehicle platform.

    Attributes:
        name: platform-unique device identifier (e.g. ``"gpu0"``).
        preset: device preset name (see :data:`DEVICE_PRESETS`), or
            ``None`` for a fully explicit device.
        gpu: simulated-GPU override; ``None`` keeps the preset's GPU.
        cots: host/transfer parameter override; ``None`` keeps the
            preset's :class:`~repro.gpu.cots.COTSDevice`.
        capacity: maximum admitted utilisation of this device (sum of
            placed task demands); placement rejects anything beyond it.
    """

    name: str
    preset: Optional[str] = "gtx1050ti"
    gpu: Optional[GPUSpec] = None
    cots: Optional[CotsSpec] = None
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("device name must be non-empty")
        if self.preset is not None and self.preset not in DEVICE_PRESETS:
            raise ConfigurationError(
                f"unknown device preset {self.preset!r}; "
                f"known: {', '.join(sorted(DEVICE_PRESETS))}"
            )
        if self.preset is None and self.gpu is None:
            raise ConfigurationError(
                f"device {self.name!r}: a preset-less device needs an "
                "explicit gpu"
            )
        if self.capacity <= 0:
            raise ConfigurationError(
                f"device {self.name!r}: capacity must be positive"
            )

    # ------------------------------------------------------------------
    def gpu_spec(self) -> GPUSpec:
        """The simulated GPU this device runs (override or preset)."""
        if self.gpu is not None:
            return self.gpu
        assert self.preset is not None  # enforced in __post_init__
        return DEVICE_PRESETS[self.preset][0]

    def cots_device(self) -> COTSDevice:
        """The host/transfer parameter set (override or preset)."""
        if self.cots is not None:
            return self.cots.to_device()
        if self.preset is not None:
            return cots_device_preset(DEVICE_PRESETS[self.preset][1])
        return COTSDevice()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return {
            "name": self.name,
            "preset": self.preset,
            "gpu": self.gpu.to_dict() if self.gpu is not None else None,
            "cots": self.cots.to_dict() if self.cots is not None else None,
            "capacity": self.capacity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceSpec":
        """Inverse of :meth:`to_dict`; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"DeviceSpec expects a mapping, got {data!r}"
            )
        _check_keys(cls, data)
        if "name" not in data:
            raise ConfigurationError("DeviceSpec requires a name")
        payload = dict(data)
        if payload.get("gpu") is not None:
            payload["gpu"] = GPUSpec.from_dict(payload["gpu"])
        if payload.get("cots") is not None:
            payload["cots"] = CotsSpec.from_dict(payload["cots"])
        return cls(**payload)


@dataclass(frozen=True)
class PlacementSpec:
    """How task streams are bound to devices.

    Attributes:
        policy: ``"first_fit"`` (tasks in canonical order onto the first
            device with headroom), ``"worst_fit"`` (onto the currently
            least-utilised device with headroom), ``"balanced"``
            (longest-demand-first worst-fit bin packing) or ``"pinned"``
            (every task explicitly pinned).
        pins: explicit ``(task label, device name)`` bindings.  Pins are
            hard constraints under every policy; the ``pinned`` policy
            additionally requires them to cover the whole task set.
    """

    policy: str = "balanced"
    pins: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown placement policy {self.policy!r}; "
                f"known: {', '.join(PLACEMENT_POLICIES)}"
            )
        pins = tuple(sorted({(str(task), str(device))
                             for task, device in self.pins}))
        seen: Dict[str, str] = {}
        for task, device in pins:
            if task in seen and seen[task] != device:
                raise ConfigurationError(
                    f"task {task!r} is pinned to both {seen[task]!r} "
                    f"and {device!r}"
                )
            seen[task] = device
        object.__setattr__(self, "pins", pins)

    @property
    def pin_map(self) -> Dict[str, str]:
        """Pins as a ``task label -> device name`` mapping."""
        return dict(self.pins)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible; pins as a sorted mapping)."""
        return {
            "policy": self.policy,
            "pins": {task: device for task, device in self.pins},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlacementSpec":
        """Inverse of :meth:`to_dict`; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"PlacementSpec expects a mapping, got {data!r}"
            )
        _check_keys(cls, data)
        payload = dict(data)
        pins = payload.get("pins") or ()
        if isinstance(pins, Mapping):
            payload["pins"] = tuple(sorted(pins.items()))
        else:
            payload["pins"] = tuple(
                (pair[0], pair[1]) for pair in pins
            )
        return cls(**payload)


@dataclass(frozen=True)
class PlatformSpec:
    """One declarative multi-device vehicle platform.

    Attributes:
        devices: the GPU fleet, in declaration order (``first_fit``
            scans devices in this order).  Names must be unique.
        tasks: the concurrent task streams.  Labels must be unique (set
            distinct :attr:`~repro.api.stream.StreamSpec.tag` values for
            replicas); the tuple is canonicalised to ``(label,
            config_hash)`` order at construction, so declaration order
            never changes the spec, its hash, or the platform report.
        placement: the placement policy and pins.
        tag: free-form label carried into the report.
    """

    devices: Tuple[DeviceSpec, ...]
    tasks: Tuple[StreamSpec, ...]
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    tag: str = ""

    def __post_init__(self) -> None:
        devices = tuple(self.devices)
        tasks = tuple(sorted(self.tasks,
                             key=lambda t: (t.label, t.config_hash)))
        object.__setattr__(self, "devices", devices)
        object.__setattr__(self, "tasks", tasks)
        if not devices:
            raise ConfigurationError("platform needs at least one device")
        if not tasks:
            raise ConfigurationError("platform needs at least one task")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"duplicate device name(s): {', '.join(dupes)}"
            )
        labels = [t.label for t in tasks]
        if len(set(labels)) != len(labels):
            dupes = sorted({x for x in labels if labels.count(x) > 1})
            raise ConfigurationError(
                f"duplicate task label(s): {', '.join(dupes)} — give "
                "replicas distinct StreamSpec tags"
            )
        known = set(names)
        for task, device in self.placement.pins:
            if device not in known:
                raise ConfigurationError(
                    f"task {task!r} is pinned to unknown device {device!r}"
                )

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable identity (tag or a devices-x-tasks summary)."""
        return self.tag or (
            f"{len(self.devices)}-device/{len(self.tasks)}-task platform"
        )

    def device(self, name: str) -> DeviceSpec:
        """The device with the given name.

        Raises:
            ConfigurationError: for unknown device names.
        """
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise ConfigurationError(
            f"unknown device {name!r}; "
            f"known: {', '.join(d.name for d in self.devices)}"
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (nested dicts/lists, JSON-compatible)."""
        return {
            "devices": [d.to_dict() for d in self.devices],
            "tasks": [t.to_dict() for t in self.tasks],
            "placement": self.placement.to_dict(),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        """Inverse of :meth:`to_dict`; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"PlatformSpec expects a mapping, got {data!r}"
            )
        _check_keys(cls, data)
        for key in ("devices", "tasks"):
            if key not in data:
                raise ConfigurationError(f"PlatformSpec requires {key}")
        payload = dict(data)
        payload["devices"] = tuple(
            DeviceSpec.from_dict(d) for d in payload["devices"] or ()
        )
        payload["tasks"] = tuple(
            StreamSpec.from_dict(t) for t in payload["tasks"] or ()
        )
        if payload.get("placement") is not None:
            payload["placement"] = PlacementSpec.from_dict(
                payload["placement"]
            )
        else:
            payload.pop("placement", None)
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys, round-trips exactly)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PlatformSpec":
        """Parse a spec from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"invalid PlatformSpec JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    @property
    def config_hash(self) -> str:
        """Hex digest of the canonical JSON form (provenance key)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]
