"""Sampling and repeat-until-confidence specifications.

Two small frozen specs extend :class:`~repro.api.campaign.CampaignSpec`
(and the stream soak repeater) with the statistical machinery of
:mod:`repro.stats`:

* :class:`SamplingSpec` — how the campaign draws its fault population:
  ``stratified`` (fixed per-kind sample shares via a deterministic block
  layout) or ``importance`` (per-index kind draw from a proposal
  distribution, estimates reweighted Horvitz–Thompson style).  The
  nominal fault mix — the population the estimate is *about* — stays in
  :class:`~repro.api.spec.FaultPlanSpec`; this spec only reallocates
  where the injection budget is spent.
* :class:`RepeatSpec` — when to stop: a confidence-interval half-width
  target on one metric, a batch size (the checkpoint granularity) and a
  hard budget cap.

Both are plain frozen dataclasses: hashable, picklable and
JSON-round-trippable, like every spec in :mod:`repro.api`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.api.spec import _flat_from_dict, _flat_to_dict
from repro.errors import ConfigurationError
from repro.faults.campaign import SamplingConfig

__all__ = ["SamplingSpec", "RepeatSpec"]

#: Sampling methods a :class:`SamplingSpec` can name.
SAMPLING_METHODS = ("stratified", "importance")

#: Interval methods a :class:`RepeatSpec` can name.
INTERVAL_METHODS = ("auto", "wilson", "normal", "bootstrap")


@dataclass(frozen=True)
class SamplingSpec:
    """Fault-space sampling design (the v2, prefix-stable layouts).

    The three integer fields are *relative allocation weights* over the
    fault kinds, mirroring :class:`~repro.api.spec.FaultPlanSpec`'s
    field names: ``transient_ccf=1, permanent_sm=8, seu=1`` spends 80%
    of the injection budget on permanent SM faults regardless of their
    (tiny) nominal population share.  Estimates are reweighted back to
    the nominal mix, so oversampling a rare stratum changes variance,
    never the expected value.

    Attributes:
        method: ``"stratified"`` or ``"importance"``.
        transient_ccf: allocation weight of transient CCFs.
        permanent_sm: allocation weight of permanent SM defects.
        seu: allocation weight of SEUs.
    """

    method: str
    transient_ccf: int = 1
    permanent_sm: int = 1
    seu: int = 1

    def __post_init__(self) -> None:
        if self.method not in SAMPLING_METHODS:
            raise ConfigurationError(
                f"unknown sampling method {self.method!r}; "
                f"known: {', '.join(SAMPLING_METHODS)}"
            )
        for name in ("transient_ccf", "permanent_sm", "seu"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"sampling allocation {name} must be an integer, "
                    f"got {value!r}"
                )
            if value < 0:
                raise ConfigurationError(
                    f"sampling allocation {name} cannot be negative"
                )
        if self.transient_ccf + self.permanent_sm + self.seu == 0:
            raise ConfigurationError(
                "at least one sampling allocation weight must be positive"
            )

    # ------------------------------------------------------------------
    def to_config(self) -> SamplingConfig:
        """Materialise the faults-layer :class:`SamplingConfig` mirror."""
        return SamplingConfig(
            method=self.method,
            transient_ccf=self.transient_ccf,
            permanent_sm=self.permanent_sm,
            seu=self.seu,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


@dataclass(frozen=True)
class RepeatSpec:
    """Repeat-until-confidence stopping rule.

    Attributes:
        metric: the targeted rate — for campaigns one of ``"masked"``,
            ``"detected"``, ``"sdc"``; for streams one of
            ``"deadline_miss"``, ``"drop"``, ``"unsafe"``,
            ``"fault_sdc"`` (the runners validate their own vocabulary).
        confidence: two-sided confidence level of the interval tested.
        relative_half_width: stop once ``half_width / rate`` drops to
            this (mutually exclusive with ``half_width``).
        half_width: stop once the absolute half-width drops to this.
        batch: injections (or frames) added per evaluation point — the
            campaign repeater's shard size, i.e. its checkpoint/resume
            granularity.
        max_total: hard budget cap on total injections (or frames).
        interval: interval construction (``auto``/``wilson``/``normal``/
            ``bootstrap``); ``auto`` picks Wilson for uniform sampling
            and normal for weighted estimators.
    """

    metric: str = "sdc"
    confidence: float = 0.95
    relative_half_width: Optional[float] = None
    half_width: Optional[float] = None
    batch: int = 1000
    max_total: int = 100_000
    interval: str = "auto"

    def __post_init__(self) -> None:
        if not self.metric:
            raise ConfigurationError("repeat metric must be non-empty")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if (self.relative_half_width is None) == (self.half_width is None):
            raise ConfigurationError(
                "set exactly one of relative_half_width / half_width"
            )
        target = (self.relative_half_width
                  if self.relative_half_width is not None else self.half_width)
        if target <= 0.0:
            raise ConfigurationError(
                f"the CI half-width target must be positive, got {target}"
            )
        if self.batch < 1:
            raise ConfigurationError("repeat batch must be >= 1")
        if self.max_total < self.batch:
            raise ConfigurationError(
                f"max_total ({self.max_total}) must be >= batch "
                f"({self.batch})"
            )
        if self.interval not in INTERVAL_METHODS:
            raise ConfigurationError(
                f"unknown interval method {self.interval!r}; "
                f"known: {', '.join(INTERVAL_METHODS)}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepeatSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)
