"""Named, parameterized :class:`RunSpec` builders — the scenario registry.

Every paper artifact and extension experiment is re-expressed here as a
scenario: a named function that expands a few parameters into the exact
list of :class:`~repro.api.spec.RunSpec` objects the experiment needs.
The legacy runners in :mod:`repro.analysis.experiments` and the CLI both
build their specs through this registry, so "the Figure 4 experiment" has
exactly one definition::

    from repro.api import build_scenario, run_many

    specs = build_scenario("fig4", benchmarks=("hotspot", "nn"))
    artifacts = run_many(specs, workers=4)

Third-party extensions can add their own scenarios with
:func:`register_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.spec import (
    CotsSpec,
    FaultPlanSpec,
    GPUSpec,
    KernelSpec,
    RunSpec,
    WorkloadSpec,
)
from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignConfig
from repro.gpu.config import GPUConfig
from repro.gpu.cots import COTSDevice
from repro.gpu.scheduler.registry import PAPER_POLICIES
from repro.workloads.rodinia import FIG4_BENCHMARKS, FIG5_BENCHMARKS

__all__ = [
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_scenario",
]

#: the Figure 3 / policy-fit synthetic archetypes, in paper order.
FIG3_SYNTHETICS: Tuple[str, ...] = ("short", "heavy", "friendly", "narrow-long")


@dataclass(frozen=True)
class Scenario:
    """One registered scenario.

    Attributes:
        name: registry key.
        description: one-line summary shown by ``python -m repro scenarios``.
        builder: callable expanding keyword parameters into specs.
    """

    name: str
    description: str
    builder: Callable[..., List[RunSpec]]

    def build(self, **params) -> List[RunSpec]:
        """Expand the scenario into its run specifications."""
        return self.builder(**params)


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(name: str, description: str
                      ) -> Callable[[Callable[..., List[RunSpec]]],
                                    Callable[..., List[RunSpec]]]:
    """Decorator registering a spec builder under ``name``.

    Raises:
        ConfigurationError: when the name is already taken.
    """
    def _decorator(builder: Callable[..., List[RunSpec]]
                   ) -> Callable[..., List[RunSpec]]:
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _REGISTRY[name] = Scenario(
            name=name, description=description, builder=builder
        )
        return builder
    return _decorator


def get_scenario(name: str) -> Scenario:
    """Look up a scenario.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def build_scenario(name: str, **params) -> List[RunSpec]:
    """Build the specs of one scenario (see :func:`get_scenario`)."""
    return get_scenario(name).build(**params)


# ----------------------------------------------------------------------
# parameter coercion helpers
# ----------------------------------------------------------------------
def _gpu_spec(gpu: Union[GPUSpec, GPUConfig, None],
              sms: Optional[int] = None) -> GPUSpec:
    """Accept a GPUSpec, a concrete GPUConfig, or None (paper default).

    Raises:
        ConfigurationError: when both ``gpu`` and ``sms`` are given —
            silently preferring one would run a configuration the caller
            did not ask for.
    """
    if gpu is not None and sms is not None:
        raise ConfigurationError(
            "pass either gpu or sms, not both (sms would be ignored)"
        )
    if isinstance(gpu, GPUSpec):
        return gpu
    if isinstance(gpu, GPUConfig):
        return GPUSpec.from_config(gpu)
    return GPUSpec(preset="gpgpusim", num_sms=sms)


def _fault_plan(config: Union[FaultPlanSpec, CampaignConfig, None]
                ) -> FaultPlanSpec:
    if isinstance(config, FaultPlanSpec):
        return config
    if isinstance(config, CampaignConfig):
        return FaultPlanSpec.from_config(config)
    return FaultPlanSpec()


def _cots_spec(device: Union[CotsSpec, COTSDevice, None]) -> CotsSpec:
    if isinstance(device, CotsSpec):
        return device
    if isinstance(device, COTSDevice):
        return CotsSpec.from_device(device)
    return CotsSpec()


# ----------------------------------------------------------------------
# generic front doors
# ----------------------------------------------------------------------
@register_scenario(
    "benchmark",
    "one redundant (or plain) run of a suite benchmark under one policy",
)
def _benchmark(benchmark: str = "hotspot", policy: str = "srrs",
               redundancy: str = "dmr", gpu=None, sms: Optional[int] = None,
               baseline: bool = False, faults=None) -> List[RunSpec]:
    return [
        RunSpec(
            workload=WorkloadSpec(benchmark=benchmark),
            gpu=_gpu_spec(gpu, sms),
            policy=policy,
            redundancy=redundancy,
            baseline=baseline,
            faults=_fault_plan(faults) if faults is not None else None,
            tag=benchmark,
        )
    ]


@register_scenario(
    "quickstart",
    "the README kernel under every paper policy (diversity vs overhead)",
)
def _quickstart(policies: Sequence[str] = PAPER_POLICIES,
                sms: Optional[int] = None) -> List[RunSpec]:
    kernel = KernelSpec(
        name="adas/object-detect", grid_blocks=36, threads_per_block=256,
        work_per_block=4000.0, bytes_per_block=3000.0,
    )
    return [
        RunSpec(
            workload=WorkloadSpec(kernels=(kernel,)),
            gpu=_gpu_spec(None, sms),
            policy=policy,
            tag="quickstart",
        )
        for policy in policies
    ]


# ----------------------------------------------------------------------
# paper figures
# ----------------------------------------------------------------------
@register_scenario(
    "fig4",
    "Figure 4: redundant-execution cycles per benchmark and policy",
)
def _fig4(benchmarks: Sequence[str] = FIG4_BENCHMARKS, gpu=None,
          sms: Optional[int] = None,
          policies: Sequence[str] = PAPER_POLICIES) -> List[RunSpec]:
    gpu_spec = _gpu_spec(gpu, sms)
    return [
        RunSpec(
            workload=WorkloadSpec(benchmark=name),
            gpu=gpu_spec,
            policy=policy,
            tag=name,
        )
        for name in benchmarks
        for policy in policies
    ]


@register_scenario(
    "fig5",
    "Figure 5: COTS end-to-end baseline vs redundant-serialized times",
)
def _fig5(benchmarks: Sequence[str] = FIG5_BENCHMARKS,
          device=None) -> List[RunSpec]:
    cots = _cots_spec(device)
    return [
        RunSpec(
            workload=WorkloadSpec(benchmark=name),
            simulate=False,
            cots=cots,
            tag=name,
        )
        for name in benchmarks
    ]


@register_scenario(
    "fig3",
    "Figure 3: kernel-category classification of the synthetic archetypes",
)
def _fig3(gpu=None, sms: Optional[int] = None,
          synthetics: Sequence[str] = FIG3_SYNTHETICS) -> List[RunSpec]:
    gpu_spec = _gpu_spec(gpu, sms)
    return [
        RunSpec(
            workload=WorkloadSpec(synthetic=name),
            gpu=gpu_spec,
            redundancy="none",
            simulate=False,
            classify=True,
            tag=f"synthetic/{name}",
        )
        for name in synthetics
    ]


# ----------------------------------------------------------------------
# extension experiments
# ----------------------------------------------------------------------
@register_scenario(
    "coverage",
    "E5: fault-injection coverage of every policy on one benchmark",
)
def _coverage(benchmark: str = "hotspot", gpu=None,
              sms: Optional[int] = None, config=None,
              policies: Sequence[str] = PAPER_POLICIES) -> List[RunSpec]:
    gpu_spec = _gpu_spec(gpu, sms)
    plan = _fault_plan(config)
    return [
        RunSpec(
            workload=WorkloadSpec(benchmark=benchmark),
            gpu=gpu_spec,
            policy=policy,
            faults=plan,
            tag=benchmark,
        )
        for policy in policies
    ]


@register_scenario(
    "policyfit",
    "Section IV-D: per-category policy overheads on synthetic archetypes",
)
def _policyfit(gpu=None, sms: Optional[int] = None,
               synthetics: Sequence[str] = FIG3_SYNTHETICS,
               policies: Sequence[str] = PAPER_POLICIES) -> List[RunSpec]:
    gpu_spec = _gpu_spec(gpu, sms)
    return [
        RunSpec(
            workload=WorkloadSpec(synthetic=name),
            gpu=gpu_spec,
            policy=policy,
            # classification is policy-independent; request it once per
            # kernel rather than per (kernel, policy)
            classify=policy == policies[0],
            tag=f"synthetic/{name}",
        )
        for name in synthetics
        for policy in policies
    ]


@register_scenario(
    "sweep-dispatch",
    "E9: dispatch-latency ablation (the natural-staggering knob)",
)
def _sweep_dispatch(latencies: Sequence[float] = (500.0, 1500.0, 3000.0,
                                                  6000.0, 12000.0),
                    benchmark: str = "hotspot", gpu=None,
                    policies: Sequence[str] = PAPER_POLICIES) -> List[RunSpec]:
    base = _gpu_spec(gpu)
    return [
        RunSpec(
            workload=WorkloadSpec(benchmark=benchmark),
            gpu=replace(base, dispatch_latency=float(latency)),
            policy=policy,
            tag=f"{benchmark}@{latency:g}",
        )
        for latency in latencies
        for policy in policies
    ]


@register_scenario(
    "sweep-sms",
    "E9: SM-count ablation (scaling toward bigger automotive GPUs)",
)
def _sweep_sms(sm_counts: Sequence[int] = (2, 4, 6, 8, 12, 16),
               benchmark: str = "hotspot", gpu=None,
               policies: Sequence[str] = PAPER_POLICIES) -> List[RunSpec]:
    base = _gpu_spec(gpu)
    return [
        RunSpec(
            workload=WorkloadSpec(benchmark=benchmark),
            gpu=replace(base, num_sms=int(count)),
            policy=policy,
            tag=f"{benchmark}@{count}sm",
        )
        for count in sm_counts
        for policy in policies
    ]
