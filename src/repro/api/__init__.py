"""One declarative front door for every run.

The pipeline is :class:`RunSpec` → :class:`Engine` → :class:`RunArtifact`,
in four parts:

* :mod:`repro.api.spec` — frozen, JSON-round-trippable run descriptions
  (GPU + workload + policy + redundancy + optional fault plan / COTS /
  classification options);
* :mod:`repro.api.engine` — the :class:`Engine` facade with ``run(spec)``
  and ``run_many(specs, workers=N)`` (deterministic process-pool batch
  execution);
* :mod:`repro.api.scenarios` — the registry of named, parameterized spec
  builders covering every paper figure and extension experiment;
* :mod:`repro.api.campaign` — :class:`CampaignSpec`, the declarative
  description of a sharded resumable fault-injection campaign executed by
  :mod:`repro.campaigns`;
* :mod:`repro.api.stream` — :class:`StreamSpec`, the declarative
  description of a continuous open-loop frame stream executed by
  :mod:`repro.streams`;
* :mod:`repro.api.platform` — :class:`PlatformSpec` /
  :class:`DeviceSpec` / :class:`PlacementSpec`, the declarative
  description of a multi-device vehicle platform executed by
  :mod:`repro.platform`.

Quickstart::

    import repro

    spec = repro.RunSpec(workload=repro.WorkloadSpec(benchmark="hotspot"))
    artifact = repro.run(spec)
    assert artifact.diversity.fully_diverse

    specs = repro.build_scenario("fig4")
    artifacts = repro.run_many(specs, workers=4)
"""

from repro.api.campaign import CampaignSpec
from repro.api.artifact import (
    ClassificationRow,
    ComparisonSummary,
    CotsSummary,
    DiversitySummary,
    FaultSummary,
    RunArtifact,
    TimingSummary,
)
from repro.api.engine import Engine, run, run_many
from repro.api.scenarios import (
    Scenario,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.api.spec import (
    CotsSpec,
    FaultPlanSpec,
    GPUSpec,
    KernelSpec,
    RunSpec,
    SMSpec,
    WorkloadSpec,
)
from repro.api.stats import RepeatSpec, SamplingSpec
from repro.api.stream import ArrivalSpec, StreamFaultSpec, StreamSpec
from repro.api.platform import DeviceSpec, PlacementSpec, PlatformSpec

__all__ = [
    # specs
    "RunSpec",
    "GPUSpec",
    "SMSpec",
    "KernelSpec",
    "WorkloadSpec",
    "FaultPlanSpec",
    "CotsSpec",
    "CampaignSpec",
    "StreamSpec",
    "ArrivalSpec",
    "StreamFaultSpec",
    "DeviceSpec",
    "PlacementSpec",
    "PlatformSpec",
    "SamplingSpec",
    "RepeatSpec",
    # artifacts
    "RunArtifact",
    "TimingSummary",
    "DiversitySummary",
    "ComparisonSummary",
    "ClassificationRow",
    "CotsSummary",
    "FaultSummary",
    # engine
    "Engine",
    "run",
    "run_many",
    # scenarios
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_scenario",
]
