"""Declarative stream specifications — the input of :mod:`repro.streams`.

A :class:`StreamSpec` describes an *open-loop* stream of frame jobs: the
per-frame job template (a :class:`~repro.api.spec.RunSpec` — workload,
GPU, policy, redundancy degree), the arrival process
(:class:`ArrivalSpec` — periodic, jittered or Poisson), the queueing
discipline (bounded FIFO with drop-on-full backpressure), the per-frame
deadline budget and an optional per-frame fault overlay
(:class:`StreamFaultSpec`).  Like every spec in :mod:`repro.api` it is a
frozen dataclass of plain values: hashable, picklable and
JSON-round-trippable, with a :attr:`StreamSpec.config_hash` digest of the
canonical JSON form as provenance.

Example::

    from repro.api import ArrivalSpec, RunSpec, StreamSpec, WorkloadSpec

    spec = StreamSpec(
        run=RunSpec(workload=WorkloadSpec(benchmark="hotspot"),
                    policy="srrs"),
        arrival=ArrivalSpec(model="jittered", period_ms=33.3,
                            jitter_ms=3.0),
        frames=100_000,
        deadline_ms=100.0,
    )
    assert StreamSpec.from_json(spec.to_json()) == spec

:meth:`StreamSpec.for_task` builds the spec of one ADAS task from
:data:`repro.workloads.adas.ADAS_TASKS`: the task's kernel chain becomes
the workload, its activation period the arrival period and its FTTI the
per-frame deadline budget.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.spec import (
    KernelSpec,
    RunSpec,
    WorkloadSpec,
    _check_keys,
    _flat_from_dict,
    _flat_to_dict,
)
from repro.errors import ConfigurationError
from repro.iso26262.asil import as_asil

__all__ = ["ArrivalSpec", "StreamFaultSpec", "StreamSpec", "ARRIVAL_MODELS"]

#: Arrival-model names accepted by :class:`ArrivalSpec`.
ARRIVAL_MODELS: Tuple[str, ...] = ("periodic", "jittered", "poisson")


@dataclass(frozen=True)
class ArrivalSpec:
    """The open-loop arrival process of a frame stream.

    Attributes:
        model: ``"periodic"`` (frame *i* arrives at ``i * period_ms``),
            ``"jittered"`` (periodic plus an independent uniform offset in
            ``[-jitter_ms, +jitter_ms]`` per frame) or ``"poisson"``
            (exponential inter-arrival times with mean ``period_ms``).
        period_ms: activation period — the mean inter-arrival time.
        jitter_ms: per-frame uniform jitter half-width (``"jittered"``
            only); must stay below ``period_ms / 2`` so arrival times
            remain non-decreasing.
    """

    model: str = "periodic"
    period_ms: float = 33.3
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.model not in ARRIVAL_MODELS:
            raise ConfigurationError(
                f"unknown arrival model {self.model!r}; "
                f"known: {', '.join(ARRIVAL_MODELS)}"
            )
        if self.period_ms <= 0:
            raise ConfigurationError("arrival period must be positive")
        if self.jitter_ms < 0:
            raise ConfigurationError("arrival jitter cannot be negative")
        if self.model != "jittered" and self.jitter_ms:
            raise ConfigurationError(
                f"jitter_ms only applies to the 'jittered' model, "
                f"not {self.model!r}"
            )
        if self.model == "jittered" and self.jitter_ms > self.period_ms / 2:
            raise ConfigurationError(
                "jitter_ms must not exceed half the period (arrival times "
                "must stay non-decreasing)"
            )

    @property
    def rate_hz(self) -> float:
        """Mean arrival rate in frames per second."""
        return 1000.0 / self.period_ms

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


@dataclass(frozen=True)
class StreamFaultSpec:
    """Per-frame fault overlay of a stream (memoryless sampling).

    Every frame independently suffers one injected hardware fault with
    probability ``probability``, drawn from the frame's own PRNG
    substream (so the overlay is independent of worker/chunk
    configuration).  The fault kind is chosen by the three weights,
    mirroring the population mix of
    :class:`~repro.faults.campaign.CampaignConfig`.  Detected errors
    trigger a full redundant re-execution of the frame — surfacing as
    added latency and possibly a deadline miss — while silent corruptions
    are counted as delivered-but-wrong frames.

    Attributes:
        probability: per-frame injection probability in ``[0, 1]``.
        transient_ccf: relative weight of chip-wide transient CCFs.
        permanent_sm: relative weight of (frame-local) permanent SM
            defects.
        seu: relative weight of local single-event upsets.
        phase_quantum: transient-CCF alignment quantum in work units.
    """

    probability: float = 0.0
    transient_ccf: int = 2
    permanent_sm: int = 1
    seu: int = 1
    phase_quantum: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                "fault probability must lie in [0, 1]"
            )
        if min(self.transient_ccf, self.permanent_sm, self.seu) < 0:
            raise ConfigurationError("fault-kind weights cannot be negative")
        if self.transient_ccf + self.permanent_sm + self.seu == 0:
            raise ConfigurationError(
                "at least one fault-kind weight must be positive"
            )
        if self.phase_quantum <= 0:
            raise ConfigurationError("phase quantum must be positive")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamFaultSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


@dataclass(frozen=True)
class StreamSpec:
    """One declarative open-loop frame stream.

    Attributes:
        run: the per-frame job template — workload, GPU, policy and
            redundancy degree.  Must simulate (``simulate=True``), must
            be redundant (``effective_copies >= 2``) and must not carry
            an inline fault plan (the stream owns its fault overlay).
        arrival: the arrival process (see :class:`ArrivalSpec`).
        frames: number of frames the stream generates.
        queue_depth: maximum frames *waiting* behind the one in service;
            an arrival that finds the queue full is dropped
            (backpressure).
        deadline_ms: per-frame latency budget (arrival to completion);
            ``None`` defaults to the arrival period.  For ADAS tasks this
            is the FTTI budget — see :meth:`for_task`.
        faults: optional per-frame fault overlay (see
            :class:`StreamFaultSpec`).
        workload_mix: optional rotation of workloads — frame ``i``
            executes ``workload_mix[i % len(workload_mix)]`` instead of
            ``run.workload`` (which still fixes GPU/policy/redundancy).
        quantiles: latency quantiles the online analytics estimate;
            strictly increasing values in ``(0, 1)``.
        window_ms: tumbling-window length of the throughput/utilisation
            analytics; ``None`` defaults to 50 arrival periods.
        seed: master PRNG seed of the stream's substreams (jitter,
            Poisson gaps, fault overlay).
        tag: free-form label carried into the report.
        asil: integrity level of the task's safety goal (``"QM"``,
            ``"A"``–``"D"``; any :func:`repro.iso26262.asil.as_asil`
            form, canonicalised to the level name).  Set by
            :meth:`for_task` from the ADAS library; drives the
            platform-level ISO 26262 rollup.  ``None`` lets the rollup
            fall back to a library lookup by label.
    """

    run: RunSpec
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    frames: int = 1000
    queue_depth: int = 4
    deadline_ms: Optional[float] = None
    faults: Optional[StreamFaultSpec] = None
    workload_mix: Tuple[WorkloadSpec, ...] = ()
    quantiles: Tuple[float, ...] = (0.5, 0.9, 0.99)
    window_ms: Optional[float] = None
    seed: int = 2019
    tag: str = ""
    asil: Optional[str] = None

    def __post_init__(self) -> None:
        if self.asil is not None:
            object.__setattr__(self, "asil", as_asil(self.asil).name)
        if not self.run.simulate:
            raise ConfigurationError(
                "a stream needs a simulated run (simulate=True) — frame "
                "service times come from the virtual-time simulator"
            )
        if self.run.effective_copies < 2:
            raise ConfigurationError(
                "a stream executes frames redundantly (copies >= 2); "
                f"got {self.run.effective_copies}"
            )
        if self.run.faults is not None:
            raise ConfigurationError(
                "the stream owns the fault overlay: set StreamSpec.faults, "
                "not RunSpec.faults"
            )
        if self.frames < 1:
            raise ConfigurationError("stream must generate at least one frame")
        if self.queue_depth < 0:
            raise ConfigurationError("queue depth cannot be negative")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.window_ms is not None and self.window_ms <= 0:
            raise ConfigurationError("analytics window must be positive")
        object.__setattr__(self, "workload_mix", tuple(self.workload_mix))
        object.__setattr__(self, "quantiles", tuple(self.quantiles))
        if not self.quantiles:
            raise ConfigurationError("at least one latency quantile required")
        if any(not 0.0 < q < 1.0 for q in self.quantiles):
            raise ConfigurationError("quantiles must lie strictly in (0, 1)")
        if list(self.quantiles) != sorted(set(self.quantiles)):
            raise ConfigurationError(
                "quantiles must be strictly increasing"
            )

    # ------------------------------------------------------------------
    @classmethod
    def for_task(cls, task_name: str, *, frames: int = 1000,
                 arrival_model: str = "periodic", jitter_ms: float = 0.0,
                 device: Any = None,
                 **overrides: Any) -> "StreamSpec":
        """Build the stream of one ADAS task from the built-in library.

        The task's kernel chain becomes the workload, its activation
        period the arrival period, its FTTI the per-frame deadline and
        its recommended policy the run policy.

        Args:
            task_name: a name from
                :data:`repro.workloads.adas.ADAS_TASKS` (e.g.
                ``"camera-perception"``).
            frames: number of frames to stream.
            arrival_model: arrival model name (see :class:`ArrivalSpec`).
            jitter_ms: jitter half-width for the ``"jittered"`` model.
            device: optional device the task runs on — a
                :class:`~repro.api.platform.DeviceSpec` or a preset name
                from :data:`~repro.api.platform.DEVICE_PRESETS`.  The
                device's simulated GPU replaces the run's default, so
                per-frame service times reflect the heterogeneous
                hardware (the default keeps the paper's GPGPU-Sim
                platform).
            **overrides: any further :class:`StreamSpec` fields.

        Raises:
            ConfigurationError: for unknown task names, device preset
                names, or device objects of the wrong type.
        """
        from repro.workloads.adas import ADAS_TASKS

        by_name = {task.name: task for task in ADAS_TASKS}
        task = by_name.get(task_name)
        if task is None:
            raise ConfigurationError(
                f"unknown ADAS task {task_name!r}; "
                f"known: {', '.join(sorted(by_name))}"
            )
        workload = WorkloadSpec(kernels=tuple(
            KernelSpec.from_descriptor(kd) for kd in task.kernels
        ))
        run = RunSpec(workload=workload, policy=task.policy)
        if device is not None:
            # imported lazily: repro.api.platform depends on this module
            from repro.api.platform import DeviceSpec

            if isinstance(device, str):
                device = DeviceSpec(name=device, preset=device)
            elif not isinstance(device, DeviceSpec):
                raise ConfigurationError(
                    "device must be a DeviceSpec or a preset name, "
                    f"got {device!r}"
                )
            run = replace(run, gpu=device.gpu_spec())
        spec = cls(
            run=run,
            arrival=ArrivalSpec(model=arrival_model,
                                period_ms=task.period_ms,
                                jitter_ms=jitter_ms),
            frames=frames,
            deadline_ms=task.ftti.milliseconds,
            tag=task.name,
            asil=task.asil.name,
        )
        return replace(spec, **overrides) if overrides else spec

    # ------------------------------------------------------------------
    @property
    def effective_deadline_ms(self) -> float:
        """The per-frame latency budget actually enforced."""
        if self.deadline_ms is not None:
            return self.deadline_ms
        return self.arrival.period_ms

    @property
    def effective_window_ms(self) -> float:
        """The analytics window length actually used."""
        if self.window_ms is not None:
            return self.window_ms
        return 50.0 * self.arrival.period_ms

    @property
    def label(self) -> str:
        """Human-readable identity (tag or the underlying run's label)."""
        return self.tag or self.run.label

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (nested dicts/lists, JSON-compatible)."""
        return {
            "run": self.run.to_dict(),
            "arrival": self.arrival.to_dict(),
            "frames": self.frames,
            "queue_depth": self.queue_depth,
            "deadline_ms": self.deadline_ms,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "workload_mix": [w.to_dict() for w in self.workload_mix],
            "quantiles": list(self.quantiles),
            "window_ms": self.window_ms,
            "seed": self.seed,
            "tag": self.tag,
            "asil": self.asil,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamSpec":
        """Inverse of :meth:`to_dict`; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"StreamSpec expects a mapping, got {data!r}"
            )
        _check_keys(cls, data)
        if "run" not in data:
            raise ConfigurationError("StreamSpec requires a run")
        payload = dict(data)
        payload["run"] = RunSpec.from_dict(payload["run"])
        if payload.get("arrival") is not None:
            payload["arrival"] = ArrivalSpec.from_dict(payload["arrival"])
        else:
            payload.pop("arrival", None)
        if payload.get("faults") is not None:
            payload["faults"] = StreamFaultSpec.from_dict(payload["faults"])
        payload["workload_mix"] = tuple(
            WorkloadSpec.from_dict(w)
            for w in payload.get("workload_mix") or ()
        )
        if payload.get("quantiles") is not None:
            payload["quantiles"] = tuple(payload["quantiles"])
        else:
            payload.pop("quantiles", None)
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys, round-trips exactly)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StreamSpec":
        """Parse a spec from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"invalid StreamSpec JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    @property
    def config_hash(self) -> str:
        """Hex digest of the canonical JSON form (provenance key)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]
