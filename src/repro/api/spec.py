"""Declarative run specifications — the input side of :mod:`repro.api`.

A :class:`RunSpec` describes *one* execution of the reproduction's models:
which GPU (:class:`GPUSpec`), which workload (:class:`WorkloadSpec`), which
scheduling policy and redundancy mode, and which optional analyses ride
along (baseline makespan, kernel classification, COTS end-to-end model,
fault-injection campaign).  Every spec is a frozen dataclass of plain
values, so it is hashable, picklable (the batch executor ships specs to
worker processes) and JSON-round-trippable::

    spec = RunSpec(workload=WorkloadSpec(benchmark="hotspot"))
    assert RunSpec.from_json(spec.to_json()) == spec

The :attr:`RunSpec.config_hash` digest of the canonical JSON form is
recorded in every :class:`~repro.api.artifact.RunArtifact` as provenance,
so results can always be traced back to the exact configuration that
produced them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignConfig
from repro.gpu.config import GPUConfig, SMConfig
from repro.gpu.cots import COTSDevice
from repro.gpu.kernel import KernelDescriptor
from repro.redundancy.diversity import DEFAULT_PHASE_TOLERANCE
from repro.workloads.rodinia import get_benchmark
from repro.workloads.synthetic import (
    make_friendly_kernel,
    make_heavy_kernel,
    make_narrow_kernel,
    make_short_kernel,
)

__all__ = [
    "SMSpec",
    "GPUSpec",
    "KernelSpec",
    "WorkloadSpec",
    "FaultPlanSpec",
    "CotsSpec",
    "RunSpec",
    "REDUNDANCY_COPIES",
    "SYNTHETIC_KERNELS",
]

#: redundancy-mode name -> number of kernel copies launched.
REDUNDANCY_COPIES: Dict[str, int] = {"none": 1, "dmr": 2, "tmr": 3}

#: synthetic-workload name -> kernel factory (see :mod:`repro.workloads.synthetic`).
SYNTHETIC_KERNELS: Dict[str, Callable[[GPUConfig], KernelDescriptor]] = {
    "short": make_short_kernel,
    "heavy": make_heavy_kernel,
    "friendly": make_friendly_kernel,
    "narrow": make_narrow_kernel,
    "narrow-long": lambda gpu: make_narrow_kernel(
        gpu, name="synthetic/narrow-long"
    ),
}


# ----------------------------------------------------------------------
# generic (de)serialisation helpers
# ----------------------------------------------------------------------
def _check_keys(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__}: unknown field(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )


def _flat_from_dict(cls, data: Mapping[str, Any]):
    """Build a flat (non-nested) spec dataclass from a mapping."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{cls.__name__} expects a mapping, got {data!r}")
    _check_keys(cls, data)
    return cls(**data)


def _flat_to_dict(obj) -> Dict[str, Any]:
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


# ----------------------------------------------------------------------
# GPU
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SMSpec:
    """JSON-able mirror of :class:`repro.gpu.config.SMConfig`."""

    max_threads: int = 1536
    max_blocks: int = 8
    registers: int = 65536
    shared_memory: int = 49152
    issue_throughput: float = 1.0

    def to_config(self) -> SMConfig:
        """Materialise the :class:`SMConfig` (validates values)."""
        return SMConfig(**_flat_to_dict(self))

    @classmethod
    def from_config(cls, sm: SMConfig) -> "SMSpec":
        """Mirror an existing :class:`SMConfig`."""
        return cls(
            max_threads=sm.max_threads,
            max_blocks=sm.max_blocks,
            registers=sm.registers,
            shared_memory=sm.shared_memory,
            issue_throughput=sm.issue_throughput,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SMSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


_GPU_PRESETS: Dict[str, Callable[..., GPUConfig]] = {
    "gpgpusim": GPUConfig.gpgpusim_like,
    "gtx1050ti": GPUConfig.gtx1050ti_like,
    "generic": GPUConfig,
}


@dataclass(frozen=True)
class GPUSpec:
    """GPU selection: a preset plus optional overrides, or a full config.

    Attributes:
        preset: ``"gpgpusim"`` (the paper's simulated platform),
            ``"gtx1050ti"`` (the COTS platform), ``"generic"`` — or
            ``None`` for a fully explicit configuration.
        name / num_sms / clock_mhz / dram_bandwidth / dispatch_latency /
            allow_kernel_mixing / sm: overrides applied on top of the
            preset (``None`` keeps the preset's value).
    """

    preset: Optional[str] = "gpgpusim"
    name: Optional[str] = None
    num_sms: Optional[int] = None
    clock_mhz: Optional[float] = None
    dram_bandwidth: Optional[float] = None
    dispatch_latency: Optional[float] = None
    allow_kernel_mixing: Optional[bool] = None
    sm: Optional[SMSpec] = None

    def __post_init__(self) -> None:
        if self.preset is not None and self.preset not in _GPU_PRESETS:
            raise ConfigurationError(
                f"unknown GPU preset {self.preset!r}; "
                f"known: {', '.join(sorted(_GPU_PRESETS))}"
            )

    # ------------------------------------------------------------------
    def to_config(self) -> GPUConfig:
        """Materialise the :class:`GPUConfig` this spec describes."""
        if self.preset == "gpgpusim" and self.num_sms is not None:
            # the preset factory takes the SM count directly (keeps the
            # derived name identical to the legacy call paths)
            base = GPUConfig.gpgpusim_like(num_sms=self.num_sms)
            skip = {"num_sms"}
        elif self.preset is not None:
            base = _GPU_PRESETS[self.preset]()
            skip = set()
        else:
            base = GPUConfig()
            skip = set()
        overrides: Dict[str, Any] = {}
        for name in ("name", "num_sms", "clock_mhz", "dram_bandwidth",
                     "dispatch_latency", "allow_kernel_mixing"):
            value = getattr(self, name)
            if value is not None and name not in skip:
                overrides[name] = value
        if self.sm is not None:
            overrides["sm"] = self.sm.to_config()
        return replace(base, **overrides) if overrides else base

    @classmethod
    def from_config(cls, gpu: GPUConfig) -> "GPUSpec":
        """Mirror an arbitrary :class:`GPUConfig` exactly (no preset)."""
        return cls(
            preset=None,
            name=gpu.name,
            num_sms=gpu.num_sms,
            clock_mhz=gpu.clock_mhz,
            dram_bandwidth=gpu.dram_bandwidth,
            dispatch_latency=gpu.dispatch_latency,
            allow_kernel_mixing=gpu.allow_kernel_mixing,
            sm=SMSpec.from_config(gpu.sm),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible, nested ``sm``)."""
        data = _flat_to_dict(self)
        data["sm"] = self.sm.to_dict() if self.sm is not None else None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GPUSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"GPUSpec expects a mapping, got {data!r}")
        _check_keys(cls, data)
        payload = dict(data)
        if payload.get("sm") is not None:
            payload["sm"] = SMSpec.from_dict(payload["sm"])
        return cls(**payload)


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSpec:
    """JSON-able mirror of :class:`repro.gpu.kernel.KernelDescriptor`."""

    name: str
    grid_blocks: int
    threads_per_block: int
    regs_per_thread: int = 24
    shared_mem_per_block: int = 0
    work_per_block: float = 1000.0
    bytes_per_block: float = 0.0
    output_bytes: int = 4096
    input_bytes: int = 4096

    def to_descriptor(self) -> KernelDescriptor:
        """Materialise the :class:`KernelDescriptor` (validates values)."""
        return KernelDescriptor(**_flat_to_dict(self))

    @classmethod
    def from_descriptor(cls, kd: KernelDescriptor) -> "KernelSpec":
        """Mirror an existing descriptor."""
        return cls(
            name=kd.name,
            grid_blocks=kd.grid_blocks,
            threads_per_block=kd.threads_per_block,
            regs_per_thread=kd.regs_per_thread,
            shared_mem_per_block=kd.shared_mem_per_block,
            work_per_block=kd.work_per_block,
            bytes_per_block=kd.bytes_per_block,
            output_bytes=kd.output_bytes,
            input_bytes=kd.input_bytes,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "KernelSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


@dataclass(frozen=True)
class WorkloadSpec:
    """The kernel chain a run executes — exactly one source must be set.

    Attributes:
        benchmark: Rodinia-suite benchmark name (chain + COTS profile).
        synthetic: synthetic archetype name (see :data:`SYNTHETIC_KERNELS`);
            the kernel is generated against the run's GPU configuration.
        kernels: explicit kernel chain.
        repeat: replicate the resolved chain this many times.
    """

    benchmark: Optional[str] = None
    synthetic: Optional[str] = None
    kernels: Tuple[KernelSpec, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        sources = sum(
            [self.benchmark is not None, self.synthetic is not None,
             bool(self.kernels)]
        )
        if sources != 1:
            raise ConfigurationError(
                "workload must set exactly one of benchmark / synthetic / "
                f"kernels (got {sources} sources)"
            )
        if self.synthetic is not None and self.synthetic not in SYNTHETIC_KERNELS:
            raise ConfigurationError(
                f"unknown synthetic workload {self.synthetic!r}; "
                f"known: {', '.join(sorted(SYNTHETIC_KERNELS))}"
            )
        if self.repeat < 1:
            raise ConfigurationError("workload repeat must be >= 1")
        if self.kernels:
            object.__setattr__(self, "kernels", tuple(self.kernels))

    # ------------------------------------------------------------------
    def resolve(self, gpu: GPUConfig) -> Tuple[KernelDescriptor, ...]:
        """The kernel chain to simulate (may be empty for COTS-only
        benchmarks such as ``cfd``)."""
        if self.benchmark is not None:
            chain: Tuple[KernelDescriptor, ...] = get_benchmark(
                self.benchmark
            ).kernels
        elif self.synthetic is not None:
            chain = (SYNTHETIC_KERNELS[self.synthetic](gpu),)
        else:
            chain = tuple(k.to_descriptor() for k in self.kernels)
        return chain * self.repeat

    @property
    def label(self) -> str:
        """Short human-readable identity used for tags and tables."""
        if self.benchmark is not None:
            return self.benchmark
        if self.synthetic is not None:
            return f"synthetic/{self.synthetic}"
        return self.kernels[0].name if len(self.kernels) == 1 else (
            f"{len(self.kernels)}-kernel chain"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible, nested ``kernels``)."""
        return {
            "benchmark": self.benchmark,
            "synthetic": self.synthetic,
            "kernels": [k.to_dict() for k in self.kernels],
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"WorkloadSpec expects a mapping, got {data!r}"
            )
        _check_keys(cls, data)
        payload = dict(data)
        payload["kernels"] = tuple(
            KernelSpec.from_dict(k) for k in payload.get("kernels") or ()
        )
        return cls(**payload)


# ----------------------------------------------------------------------
# fault plan / COTS model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlanSpec:
    """JSON-able mirror of :class:`repro.faults.campaign.CampaignConfig`."""

    transient_ccf: int = 200
    permanent_sm: int = 50
    seu: int = 100
    seed: int = 2019
    phase_quantum: float = 1.0

    def to_config(self, seed: Optional[int] = None) -> CampaignConfig:
        """Materialise the campaign config, optionally overriding the seed."""
        data = _flat_to_dict(self)
        if seed is not None:
            data["seed"] = seed
        return CampaignConfig(**data)

    @classmethod
    def from_config(cls, config: CampaignConfig) -> "FaultPlanSpec":
        """Mirror an existing :class:`CampaignConfig`."""
        return cls(
            transient_ccf=config.transient_ccf,
            permanent_sm=config.permanent_sm,
            seu=config.seu,
            seed=config.seed,
            phase_quantum=config.phase_quantum,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlanSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


@dataclass(frozen=True)
class CotsSpec:
    """JSON-able mirror of :class:`repro.gpu.cots.COTSDevice`.

    When present on a :class:`RunSpec` whose workload is a suite benchmark,
    the artifact gains a COTS end-to-end section (baseline vs redundant-
    serialized milliseconds — the Figure 5 bars).
    """

    h2d_gbps: float = 6.0
    d2h_gbps: float = 6.0
    launch_overhead_ms: float = 0.008
    alloc_ms: float = 0.15
    free_ms: float = 0.0
    compare_gbps: float = 4.0
    sync_overhead_ms: float = 0.02

    def to_device(self) -> COTSDevice:
        """Materialise the :class:`COTSDevice` (validates values)."""
        return COTSDevice(**_flat_to_dict(self))

    @classmethod
    def from_device(cls, device: COTSDevice) -> "CotsSpec":
        """Mirror an existing device."""
        return cls(
            h2d_gbps=device.h2d_gbps,
            d2h_gbps=device.d2h_gbps,
            launch_overhead_ms=device.launch_overhead_ms,
            alloc_ms=device.alloc_ms,
            free_ms=device.free_ms,
            compare_gbps=device.compare_gbps,
            sync_overhead_ms=device.sync_overhead_ms,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CotsSpec":
        """Build the spec from a mapping; raises on unknown fields."""
        return _flat_from_dict(cls, data)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible)."""
        return _flat_to_dict(self)


# ----------------------------------------------------------------------
# the run spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One declarative run of the reproduction's models.

    Attributes:
        workload: what to execute (see :class:`WorkloadSpec`).
        gpu: which GPU to model (see :class:`GPUSpec`).
        policy: kernel-scheduler registry name (``"default"``, ``"srrs"``,
            ``"half"``, ...).
        redundancy: ``"none"`` (plain simulation), ``"dmr"`` or ``"tmr"``.
        copies: explicit redundancy degree, overriding ``redundancy``'s
            default mapping (None keeps the mapping).
        simulate: run the discrete-event simulator (disable for
            classification-only or COTS-only specs).
        baseline: also simulate the non-redundant chain and record its
            makespan (redundant runs only).
        classify: include a Figure 3 classification report per kernel.
        cots: include the COTS end-to-end model (benchmark workloads only).
        faults: run a fault-injection campaign against the redundant trace.
        phase_tolerance: diversity phase-alignment threshold (work units).
        seed: overrides the fault plan's PRNG seed; batch execution keeps
            seeds per-spec, so results are identical at any worker count.
        tag: free-form label carried into traces and artifacts.
    """

    workload: WorkloadSpec
    gpu: GPUSpec = field(default_factory=GPUSpec)
    policy: str = "srrs"
    redundancy: str = "dmr"
    copies: Optional[int] = None
    simulate: bool = True
    baseline: bool = False
    classify: bool = False
    cots: Optional[CotsSpec] = None
    faults: Optional[FaultPlanSpec] = None
    phase_tolerance: float = DEFAULT_PHASE_TOLERANCE
    seed: Optional[int] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.redundancy not in REDUNDANCY_COPIES:
            raise ConfigurationError(
                f"unknown redundancy mode {self.redundancy!r}; "
                f"known: {', '.join(sorted(REDUNDANCY_COPIES))}"
            )
        if not self.policy:
            raise ConfigurationError("policy must be non-empty")
        if self.copies is not None and self.copies < 1:
            raise ConfigurationError("copies must be >= 1")
        if self.phase_tolerance < 0:
            raise ConfigurationError("phase_tolerance cannot be negative")
        if self.faults is not None and not self.simulate:
            raise ConfigurationError(
                "a fault campaign requires simulate=True (it attacks the "
                "simulated redundant trace)"
            )
        if self.effective_copies < 2:
            if self.faults is not None:
                raise ConfigurationError(
                    "a fault campaign requires a redundant run (copies >= 2)"
                )
            if self.baseline:
                raise ConfigurationError(
                    "baseline makespan only applies to redundant runs"
                )
        if self.cots is not None and self.workload.benchmark is None:
            raise ConfigurationError(
                "the COTS end-to-end model requires a benchmark workload "
                "(its COTS profile provides the host-side decomposition)"
            )

    # ------------------------------------------------------------------
    @property
    def effective_copies(self) -> int:
        """The redundancy degree actually launched."""
        if self.copies is not None:
            return self.copies
        return REDUNDANCY_COPIES[self.redundancy]

    @property
    def label(self) -> str:
        """Human-readable identity used in tables (tag or workload)."""
        return self.tag or self.workload.label

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (nested dicts/lists, JSON-compatible)."""
        return {
            "workload": self.workload.to_dict(),
            "gpu": self.gpu.to_dict(),
            "policy": self.policy,
            "redundancy": self.redundancy,
            "copies": self.copies,
            "simulate": self.simulate,
            "baseline": self.baseline,
            "classify": self.classify,
            "cots": self.cots.to_dict() if self.cots is not None else None,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "phase_tolerance": self.phase_tolerance,
            "seed": self.seed,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"RunSpec expects a mapping, got {data!r}")
        _check_keys(cls, data)
        if "workload" not in data:
            raise ConfigurationError("RunSpec requires a workload")
        payload = dict(data)
        payload["workload"] = WorkloadSpec.from_dict(payload["workload"])
        if payload.get("gpu") is not None:
            payload["gpu"] = GPUSpec.from_dict(payload["gpu"])
        else:
            payload.pop("gpu", None)
        if payload.get("cots") is not None:
            payload["cots"] = CotsSpec.from_dict(payload["cots"])
        if payload.get("faults") is not None:
            payload["faults"] = FaultPlanSpec.from_dict(payload["faults"])
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys, round-trips exactly)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid RunSpec JSON: {exc}") from None
        return cls.from_dict(data)

    @property
    def config_hash(self) -> str:
        """Hex digest of the canonical JSON form (provenance key)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]
