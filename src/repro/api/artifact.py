"""Uniform run results — the output side of :mod:`repro.api`.

Every :meth:`Engine.run <repro.api.engine.Engine.run>` returns one
:class:`RunArtifact`: a frozen bundle of plain-data summaries (timing,
diversity, comparisons, classification, COTS end-to-end, fault campaign)
plus provenance (the originating spec, its config hash, the package
version and the scheduler label).  Artifacts are picklable — the batch
executor streams them back from worker processes — and JSON-round-
trippable for storage and tooling::

    artifact = repro.run(spec)
    recovered = RunArtifact.from_json(artifact.to_json())
    assert recovered == artifact

Sections that a spec did not request are ``None`` (or empty for the
per-kernel classification), never fabricated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.spec import RunSpec, _flat_from_dict, _flat_to_dict
from repro.errors import ConfigurationError
from repro.redundancy.diversity import DiversityReport

__all__ = [
    "TimingSummary",
    "DiversitySummary",
    "ComparisonSummary",
    "ClassificationRow",
    "CotsSummary",
    "FaultSummary",
    "RunArtifact",
]


@dataclass(frozen=True)
class TimingSummary:
    """Timing of the simulated execution (cycles unless noted).

    Attributes:
        busy_cycles: GPU-active cycles (the Figure 4 metric).
        makespan: first-arrival-to-last-completion time.
        makespan_ms: makespan converted at the GPU's core clock.
        events: discrete events the simulator processed (diagnostics).
        total_kernel_cycles: sum of per-launch execution times.
        baseline_makespan: makespan of the non-redundant chain under the
            default scheduler (present when the spec asked for a baseline).
    """

    busy_cycles: float
    makespan: float
    makespan_ms: float
    events: int
    total_kernel_cycles: float
    baseline_makespan: Optional[float] = None

    @property
    def redundancy_overhead(self) -> Optional[float]:
        """``makespan / baseline_makespan`` when a baseline was recorded."""
        if self.baseline_makespan is None or self.baseline_makespan == 0:
            return None
        return self.makespan / self.baseline_makespan

    to_dict = _flat_to_dict
    from_dict = classmethod(_flat_from_dict)


@dataclass(frozen=True)
class DiversitySummary:
    """Aggregate of a :class:`repro.redundancy.diversity.DiversityReport`."""

    total_pairs: int
    same_sm_pairs: int
    overlapping_pairs: int
    phase_aligned_pairs: int
    spatially_diverse: bool
    temporally_diverse: bool
    fully_diverse: bool
    min_time_slack: Optional[float]
    min_phase_separation: Optional[float]
    phase_tolerance: float

    @classmethod
    def from_report(cls, report: DiversityReport) -> "DiversitySummary":
        """Summarise a full diversity report."""
        return cls(
            total_pairs=report.total_pairs,
            same_sm_pairs=report.same_sm_pairs,
            overlapping_pairs=report.overlapping_pairs,
            phase_aligned_pairs=report.phase_aligned_pairs,
            spatially_diverse=report.spatially_diverse,
            temporally_diverse=report.temporally_diverse,
            fully_diverse=report.fully_diverse,
            min_time_slack=report.min_time_slack,
            min_phase_separation=report.min_phase_separation,
            phase_tolerance=report.phase_tolerance,
        )

    to_dict = _flat_to_dict
    from_dict = classmethod(_flat_from_dict)


@dataclass(frozen=True)
class ComparisonSummary:
    """DCLS output-comparison outcome across the run's logical kernels."""

    logical_kernels: int
    error_detected: bool
    silent_corruption: bool
    all_clean: bool

    to_dict = _flat_to_dict
    from_dict = classmethod(_flat_from_dict)


@dataclass(frozen=True)
class ClassificationRow:
    """Figure 3 classification evidence for one kernel."""

    kernel: str
    category: str
    isolated_cycles: float
    overlap_fraction: float
    resident_fraction: float
    recommended_policy: str

    to_dict = _flat_to_dict
    from_dict = classmethod(_flat_from_dict)


@dataclass(frozen=True)
class CotsSummary:
    """COTS end-to-end model outcome (the Figure 5 bars, milliseconds)."""

    benchmark: str
    baseline_ms: float
    redundant_ms: float
    copies: int

    @property
    def ratio(self) -> float:
        """Redundant-serialized over baseline end-to-end time."""
        return self.redundant_ms / self.baseline_ms

    to_dict = _flat_to_dict
    from_dict = classmethod(_flat_from_dict)


@dataclass(frozen=True)
class FaultSummary:
    """Fault-injection campaign outcome (experiment E5)."""

    policy: str
    total: int
    masked: int
    detected: int
    sdc: int
    detection_coverage: float
    by_kind: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...] = ()

    def by_kind_dict(self) -> Dict[str, Dict[str, int]]:
        """``fault-kind -> outcome -> count`` as nested dicts."""
        return {kind: dict(outcomes) for kind, outcomes in self.by_kind}

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-compatible, nested ``by_kind``)."""
        data = _flat_to_dict(self)
        data["by_kind"] = [
            [kind, [list(o) for o in outcomes]] for kind, outcomes in self.by_kind
        ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSummary":
        """Build the summary from a mapping."""
        payload = dict(data)
        payload["by_kind"] = tuple(
            (kind, tuple((name, int(count)) for name, count in outcomes))
            for kind, outcomes in payload.get("by_kind") or ()
        )
        return _flat_from_dict(cls, payload)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunArtifact:
    """The uniform result of one engine run.

    Attributes:
        spec: the originating :class:`~repro.api.spec.RunSpec`.
        config_hash: :attr:`RunSpec.config_hash` at execution time.
        version: ``repro.__version__`` that produced the artifact.
        scheduler: ``describe()`` of the scheduling policy (``None`` when
            the spec skipped simulation).
        timing / diversity / comparisons / classification / cots / faults:
            the requested result sections (unrequested sections are
            ``None`` / empty).
    """

    spec: RunSpec
    config_hash: str
    version: str
    scheduler: Optional[str] = None
    timing: Optional[TimingSummary] = None
    diversity: Optional[DiversitySummary] = None
    comparisons: Optional[ComparisonSummary] = None
    classification: Tuple[ClassificationRow, ...] = ()
    cots: Optional[CotsSummary] = None
    faults: Optional[FaultSummary] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (nested dicts/lists, JSON-compatible)."""
        def _opt(section) -> Optional[Dict[str, Any]]:
            return section.to_dict() if section is not None else None

        return {
            "spec": self.spec.to_dict(),
            "config_hash": self.config_hash,
            "version": self.version,
            "scheduler": self.scheduler,
            "timing": _opt(self.timing),
            "diversity": _opt(self.diversity),
            "comparisons": _opt(self.comparisons),
            "classification": [r.to_dict() for r in self.classification],
            "cots": _opt(self.cots),
            "faults": _opt(self.faults),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunArtifact":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"RunArtifact expects a mapping, got {data!r}"
            )
        if "spec" not in data:
            raise ConfigurationError("RunArtifact requires a spec")
        sections = {
            "timing": TimingSummary,
            "diversity": DiversitySummary,
            "comparisons": ComparisonSummary,
            "cots": CotsSummary,
            "faults": FaultSummary,
        }
        payload = dict(data)
        payload["spec"] = RunSpec.from_dict(payload["spec"])
        for name, section_cls in sections.items():
            if payload.get(name) is not None:
                payload[name] = section_cls.from_dict(payload[name])
        payload["classification"] = tuple(
            ClassificationRow.from_dict(r)
            for r in payload.get("classification") or ()
        )
        return _flat_from_dict(cls, payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        """Parse an artifact from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"invalid RunArtifact JSON: {exc}"
            ) from None
        return cls.from_dict(data)
