"""The :class:`Engine` facade — one executor for every kind of run.

The engine turns a declarative :class:`~repro.api.spec.RunSpec` into a
:class:`~repro.api.artifact.RunArtifact` by driving the existing
subsystems (simulator, redundancy manager, classifier, COTS model, fault
campaign) behind a single, uniform entry point::

    import repro

    artifact = repro.run(repro.RunSpec(
        workload=repro.WorkloadSpec(benchmark="hotspot"), policy="srrs",
    ))
    assert artifact.diversity.fully_diverse

Batch execution (:meth:`Engine.run_many`) fans specs out over a process
pool.  Every model in the reproduction is deterministic and fault seeds
are fixed per spec, so the artifact list is identical for any worker
count — ``workers=4`` only changes the wall-clock, never the results.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.api.artifact import (
    ClassificationRow,
    ComparisonSummary,
    CotsSummary,
    DiversitySummary,
    FaultSummary,
    RunArtifact,
    TimingSummary,
)
from repro.api.spec import RunSpec
from repro.errors import ConfigurationError, WorkerCountError
from repro.faults.campaign import FaultCampaign
from repro.gpu.config import GPUConfig
from repro.gpu.cots import cots_end_to_end
from repro.gpu.kernel import KernelDescriptor, dependent_chain
from repro.gpu.scheduler.registry import make_scheduler
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.obs.session import NULL_TELEMETRY, Telemetry
from repro.redundancy.diversity import (
    DEFAULT_PHASE_TOLERANCE,
    analyze_diversity,
)
from repro.redundancy.manager import RedundantKernelManager, RedundantRunResult
from repro.workloads.classify import classify_kernel, recommend_policy
from repro.workloads.rodinia import get_benchmark

__all__ = ["Engine", "run", "run_many"]


def _worker_run(item: Tuple[RunSpec, bool]) -> RunArtifact:
    """Process-pool entry point (must be module-level to pickle)."""
    spec, validate = item
    return Engine(validate=validate).run(spec)


class Engine:
    """Executes :class:`RunSpec` objects and returns :class:`RunArtifact`.

    Args:
        validate: forward the simulator's trace-validation switch (on by
            default; disabling buys a few percent of run time).
        telemetry: optional :class:`~repro.obs.session.Telemetry`
            session receiving per-run spans and batch heartbeats; the
            engine only emits from the orchestrating process (sinks are
            not picklable), and telemetry never changes any artifact.
    """

    def __init__(self, *, validate: bool = True,
                 telemetry: Optional[Telemetry] = None) -> None:
        self._validate = validate
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    # ------------------------------------------------------------------
    # single run
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> RunArtifact:
        """Execute one spec.

        Raises:
            ConfigurationError: for specs whose options do not fit their
                workload (e.g. a fault plan on a workload with no kernels).
        """
        tm = self._telemetry
        gpu = spec.gpu.to_config()
        kernels = spec.workload.resolve(gpu)

        scheduler_name: Optional[str] = None
        timing: Optional[TimingSummary] = None
        diversity: Optional[DiversitySummary] = None
        comparisons: Optional[ComparisonSummary] = None
        faults: Optional[FaultSummary] = None

        if spec.simulate and kernels:
            with tm.span("simulate", label=spec.label,
                         copies=spec.effective_copies):
                if spec.effective_copies >= 2:
                    (timing, diversity, comparisons, faults,
                     scheduler_name) = self._run_redundant(spec, gpu, kernels)
                else:
                    sim = self._run_plain(spec, gpu, kernels)
                    scheduler_name = sim.scheduler_name
                    timing = self._timing(sim, gpu)
        elif spec.faults is not None:
            raise ConfigurationError(
                f"spec {spec.label!r}: a fault campaign needs a simulated "
                "redundant run, but the workload has no kernel chain"
            )

        if spec.classify:
            with tm.span("classify", kernels=len(kernels)):
                classification = self._classify(kernels, gpu)
        else:
            classification = ()
        cots = self._cots(spec) if spec.cots is not None else None
        if tm.enabled:
            tm.metrics.add("runs")

        from repro import __version__

        return RunArtifact(
            spec=spec,
            config_hash=spec.config_hash,
            version=__version__,
            scheduler=scheduler_name,
            timing=timing,
            diversity=diversity,
            comparisons=comparisons,
            classification=classification,
            cots=cots,
            faults=faults,
        )

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def run_many(self, specs: Iterable[RunSpec], *,
                 workers: int = 1) -> List[RunArtifact]:
        """Execute many specs, optionally on a process pool.

        Results are returned in spec order and are identical for any
        ``workers`` value (every run is deterministic and seeded per
        spec).

        Args:
            specs: the run specifications.
            workers: process count; ``1`` executes in-process.
        """
        return list(self.stream(specs, workers=workers))

    def stream(self, specs: Iterable[RunSpec], *,
               workers: int = 1) -> Iterator[RunArtifact]:
        """Like :meth:`run_many` but yields artifacts as they complete.

        Artifacts are yielded in spec order (the pool's map preserves
        order while executing out-of-order).  Argument validation happens
        eagerly, before the returned iterator is consumed.

        Raises:
            WorkerCountError: for ``workers < 1`` — a
                :class:`ValueError` raised before any pool is created,
                never passed through to the executor.
        """
        spec_list = list(specs)
        if workers < 1:
            raise WorkerCountError(
                f"workers must be >= 1, got {workers!r}"
            )
        return self._stream(spec_list, workers)

    def _stream(self, spec_list: List[RunSpec],
                workers: int) -> Iterator[RunArtifact]:
        tm = self._telemetry
        tm.emit("run_start", kind="engine-batch", specs=len(spec_list),
                workers=workers)
        done = 0
        if workers == 1 or len(spec_list) <= 1:
            for spec in spec_list:
                yield self.run(spec)
                done += 1
                if tm.enabled:
                    tm.beat("engine", done, len(spec_list),
                            rate_counter="runs", unit="runs/s")
        else:
            items = [(spec, self._validate) for spec in spec_list]
            pool_size = min(workers, len(spec_list))
            # chunked submission amortises per-task pickling/IPC overhead on
            # large batches; map() preserves spec order regardless of
            # chunking, so results stay identical for any worker count
            chunksize = max(1, math.ceil(len(items) / (pool_size * 4)))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                for artifact in pool.map(_worker_run, items,
                                         chunksize=chunksize):
                    yield artifact
                    done += 1
                    if tm.enabled:
                        tm.metrics.add("runs")
                        tm.beat("engine", done, len(spec_list),
                                rate_counter="runs", unit="runs/s")
        tm.emit("run_end", kind="engine-batch", completed=done)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_redundant(self, spec: RunSpec, gpu: GPUConfig,
                       kernels: Sequence[KernelDescriptor]):
        manager = RedundantKernelManager(
            gpu, spec.policy, copies=spec.effective_copies,
            validate=self._validate,
        )
        run = manager.run(list(kernels), tag=spec.tag)
        baseline = (
            manager.baseline_makespan(list(kernels), tag=spec.tag)
            if spec.baseline else None
        )
        timing = self._timing(run.sim, gpu, baseline=baseline)
        diversity = DiversitySummary.from_report(
            self._diversity_report(spec, run, kernels)
        )
        comparisons = ComparisonSummary(
            logical_kernels=len(run.comparisons),
            error_detected=run.error_detected,
            silent_corruption=run.silent_corruption,
            all_clean=run.all_clean,
        )
        faults = self._campaign(spec, run) if spec.faults is not None else None
        return timing, diversity, comparisons, faults, run.sim.scheduler_name

    def _run_plain(self, spec: RunSpec, gpu: GPUConfig,
                   kernels: Sequence[KernelDescriptor]) -> SimulationResult:
        launches = dependent_chain(list(kernels), tag=spec.tag)
        simulator = GPUSimulator(
            gpu, make_scheduler(spec.policy), validate=self._validate
        )
        return simulator.run(launches)

    @staticmethod
    def _timing(sim: SimulationResult, gpu: GPUConfig, *,
                baseline: Optional[float] = None) -> TimingSummary:
        return TimingSummary(
            busy_cycles=sim.trace.busy_cycles,
            makespan=sim.makespan,
            makespan_ms=gpu.cycles_to_ms(sim.makespan),
            events=sim.events,
            total_kernel_cycles=sim.total_kernel_cycles(),
            baseline_makespan=baseline,
        )

    @staticmethod
    def _diversity_report(spec: RunSpec, run: RedundantRunResult,
                          kernels: Sequence[KernelDescriptor]):
        if spec.phase_tolerance == DEFAULT_PHASE_TOLERANCE:
            return run.diversity
        work_hint = max(k.work_per_block for k in kernels)
        return analyze_diversity(
            run.sim.trace, copy_a=0, copy_b=1, work_per_block=work_hint,
            phase_tolerance=spec.phase_tolerance,
        )

    def _campaign(self, spec: RunSpec,
                  run: RedundantRunResult) -> FaultSummary:
        assert spec.faults is not None
        config = spec.faults.to_config(seed=spec.seed)
        report = FaultCampaign(run).run(config)
        by_kind = tuple(
            (
                kind,
                tuple(
                    (outcome.name.lower(), count)
                    for outcome, count in sorted(
                        outcomes.items(), key=lambda kv: kv[0].name
                    )
                ),
            )
            for kind, outcomes in sorted(report.by_kind.items())
        )
        return FaultSummary(
            policy=report.policy,
            total=report.total,
            masked=report.masked,
            detected=report.detected,
            sdc=report.sdc,
            detection_coverage=report.detection_coverage,
            by_kind=by_kind,
        )

    @staticmethod
    def _classify(kernels: Sequence[KernelDescriptor],
                  gpu: GPUConfig) -> Tuple[ClassificationRow, ...]:
        rows = []
        for kernel in kernels:
            report = classify_kernel(kernel, gpu)
            rows.append(
                ClassificationRow(
                    kernel=kernel.name,
                    category=report.category.value,
                    isolated_cycles=report.isolated_cycles,
                    overlap_fraction=report.overlap_fraction,
                    resident_fraction=report.resident_fraction,
                    recommended_policy=recommend_policy(report.category),
                )
            )
        return tuple(rows)

    @staticmethod
    def _cots(spec: RunSpec) -> CotsSummary:
        assert spec.cots is not None and spec.workload.benchmark is not None
        benchmark = get_benchmark(spec.workload.benchmark)
        device = spec.cots.to_device()
        copies = max(2, spec.effective_copies)
        baseline = cots_end_to_end(benchmark, device)
        redundant = cots_end_to_end(
            benchmark, device, redundant=True, copies=copies
        )
        return CotsSummary(
            benchmark=benchmark.name,
            baseline_ms=baseline.total_ms,
            redundant_ms=redundant.total_ms,
            copies=copies,
        )


_DEFAULT_ENGINE = Engine()


def run(spec: RunSpec) -> RunArtifact:
    """Execute one spec on a default engine (``repro.run(spec)``)."""
    return _DEFAULT_ENGINE.run(spec)


def run_many(specs: Iterable[RunSpec], *, workers: int = 1) -> List[RunArtifact]:
    """Execute many specs on a default engine (see :meth:`Engine.run_many`)."""
    return _DEFAULT_ENGINE.run_many(specs, workers=workers)
