"""Declarative campaign specifications — the input of :mod:`repro.campaigns`.

A :class:`CampaignSpec` pairs the clean redundant run to attack (a
:class:`~repro.api.spec.RunSpec`) with the fault population to inject
(a :class:`~repro.api.spec.FaultPlanSpec`) and the sharding granularity.
Like every spec in :mod:`repro.api` it is a frozen dataclass of plain
values: hashable, picklable (the shard executor ships it to worker
processes) and JSON-round-trippable, with a :attr:`CampaignSpec.config_hash`
recorded in the campaign store as provenance — resuming a store with a
*different* spec is rejected rather than silently mixing populations.

Example::

    from repro.api import CampaignSpec, FaultPlanSpec, RunSpec, WorkloadSpec

    spec = CampaignSpec(
        run=RunSpec(workload=WorkloadSpec(benchmark="hotspot"),
                    policy="srrs"),
        faults=FaultPlanSpec(transient_ccf=60_000, permanent_sm=20_000,
                             seu=20_000, seed=7),
        shards=32,
    )
    assert CampaignSpec.from_json(spec.to_json()) == spec
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.api.spec import FaultPlanSpec, RunSpec, _check_keys
from repro.api.stats import RepeatSpec, SamplingSpec
from repro.errors import ConfigurationError, FaultInjectionError

__all__ = ["CampaignSpec"]

#: Campaign rates a :class:`~repro.api.stats.RepeatSpec` may target.
CAMPAIGN_REPEAT_METRICS = ("masked", "detected", "sdc")


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative sharded fault-injection campaign.

    Attributes:
        run: the clean redundant run to attack.  Must simulate a redundant
            workload (``effective_copies >= 2``) and must not carry its own
            inline fault plan — the campaign owns the plan.
        faults: the fault population (counts per kind + master seed +
            phase quantum).  ``run.seed``, when set, overrides the plan's
            seed, mirroring :class:`~repro.api.spec.RunSpec` semantics.
        shards: number of contiguous index-space shards (checkpoint
            units).  Mutually exclusive with ``shard_size``; when neither
            is set the runner defaults to 16 shards (clamped to the
            campaign size).
        shard_size: target injections per shard (the runner derives the
            shard count from it).
        sampling: optional v2 sampling design
            (:class:`~repro.api.stats.SamplingSpec`): reallocate the
            injection budget across fault kinds (stratified block layout
            or importance proposal), with estimates reweighted to the
            nominal mix of ``faults``.  ``None`` keeps the bit-stable
            legacy uniform population.
        repeat: optional repeat-until-confidence rule
            (:class:`~repro.api.stats.RepeatSpec`).  Requires
            ``sampling`` (only the v2 layouts are prefix-stable, i.e.
            extendable without changing already-injected faults); the
            rule's ``batch`` becomes the shard size, so ``shards`` /
            ``shard_size`` must stay unset, and ``total_injections``
            becomes the rule's ``max_total`` budget cap.
    """

    run: RunSpec
    faults: FaultPlanSpec = field(default_factory=FaultPlanSpec)
    shards: Optional[int] = None
    shard_size: Optional[int] = None
    sampling: Optional[SamplingSpec] = None
    repeat: Optional[RepeatSpec] = None

    def __post_init__(self) -> None:
        if not self.run.simulate:
            raise ConfigurationError(
                "a campaign needs a simulated run (simulate=True) — faults "
                "are injected into the simulated redundant trace"
            )
        if self.run.effective_copies < 2:
            raise ConfigurationError(
                "a campaign needs a redundant run (copies >= 2); "
                f"got {self.run.effective_copies}"
            )
        if self.run.faults is not None:
            raise ConfigurationError(
                "the campaign owns the fault plan: set CampaignSpec.faults, "
                "not RunSpec.faults"
            )
        if self.total_injections < 1:
            raise ConfigurationError(
                "campaign must inject at least one fault"
            )
        if self.shards is not None and self.shard_size is not None:
            raise ConfigurationError(
                "set either shards or shard_size, not both"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")
        if self.sampling is not None:
            try:
                self.sampling.to_config().validate_support(
                    self.faults.to_config()
                )
            except FaultInjectionError as exc:
                raise ConfigurationError(str(exc)) from None
        if self.repeat is not None:
            if self.sampling is None:
                raise ConfigurationError(
                    "repeat-until-confidence requires a sampling design: "
                    "the legacy (v1) population layout is segmented by "
                    "kind and cannot be extended without changing "
                    "already-injected faults — set CampaignSpec.sampling"
                )
            if self.shards is not None or self.shard_size is not None:
                raise ConfigurationError(
                    "a repeated campaign derives its shard size from "
                    "repeat.batch; leave shards/shard_size unset"
                )
            if self.repeat.metric not in CAMPAIGN_REPEAT_METRICS:
                raise ConfigurationError(
                    f"unknown campaign repeat metric "
                    f"{self.repeat.metric!r}; known: "
                    + ", ".join(CAMPAIGN_REPEAT_METRICS)
                )

    # ------------------------------------------------------------------
    @property
    def total_injections(self) -> int:
        """Campaign size: the number of faults the plan injects.

        A repeated campaign's size is its budget cap
        (``repeat.max_total``) — the shard plan spans the whole budget
        up front, and the repeater stops at the first shard prefix whose
        confidence interval meets the target.
        """
        if self.repeat is not None:
            return self.repeat.max_total
        return self.faults.transient_ccf + self.faults.permanent_sm + self.faults.seu

    @property
    def label(self) -> str:
        """Human-readable identity (the underlying run's label)."""
        return self.run.label

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (nested dicts/lists, JSON-compatible).

        The ``sampling`` / ``repeat`` keys are emitted only when set, so
        legacy specs keep their exact historical JSON form (and
        therefore their :attr:`config_hash`).
        """
        data: Dict[str, Any] = {
            "run": self.run.to_dict(),
            "faults": self.faults.to_dict(),
            "shards": self.shards,
            "shard_size": self.shard_size,
        }
        if self.sampling is not None:
            data["sampling"] = self.sampling.to_dict()
        if self.repeat is not None:
            data["repeat"] = self.repeat.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; raises on unknown fields."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"CampaignSpec expects a mapping, got {data!r}"
            )
        _check_keys(cls, data)
        if "run" not in data:
            raise ConfigurationError("CampaignSpec requires a run")
        payload = dict(data)
        payload["run"] = RunSpec.from_dict(payload["run"])
        if payload.get("faults") is not None:
            payload["faults"] = FaultPlanSpec.from_dict(payload["faults"])
        else:
            payload.pop("faults", None)
        if payload.get("sampling") is not None:
            payload["sampling"] = SamplingSpec.from_dict(payload["sampling"])
        else:
            payload.pop("sampling", None)
        if payload.get("repeat") is not None:
            payload["repeat"] = RepeatSpec.from_dict(payload["repeat"])
        else:
            payload.pop("repeat", None)
        return cls(**payload)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys, round-trips exactly)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a spec from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"invalid CampaignSpec JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    @property
    def config_hash(self) -> str:
        """Hex digest of the canonical JSON form (provenance key)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]
