"""Streaming workload subsystem: continuous frame traffic with online analytics.

Everything the repo did before this package was single-shot — one
:class:`~repro.api.spec.RunSpec`, one campaign, one report.  The paper's
safety case, however, is about *continuous* operation: camera/lidar
frames arriving every N milliseconds, each offloaded redundantly, with
errors detected and handled inside the FTTI.  :mod:`repro.streams` turns
the per-offload machinery into a sustained-traffic simulator:

* :mod:`repro.streams.arrivals` — deterministic open-loop arrival
  processes (periodic / jittered / Poisson), indexed per-frame PRNG
  substreams;
* :mod:`repro.streams.jobs` — resolves a stream's distinct frame jobs
  (kernel DAGs from :mod:`repro.workloads`) into simulated redundant
  service profiles, optionally on a process pool;
* :mod:`repro.streams.analytics` — online, O(1)-memory statistics: the
  P² streaming quantile estimator, Welford mean/variance, tumbling
  throughput/utilisation windows;
* :mod:`repro.streams.runner` — the virtual-time stream engine: bounded
  FIFO queueing with drop-on-full backpressure, per-frame deadline
  accounting, per-frame fault overlay (detected errors re-execute and
  surface as latency; silent corruptions are counted);
* :mod:`repro.streams.report` — the canonical :class:`StreamReport`
  (``to_dict()`` / ``digest()`` / ``from_dict()``), bit-identical for a
  given :class:`~repro.api.stream.StreamSpec` + seed at any
  worker/chunk configuration.

Quickstart::

    from repro.api import RunSpec, StreamSpec, WorkloadSpec
    from repro.streams import run_stream

    spec = StreamSpec(
        run=RunSpec(workload=WorkloadSpec(benchmark="hotspot"),
                    policy="srrs"),
        frames=10_000,
    )
    report = run_stream(spec)
    assert report.frames == 10_000 and report.deadline_misses == 0
"""

from repro.streams.arrivals import (
    frame_substream,
    iter_arrivals,
    substream_factory,
)
from repro.streams.analytics import (
    P2Quantile,
    StreamAccumulator,
    StreamingMoments,
    WindowedRates,
)
from repro.streams.jobs import JobProfile, resolve_jobs
from repro.streams.report import STREAM_RATE_METRICS, StreamReport
from repro.streams.runner import repeat_stream, run_stream

__all__ = [
    "STREAM_RATE_METRICS",
    "repeat_stream",
    "frame_substream",
    "iter_arrivals",
    "substream_factory",
    "P2Quantile",
    "StreamAccumulator",
    "StreamingMoments",
    "WindowedRates",
    "JobProfile",
    "resolve_jobs",
    "StreamReport",
    "run_stream",
]
