"""Frame-job resolution: from stream workloads to service profiles.

A stream executes the *same* small set of frame jobs over and over —
one per distinct workload in the spec's rotation.  Every model in the
repo is deterministic, so each distinct job needs exactly one redundant
simulation on the virtual-time :class:`~repro.gpu.simulator.GPUSimulator`;
its makespan becomes the frame's service time and its clean trace the
substrate the per-frame fault overlay attacks.  :func:`resolve_jobs`
performs those simulations (optionally on a process pool — the only
parallelisable stage of a stream, and provably irrelevant to the
results) and returns one :class:`JobProfile` per rotation slot.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.api.spec import RunSpec, WorkloadSpec
from repro.api.stream import StreamSpec
from repro.errors import StreamError, WorkerCountError
from repro.faults.campaign import FaultCampaign
from repro.obs.session import NULL_TELEMETRY, Telemetry
from repro.obs.worker import (
    close_worker_session,
    merge_sidecars,
    sidecar_dir,
    sidecar_path,
    worker_session,
)
from repro.redundancy.manager import RedundantKernelManager, RedundantRunResult

__all__ = ["JobProfile", "resolve_jobs"]


@dataclass
class JobProfile:
    """Service profile of one distinct frame job.

    Attributes:
        label: workload label (see
            :attr:`repro.api.spec.WorkloadSpec.label`).
        service_ms: redundant makespan of one frame in milliseconds —
            the stream's per-frame service time.
        busy_ms: GPU-busy milliseconds one frame consumes.
        makespan_cycles: redundant makespan in cycles (fault-overlay
            sampling domain).
        num_sms: SM count of the simulated GPU (fault-overlay domain).
        work_hint: largest per-block duration in the trace (transient-CCF
            phase mapping).
        run: the clean redundant run the profile was measured on.
    """

    label: str
    service_ms: float
    busy_ms: float
    makespan_cycles: float
    num_sms: int
    work_hint: float
    run: RedundantRunResult

    _campaign: Optional[FaultCampaign] = field(
        default=None, repr=False, compare=False
    )

    @property
    def campaign(self) -> FaultCampaign:
        """Fault-injection campaign over the job's clean trace (lazy)."""
        if self._campaign is None:
            self._campaign = FaultCampaign(self.run)
        return self._campaign


def _job_run_spec(spec: StreamSpec, workload: WorkloadSpec) -> RunSpec:
    """The per-frame :class:`RunSpec` of one rotation slot."""
    return replace(spec.run, workload=workload)


def _simulate_job(item: Tuple) -> RedundantRunResult:
    """Process-pool entry point: simulate one frame job redundantly.

    The item is ``(spec_json, validate)``, optionally extended with a
    worker-sidecar telemetry path (:mod:`repro.obs.worker`) that a
    pooled worker brackets its simulation with a ``simulate_job`` span
    in.
    """
    spec_json, validate = item[:2]
    sidecar = item[2] if len(item) > 2 else None
    run_spec = RunSpec.from_json(spec_json)
    wt = worker_session(sidecar)
    try:
        with wt.span("simulate_job", label=run_spec.workload.label):
            gpu = run_spec.gpu.to_config()
            kernels = run_spec.workload.resolve(gpu)
            if not kernels:
                raise StreamError(
                    f"stream workload {run_spec.workload.label!r} resolves "
                    "to no kernels — there is no frame job to execute"
                )
            manager = RedundantKernelManager(
                gpu, run_spec.policy, copies=run_spec.effective_copies,
                validate=validate,
            )
            return manager.run(list(kernels), tag=run_spec.tag)
    finally:
        close_worker_session(wt)


def resolve_jobs(spec: StreamSpec, *, workers: int = 1,
                 validate: bool = True,
                 telemetry: Optional[Telemetry] = None) -> List[JobProfile]:
    """Simulate the stream's distinct frame jobs into service profiles.

    Frame ``i`` of the stream uses profile ``i % len(profiles)``: one
    profile per entry of :attr:`~repro.api.stream.StreamSpec.workload_mix`
    (or a single profile for the run's own workload when the mix is
    empty).  Duplicate workloads in the mix share one simulation.

    Args:
        spec: the stream description.
        workers: process count for the distinct-job simulations; only
            the wall clock changes (every simulation is deterministic).
        validate: forward the simulator's trace-validation switch.
        telemetry: optional session; pooled job workers then log their
            own ``simulate_job`` spans to sidecar files merged back
            deterministically (:mod:`repro.obs.worker`).  Digest-
            neutral as always.

    Returns:
        One :class:`JobProfile` per rotation slot, in rotation order.

    Raises:
        StreamError: when a workload resolves to no kernels.
        WorkerCountError: for ``workers < 1`` — a :class:`ValueError`
            raised before any pool is created, never passed through to
            the executor.
    """
    if workers < 1:
        raise WorkerCountError(f"workers must be >= 1, got {workers!r}")
    tm = telemetry if telemetry is not None else NULL_TELEMETRY
    rotation = list(spec.workload_mix) or [spec.run.workload]
    run_specs = [_job_run_spec(spec, workload) for workload in rotation]
    # first occurrence of each distinct job, in rotation order
    unique: Dict[str, RunSpec] = {}
    for run_spec in run_specs:
        unique.setdefault(run_spec.config_hash, run_spec)
    tasks: List[Tuple] = [(run_spec.to_json(), validate)
                          for run_spec in unique.values()]

    if workers == 1 or len(tasks) <= 1:
        results = [_simulate_job(task) for task in tasks]
    else:
        wdir = sidecar_dir(tm) if tm.sink.enabled else None
        keys = [f"job-{i:03d}" for i in range(len(tasks))]
        if wdir is not None:
            tasks = [task + (sidecar_path(wdir, key),)
                     for task, key in zip(tasks, keys)]
        pool_size = min(workers, len(tasks))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            results = list(pool.map(_simulate_job, tasks))
        if wdir is not None:
            merge_sidecars(tm, wdir, keys)

    profiles_by_key: Dict[str, JobProfile] = {}
    for (key, run_spec), run in zip(unique.items(), results):
        gpu = run_spec.gpu.to_config()
        trace = run.sim.trace
        profiles_by_key[key] = JobProfile(
            label=run_spec.workload.label,
            service_ms=gpu.cycles_to_ms(run.makespan),
            busy_ms=gpu.cycles_to_ms(trace.busy_cycles),
            makespan_cycles=trace.makespan,
            num_sms=trace.num_sms,
            work_hint=max(
                (r.duration for r in trace.tb_records), default=1000.0
            ),
            run=run,
        )
    return [profiles_by_key[rs.config_hash] for rs in run_specs]
