"""Deterministic open-loop arrival processes for frame streams.

Arrival times are generated from *indexed* PRNG substreams, mirroring the
sharded-campaign seed schedule (:func:`repro.faults.campaign.fault_substream`):
the randomness of frame ``i`` — its jitter offset, its Poisson gap, its
fault-overlay draws — comes exclusively from a PRNG seeded with
``SHA-256(seed, purpose, i)``.  No frame consumes another frame's draws,
so the stream's behaviour is a pure function of ``(spec, seed)`` and can
never depend on worker counts or chunk boundaries.

The three models:

* **periodic** — frame ``i`` arrives at exactly ``i * period_ms``;
* **jittered** — periodic plus an independent uniform offset in
  ``[-jitter_ms, +jitter_ms]`` per frame (sensor-timestamp wobble); with
  ``jitter_ms <= period_ms / 2`` arrival times stay non-decreasing;
* **poisson** — exponential inter-arrival gaps with mean ``period_ms``
  (memoryless open-loop traffic); arrival ``i`` is the prefix sum of the
  first ``i`` indexed gaps.
"""

from __future__ import annotations

import hashlib
import random
from concurrent.futures import Executor
from typing import Callable, Iterator, List, Optional

from repro.api.stream import ArrivalSpec

__all__ = [
    "frame_substream",
    "iter_arrivals",
    "materialize_arrivals",
    "substream_factory",
]


def substream_factory(seed: int,
                      purpose: str) -> Callable[[int], random.Random]:
    """Build a fast per-frame substream generator for one purpose.

    The returned callable maps a frame index to a PRNG seeded with
    ``SHA-256(seed, purpose, index)`` — the exact seed schedule of
    :func:`frame_substream`, draw-for-draw identical.  It is the hot-loop
    form: the ``"{seed}:{purpose}:"`` hash prefix is absorbed once into a
    reusable :class:`hashlib.sha256` state, and a single
    :class:`random.Random` instance is *re-seeded* per call instead of
    allocated, which roughly halves the per-frame substream cost over
    10^5-frame soaks.

    Because the instance is shared, each returned generator is only valid
    until the factory is called again — exhaust its draws before asking
    for the next frame's substream (the stream runner's frame loop does
    exactly this).  Use :func:`frame_substream` when the generator must
    outlive the next request.

    Args:
        seed: the stream's master seed.
        purpose: short label separating independent uses of the seed.

    Returns:
        A callable mapping ``index`` to the (shared, freshly re-seeded)
        substream PRNG.
    """
    prefix = hashlib.sha256(f"{seed}:{purpose}:".encode("ascii"))
    prefix_copy = prefix.copy
    rng = random.Random()
    reseed = rng.seed
    from_bytes = int.from_bytes

    def substream(index: int) -> random.Random:
        digest = prefix_copy()
        digest.update(str(index).encode("ascii"))
        reseed(from_bytes(digest.digest()[:8], "big"))
        return rng

    return substream


def frame_substream(seed: int, purpose: str, index: int) -> random.Random:
    """PRNG substream of frame ``index`` for one purpose within a stream.

    The substream is seeded with ``SHA-256(seed, purpose, index)``, so a
    frame's draws for one purpose (``"jitter"``, ``"gap"``, ``"fault"``)
    are independent of every other frame's and of the other purposes' —
    the same indexed-randomness contract the sharded campaigns are built
    on (see ``docs/CAMPAIGNS.md`` and ``docs/STREAMS.md``).

    Args:
        seed: the stream's master seed.
        purpose: short label separating independent uses of the seed.
        index: frame index.

    Returns:
        A freshly seeded :class:`random.Random` (never shared — see
        :func:`substream_factory` for the amortised hot-loop variant).
    """
    digest = hashlib.sha256(
        f"{seed}:{purpose}:{index}".encode("ascii")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _arrival_chunk(spec: ArrivalSpec, seed: int,
                   lo: int, hi: int) -> List[float]:
    """Arrival values of frames ``[lo, hi)`` — a pure, pool-safe function.

    Returns arrival *times* for the periodic and jittered models and raw
    inter-arrival *gaps* for the Poisson model (whose prefix sum is
    inherently sequential; :func:`materialize_arrivals` folds the gaps in
    index order).  Every value is computed exactly as
    :func:`iter_arrivals` computes it — same substream, same expression —
    so chunk boundaries can never change a stream.

    Args:
        spec: the arrival process description.
        seed: the stream's master seed.
        lo: first frame index of the chunk (inclusive).
        hi: last frame index of the chunk (exclusive).
    """
    period = spec.period_ms
    if spec.model == "periodic":
        return [index * period for index in range(lo, hi)]
    if spec.model == "jittered":
        jitter = spec.jitter_ms
        if not jitter:
            return [max(0.0, index * period + 0.0) for index in range(lo, hi)]
        sub = substream_factory(seed, "jitter")
        return [
            max(0.0, index * period + sub(index).uniform(-jitter, jitter))
            for index in range(lo, hi)
        ]
    sub = substream_factory(seed, "gap")
    rate = 1.0 / period
    return [sub(index).expovariate(rate) for index in range(lo, hi)]


def materialize_arrivals(spec: ArrivalSpec, seed: int, frames: int, *,
                         pool: Optional[Executor] = None,
                         chunks: int = 1) -> List[float]:
    """The stream's first ``frames`` arrival times as a list.

    Bit-identical to ``islice(iter_arrivals(spec, seed), frames)`` — the
    values come from the same indexed substreams via the same arithmetic.
    Because frame ``i``'s randomness is independent of every other
    frame's, the per-frame work (dominated by one SHA-256 + Mersenne
    Twister reseed for the jittered/Poisson models) can fan out over a
    process pool; only the cheap Poisson prefix sum stays sequential.

    Args:
        spec: the arrival process description.
        seed: the stream's master seed.
        frames: number of arrival times to produce.
        pool: optional executor for the per-chunk substream work
            (``None`` computes in-process).
        chunks: number of pool tasks to split the index range into
            (ignored without a pool).

    Returns:
        Non-decreasing arrival times, one per frame.
    """
    if pool is None or chunks <= 1 or frames == 0:
        parts = [_arrival_chunk(spec, seed, 0, frames)]
    else:
        step = -(-frames // chunks)  # ceil division
        bounds = [
            (lo, min(lo + step, frames)) for lo in range(0, frames, step)
        ]
        futures = [
            pool.submit(_arrival_chunk, spec, seed, lo, hi)
            for lo, hi in bounds
        ]
        parts = [future.result() for future in futures]
    if spec.model != "poisson":
        return [value for part in parts for value in part]
    out: List[float] = []
    append = out.append
    clock = 0.0
    for part in parts:
        for gap in part:
            clock += gap
            append(clock)
    return out


def iter_arrivals(spec: ArrivalSpec, seed: int) -> Iterator[float]:
    """Yield the stream's arrival times (milliseconds), frame by frame.

    The iterator is infinite — the runner slices it to the stream's frame
    count.  Arrival times are non-decreasing for every model
    (:class:`~repro.api.stream.ArrivalSpec` validates the jitter bound).

    Args:
        spec: the arrival process description.
        seed: the stream's master seed (jitter and Poisson substreams).
    """
    period = spec.period_ms
    if spec.model == "periodic":
        index = 0
        while True:
            yield index * period
            index += 1
    elif spec.model == "jittered":
        jitter = spec.jitter_ms
        sub = substream_factory(seed, "jitter")
        index = 0
        while True:
            offset = sub(index).uniform(
                -jitter, jitter
            ) if jitter else 0.0
            yield max(0.0, index * period + offset)
            index += 1
    else:  # poisson
        sub = substream_factory(seed, "gap")
        clock = 0.0
        index = 0
        while True:
            clock += sub(index).expovariate(1.0 / period)
            yield clock
            index += 1
