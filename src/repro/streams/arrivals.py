"""Deterministic open-loop arrival processes for frame streams.

Arrival times are generated from *indexed* PRNG substreams, mirroring the
sharded-campaign seed schedule (:func:`repro.faults.campaign.fault_substream`):
the randomness of frame ``i`` — its jitter offset, its Poisson gap, its
fault-overlay draws — comes exclusively from a PRNG seeded with
``SHA-256(seed, purpose, i)``.  No frame consumes another frame's draws,
so the stream's behaviour is a pure function of ``(spec, seed)`` and can
never depend on worker counts or chunk boundaries.

The three models:

* **periodic** — frame ``i`` arrives at exactly ``i * period_ms``;
* **jittered** — periodic plus an independent uniform offset in
  ``[-jitter_ms, +jitter_ms]`` per frame (sensor-timestamp wobble); with
  ``jitter_ms <= period_ms / 2`` arrival times stay non-decreasing;
* **poisson** — exponential inter-arrival gaps with mean ``period_ms``
  (memoryless open-loop traffic); arrival ``i`` is the prefix sum of the
  first ``i`` indexed gaps.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

from repro.api.stream import ArrivalSpec

__all__ = ["frame_substream", "iter_arrivals"]


def frame_substream(seed: int, purpose: str, index: int) -> random.Random:
    """PRNG substream of frame ``index`` for one purpose within a stream.

    The substream is seeded with ``SHA-256(seed, purpose, index)``, so a
    frame's draws for one purpose (``"jitter"``, ``"gap"``, ``"fault"``)
    are independent of every other frame's and of the other purposes' —
    the same indexed-randomness contract the sharded campaigns are built
    on (see ``docs/CAMPAIGNS.md`` and ``docs/STREAMS.md``).

    Args:
        seed: the stream's master seed.
        purpose: short label separating independent uses of the seed.
        index: frame index.

    Returns:
        A freshly seeded :class:`random.Random`.
    """
    digest = hashlib.sha256(
        f"{seed}:{purpose}:{index}".encode("ascii")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def iter_arrivals(spec: ArrivalSpec, seed: int) -> Iterator[float]:
    """Yield the stream's arrival times (milliseconds), frame by frame.

    The iterator is infinite — the runner slices it to the stream's frame
    count.  Arrival times are non-decreasing for every model
    (:class:`~repro.api.stream.ArrivalSpec` validates the jitter bound).

    Args:
        spec: the arrival process description.
        seed: the stream's master seed (jitter and Poisson substreams).
    """
    period = spec.period_ms
    if spec.model == "periodic":
        index = 0
        while True:
            yield index * period
            index += 1
    elif spec.model == "jittered":
        jitter = spec.jitter_ms
        index = 0
        while True:
            offset = frame_substream(seed, "jitter", index).uniform(
                -jitter, jitter
            ) if jitter else 0.0
            yield max(0.0, index * period + offset)
            index += 1
    else:  # poisson
        clock = 0.0
        index = 0
        while True:
            clock += frame_substream(seed, "gap", index).expovariate(
                1.0 / period
            )
            yield clock
            index += 1
