"""The virtual-time stream engine: open-loop frame traffic on one GPU.

:func:`run_stream` turns a :class:`~repro.api.stream.StreamSpec` into a
:class:`~repro.streams.report.StreamReport` by composing three stages:

1. **job resolution** (:mod:`repro.streams.jobs`) — every distinct frame
   job is simulated redundantly once on the virtual-time
   :class:`~repro.gpu.simulator.GPUSimulator`; its makespan is the
   frame's service time, its clean trace the fault-overlay substrate.
   This is the only expensive stage and the only parallel one.
2. **queueing recurrence** — frames flow through a single-server bounded
   FIFO in arrival order: an arrival that finds the queue full is
   *dropped* (backpressure); an admitted frame starts when the server
   frees up and completes one service time later (plus one full
   re-execution per detected fault).  The recurrence is O(1) per frame
   and O(queue depth) memory, so million-frame soaks stream through
   without materialising anything.
3. **online analytics** (:mod:`repro.streams.analytics`) — latency and
   wait moments, P² quantile estimates, deadline/drop counters and
   tumbling throughput/utilisation windows, all folded frame by frame.

Determinism contract: the report is a pure function of ``(spec, seed)``.
Worker counts only parallelise stage 1 (whose results are deterministic
simulations) and ``chunk_frames`` only batches the arrival generator of
stage 2 (which always folds frames in index order), so
``StreamReport.digest()`` is bit-identical across any worker/chunk
configuration — proven by ``tests/streams/test_stream_runner.py`` and
measured at soak scale by ``benchmarks/bench_streams.py``.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, Dict, List, Optional

from repro.api.stream import StreamSpec
from repro.errors import StreamError
from repro.faults.outcomes import FaultOutcome
from repro.streams.analytics import P2Quantile, StreamingMoments, WindowedRates
from repro.streams.arrivals import frame_substream, iter_arrivals
from repro.streams.jobs import JobProfile, resolve_jobs
from repro.streams.report import StreamReport, quantile_key

__all__ = ["run_stream", "DEFAULT_CHUNK_FRAMES"]

#: Default frame-loop batch size (purely mechanical; see the module
#: docstring's determinism contract).
DEFAULT_CHUNK_FRAMES = 65536


def run_stream(spec: StreamSpec, *, workers: int = 1,
               chunk_frames: int = DEFAULT_CHUNK_FRAMES,
               service_offset_ms: float = 0.0,
               validate: bool = True) -> StreamReport:
    """Execute one open-loop frame stream and fold its online report.

    Args:
        spec: the declarative stream.
        workers: process count for the distinct-job simulations
            (``1`` simulates in-process); never changes the report.
        chunk_frames: frame-loop batch size (arrival generation is
            batched in chunks of this many frames); never changes the
            report.
        service_offset_ms: fixed extra service time every frame pays on
            top of its simulated makespan (re-executions pay it again).
            :mod:`repro.platform` uses it to charge each device's COTS
            protocol overhead; the ``0.0`` default leaves single-stream
            reports untouched.
        validate: forward the simulator's trace-validation switch.

    Returns:
        The aggregate :class:`~repro.streams.report.StreamReport` —
        bit-identical (``report.digest()``) for any ``workers`` /
        ``chunk_frames`` configuration.

    Raises:
        StreamError: for invalid worker/chunk counts, a negative service
            offset, or workloads that resolve to no kernels.
    """
    if chunk_frames < 1:
        raise StreamError("chunk_frames must be >= 1")
    if service_offset_ms < 0:
        raise StreamError("service_offset_ms cannot be negative")
    profiles = resolve_jobs(spec, workers=workers, validate=validate)
    policy = profiles[0].run.sim.scheduler_name
    deadline = spec.effective_deadline_ms
    faults = spec.faults if (
        spec.faults is not None and spec.faults.probability > 0.0
    ) else None

    latency_moments = StreamingMoments()
    wait_moments = StreamingMoments()
    estimators = [P2Quantile(q) for q in spec.quantiles]
    windows = WindowedRates(spec.effective_window_ms)

    completed = dropped = deadline_misses = 0
    injected = masked = detected = sdc = re_executions = 0

    # single-server bounded FIFO: completion times of frames still in
    # the system (head = oldest); capacity = 1 in service + queue_depth
    in_system: Deque[float] = deque()
    capacity = spec.queue_depth + 1
    last_completion = 0.0
    last_arrival = 0.0
    service_sum = 0.0

    arrivals = iter_arrivals(spec.arrival, spec.seed)
    n_jobs = len(profiles)
    frame = 0
    remaining = spec.frames
    while remaining:
        batch = list(islice(arrivals, min(chunk_frames, remaining)))
        remaining -= len(batch)
        for arrival in batch:
            last_arrival = arrival
            while in_system and in_system[0] <= arrival:
                in_system.popleft()
            if len(in_system) >= capacity:
                dropped += 1
                frame += 1
                continue

            profile = profiles[frame % n_jobs]
            service = profile.service_ms + service_offset_ms
            busy = profile.busy_ms
            if faults is not None:
                rng = frame_substream(spec.seed, "fault", frame)
                if rng.random() < faults.probability:
                    injected += 1
                    fault = profile.campaign.random_fault(
                        rng,
                        transient_ccf=faults.transient_ccf,
                        permanent_sm=faults.permanent_sm,
                        seu=faults.seu,
                        phase_quantum=faults.phase_quantum,
                        fault_id=frame,
                    )
                    outcome = profile.campaign.classify(fault).outcome
                    if outcome is FaultOutcome.DETECTED:
                        detected += 1
                        re_executions += 1
                        service += profile.service_ms + service_offset_ms
                        busy += profile.busy_ms
                    elif outcome is FaultOutcome.SDC:
                        sdc += 1
                    else:
                        masked += 1

            begin = max(arrival, last_completion)
            completion = begin + service
            last_completion = completion
            in_system.append(completion)
            service_sum += service

            wait = begin - arrival
            latency = completion - arrival
            completed += 1
            if latency > deadline:
                deadline_misses += 1
            latency_moments.add(latency)
            wait_moments.add(wait)
            for estimator in estimators:
                estimator.add(latency)
            windows.observe(completion, busy)
            frame += 1

    elapsed = max(last_arrival, last_completion)
    return StreamReport(
        label=spec.label,
        policy=policy,
        spec_hash=spec.config_hash,
        seed=spec.seed,
        frames=spec.frames,
        completed=completed,
        dropped=dropped,
        deadline_ms=deadline,
        deadline_misses=deadline_misses,
        faults_injected=injected,
        faults_masked=masked,
        faults_detected=detected,
        faults_sdc=sdc,
        re_executions=re_executions,
        latency=_moment_dict(latency_moments, estimators),
        wait=_moment_dict(wait_moments, None),
        service=_service_table(profiles),
        elapsed_ms=elapsed,
        throughput_fps=(completed / (elapsed / 1000.0)) if elapsed else 0.0,
        utilisation=min(1.0, service_sum / elapsed) if elapsed else 0.0,
        windows=windows.summary(),
    )


def _moment_dict(moments: StreamingMoments,
                 estimators: Optional[List[P2Quantile]]) -> Dict[str, float]:
    """Plain-data form of one online statistic set."""
    if moments.count == 0:
        return {"count": 0.0}
    out = {
        "count": float(moments.count),
        "min": moments.minimum,
        "max": moments.maximum,
        "mean": moments.mean,
        "std": moments.std,
    }
    for estimator in estimators or ():
        out[quantile_key(estimator.q)] = estimator.value
    return out


def _service_table(profiles: List[JobProfile]) -> Dict[str, float]:
    """Per-job service times keyed by workload label."""
    return {profile.label: profile.service_ms for profile in profiles}
