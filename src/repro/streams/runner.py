"""The virtual-time stream engine: open-loop frame traffic on one GPU.

:func:`run_stream` turns a :class:`~repro.api.stream.StreamSpec` into a
:class:`~repro.streams.report.StreamReport` by composing three stages:

1. **job resolution** (:mod:`repro.streams.jobs`) — every distinct frame
   job is simulated redundantly once on the virtual-time
   :class:`~repro.gpu.simulator.GPUSimulator`; its makespan is the
   frame's service time, its clean trace the fault-overlay substrate.
   This is the only expensive stage and the only parallel one.
2. **queueing recurrence** — frames flow through a single-server bounded
   FIFO in arrival order: an arrival that finds the queue full is
   *dropped* (backpressure); an admitted frame starts when the server
   frees up and completes one service time later (plus one full
   re-execution per detected fault).  The recurrence is O(1) per frame
   and O(queue depth) memory, so million-frame soaks stream through
   without materialising anything.
3. **online analytics** (:mod:`repro.streams.analytics`) — latency and
   wait moments, P² quantile estimates, deadline/drop counters and
   tumbling throughput/utilisation windows, all folded frame by frame.

Determinism contract: the report is a pure function of ``(spec, seed)``.
Worker counts only parallelise stage 1 (whose results are deterministic
simulations) and, for long streams, the *precomputation* of stage 2's
per-frame substream values (arrival times and fault decision draws —
indexed pure functions of ``(seed, frame)``); ``chunk_frames`` only
batches the arrival generator of stage 2 (which always folds frames in
index order).  ``StreamReport.digest()`` is therefore bit-identical
across any worker/chunk configuration — proven by
``tests/streams/test_stream_runner.py`` and measured at soak scale by
``benchmarks/bench_streams.py``.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from itertools import islice
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.api.stats import RepeatSpec
from repro.api.stream import StreamSpec
from repro.errors import StatsError, StreamError
from repro.faults.outcomes import FaultOutcome
from repro.obs.session import NULL_TELEMETRY, Telemetry
from repro.stats.intervals import RateEstimate
from repro.stats.repeater import (
    STOP_BUDGET,
    STOP_TARGET,
    RepeatResult,
    target_met,
)
from repro.streams.analytics import StreamAccumulator
from repro.streams.arrivals import (
    frame_substream,
    iter_arrivals,
    materialize_arrivals,
    substream_factory,
)
from repro.streams.jobs import JobProfile, resolve_jobs
from repro.streams.report import (
    STREAM_RATE_METRICS,
    StreamReport,
    quantile_key,
)

__all__ = ["repeat_stream", "run_stream", "DEFAULT_CHUNK_FRAMES"]

#: Default frame-loop batch size (purely mechanical; see the module
#: docstring's determinism contract).
DEFAULT_CHUNK_FRAMES = 65536

#: Minimum stream length before ``workers > 1`` fans the per-frame
#: substream precomputation (arrival times, fault decision draws) out to
#: a process pool.  Below this, pool start-up costs more than the
#: SHA-256 + Mersenne Twister reseeds it would parallelise.
_PREDRAW_MIN_FRAMES = 16384

#: Frame-window size used when telemetry is enabled: arrival batches are
#: mechanically re-chunked to this size so ``frame_window`` events and
#: heartbeats land at a useful cadence on long soaks.  Chunking never
#: changes the report (see the module docstring), so telemetry stays
#: digest-neutral.
_TELEMETRY_WINDOW_FRAMES = 8192


def _rebatched(source: Iterable[List[float]],
               size: int) -> Iterator[List[float]]:
    """Re-chunk arrival batches into windows of at most ``size`` frames."""
    for batch in source:
        if len(batch) <= size:
            yield batch
            continue
        for lo in range(0, len(batch), size):
            yield batch[lo:lo + size]


def _fault_uniform_chunk(seed: int, lo: int, hi: int) -> List[float]:
    """First fault-substream uniform of frames ``[lo, hi)`` — pool-safe.

    ``uniforms[i] < probability`` is exactly the fault-injection decision
    the frame loop would have drawn inline for frame ``lo + i``
    (substreams are indexed per frame, so precomputation cannot shift any
    other draw).
    """
    sub = substream_factory(seed, "fault")
    return [sub(index).random() for index in range(lo, hi)]


def _arrival_batches(spec: StreamSpec,
                     chunk_frames: int) -> Iterator[List[float]]:
    """The stream's arrivals in mechanical batches of ``chunk_frames``."""
    arrivals = iter_arrivals(spec.arrival, spec.seed)
    remaining = spec.frames
    while remaining:
        batch = list(islice(arrivals, min(chunk_frames, remaining)))
        remaining -= len(batch)
        yield batch


def run_stream(spec: StreamSpec, *, workers: int = 1,
               chunk_frames: int = DEFAULT_CHUNK_FRAMES,
               service_offset_ms: float = 0.0,
               validate: bool = True,
               telemetry: Optional[Telemetry] = None) -> StreamReport:
    """Execute one open-loop frame stream and fold its online report.

    Args:
        spec: the declarative stream.
        workers: process count for the distinct-job simulations and,
            on streams of at least ``_PREDRAW_MIN_FRAMES`` frames, for
            precomputing the per-frame substream values (``1`` runs
            everything in-process); never changes the report.
        chunk_frames: frame-loop batch size (arrival generation is
            batched in chunks of this many frames); never changes the
            report.
        service_offset_ms: fixed extra service time every frame pays on
            top of its simulated makespan (re-executions pay it again).
            :mod:`repro.platform` uses it to charge each device's COTS
            protocol overhead; the ``0.0`` default leaves single-stream
            reports untouched.
        validate: forward the simulator's trace-validation switch.
        telemetry: optional :class:`~repro.obs.session.Telemetry`
            session receiving lifecycle events, spans, ``frame_window``
            summaries and heartbeats; never changes the report.

    Returns:
        The aggregate :class:`~repro.streams.report.StreamReport` —
        bit-identical (``report.digest()``) for any ``workers`` /
        ``chunk_frames`` configuration.

    Raises:
        StreamError: for invalid worker/chunk counts, a negative service
            offset, or workloads that resolve to no kernels.
    """
    if chunk_frames < 1:
        raise StreamError("chunk_frames must be >= 1")
    if service_offset_ms < 0:
        raise StreamError("service_offset_ms cannot be negative")
    tm = telemetry if telemetry is not None else NULL_TELEMETRY
    with tm.span("resolve_jobs", workers=workers):
        profiles = resolve_jobs(spec, workers=workers, validate=validate,
                                telemetry=tm if tm.enabled else None)
    policy = profiles[0].run.sim.scheduler_name
    tm.emit("run_start", kind="stream", label=spec.label,
            spec_hash=spec.config_hash, frames=spec.frames, policy=policy)
    deadline = spec.effective_deadline_ms
    faults = spec.faults if (
        spec.faults is not None and spec.faults.probability > 0.0
    ) else None

    acc = StreamAccumulator(spec.quantiles, spec.effective_window_ms)

    completed = dropped = deadline_misses = 0
    injected = masked = detected = sdc = re_executions = 0

    # single-server bounded FIFO: completion times of frames still in
    # the system (head = oldest); capacity = 1 in service + queue_depth
    in_system: Deque[float] = deque()
    capacity = spec.queue_depth + 1
    last_completion = 0.0
    last_arrival = 0.0
    service_sum = 0.0

    n_jobs = len(profiles)
    # hoisted per-frame invariants: the service/busy tables replace a
    # profile attribute chase + add per frame with one list probe, the
    # fault substream factory amortises the SHA-256 prefix, and `slot`
    # tracks `frame % n_jobs` incrementally
    services = [p.service_ms + service_offset_ms for p in profiles]
    busys = [p.busy_ms for p in profiles]
    fault_substream = (
        substream_factory(spec.seed, "fault") if faults is not None else None
    )
    fault_probability = faults.probability if faults is not None else 0.0

    def inject(rng, slot: int, frame: int,
               service: float, busy: float) -> Tuple[float, float]:
        # rare path (one call per injected fault): overlay one random
        # fault on the frame and account its outcome
        nonlocal injected, masked, detected, sdc, re_executions
        injected += 1
        profile = profiles[slot]
        fault = profile.campaign.random_fault(
            rng,
            transient_ccf=faults.transient_ccf,
            permanent_sm=faults.permanent_sm,
            seu=faults.seu,
            phase_quantum=faults.phase_quantum,
            fault_id=frame,
        )
        outcome = profile.campaign.classify(fault).outcome
        if outcome is FaultOutcome.DETECTED:
            detected += 1
            re_executions += 1
            service += services[slot]
            busy += busys[slot]
        elif outcome is FaultOutcome.SDC:
            sdc += 1
        else:
            masked += 1
        return service, busy

    # workers > 1: fan the pure per-frame substream work (arrival times,
    # fault decision uniforms) out to a process pool — frame i's draws
    # are an indexed pure function of (seed, i), so precomputation is
    # invisible to the report (the digest-equality tests prove it)
    fault_unis: Optional[List[float]] = None
    predraw = workers > 1 and spec.frames >= _PREDRAW_MIN_FRAMES and (
        spec.arrival.model != "periodic" or faults is not None
    )
    if predraw:
        tasks = workers * 4
        step = -(-spec.frames // tasks)  # ceil division
        with ProcessPoolExecutor(max_workers=workers) as pool:
            fault_futures = [
                pool.submit(_fault_uniform_chunk, spec.seed, lo,
                            min(lo + step, spec.frames))
                for lo in range(0, spec.frames, step)
            ] if faults is not None else []
            arrival_source: Iterable[List[float]] = (materialize_arrivals(
                spec.arrival, spec.seed, spec.frames,
                pool=pool, chunks=tasks,
            ),)
            if fault_futures:
                fault_unis = []
                for future in fault_futures:
                    fault_unis.extend(future.result())
    else:
        arrival_source = _arrival_batches(spec, chunk_frames)

    if tm.enabled:
        # smaller mechanical windows so frame_window events and
        # heartbeats land at a useful cadence on long soaks
        arrival_source = _rebatched(
            arrival_source, min(chunk_frames, _TELEMETRY_WINDOW_FRAMES)
        )

    observe = acc.observe
    popleft = in_system.popleft
    enqueue = in_system.append
    frame = 0
    slot = 0
    frame_span = tm.span("frame_loop", frames=spec.frames)
    frame_span.__enter__()
    for batch in arrival_source:
        window_start = frame
        w_completed, w_dropped = completed, dropped
        w_misses, w_injected = deadline_misses, injected
        for arrival in batch:
            last_arrival = arrival
            while in_system and in_system[0] <= arrival:
                popleft()
            if len(in_system) >= capacity:
                dropped += 1
                frame += 1
                slot += 1
                if slot == n_jobs:
                    slot = 0
                continue

            service = services[slot]
            busy = busys[slot]
            if fault_unis is not None:
                if fault_unis[frame] < fault_probability:
                    rng = frame_substream(spec.seed, "fault", frame)
                    rng.random()  # replay the predrawn decision draw
                    service, busy = inject(rng, slot, frame, service, busy)
            elif fault_substream is not None:
                rng = fault_substream(frame)
                if rng.random() < fault_probability:
                    service, busy = inject(rng, slot, frame, service, busy)

            begin = max(arrival, last_completion)
            completion = begin + service
            last_completion = completion
            enqueue(completion)
            service_sum += service

            wait = begin - arrival
            latency = completion - arrival
            completed += 1
            if latency > deadline:
                deadline_misses += 1
            observe(latency, wait, completion, busy)
            frame += 1
            slot += 1
            if slot == n_jobs:
                slot = 0
        if tm.enabled:
            tm.metrics.add("frames", frame - window_start)
            # drops counter + queue-depth gauge surface backpressure in
            # `obs report` without parsing frame_window events
            tm.metrics.add("drops", dropped - w_dropped)
            tm.metrics.set_gauge("queue_depth", len(in_system))
            tm.metrics.observe("window_drops", dropped - w_dropped)
            tm.emit("frame_window", start=window_start, stop=frame,
                    completed=completed - w_completed,
                    dropped=dropped - w_dropped,
                    deadline_misses=deadline_misses - w_misses,
                    faults_injected=injected - w_injected)
            tm.beat("stream", frame, spec.frames,
                    rate_counter="frames", unit="frames/s")
    frame_span.__exit__(None, None, None)
    if tm.enabled:
        tm.beat("stream", frame, spec.frames,
                rate_counter="frames", unit="frames/s", force=True)

    elapsed = max(last_arrival, last_completion)
    with tm.span("fold"):
        latency_dict = acc.latency_summary()
        if completed:
            for estimator in acc.estimators:
                latency_dict[quantile_key(estimator.q)] = estimator.value
    report = StreamReport(
        label=spec.label,
        policy=policy,
        spec_hash=spec.config_hash,
        seed=spec.seed,
        frames=spec.frames,
        completed=completed,
        dropped=dropped,
        deadline_ms=deadline,
        deadline_misses=deadline_misses,
        faults_injected=injected,
        faults_masked=masked,
        faults_detected=detected,
        faults_sdc=sdc,
        re_executions=re_executions,
        latency=latency_dict,
        wait=acc.wait_summary(),
        service=_service_table(profiles),
        elapsed_ms=elapsed,
        throughput_fps=(completed / (elapsed / 1000.0)) if elapsed else 0.0,
        utilisation=min(1.0, service_sum / elapsed) if elapsed else 0.0,
        windows=acc.windows.summary(),
    )
    if tm.enabled:
        tm.emit("run_end", kind="stream", digest=report.digest(),
                completed=report.completed, dropped=report.dropped,
                elapsed_ms=report.elapsed_ms)
    return report


def _service_table(profiles: List[JobProfile]) -> Dict[str, float]:
    """Per-job service times keyed by workload label."""
    return {profile.label: profile.service_ms for profile in profiles}


# ----------------------------------------------------------------------
# repeat-until-confidence
# ----------------------------------------------------------------------
def _repeat_lengths(repeat: RepeatSpec) -> Iterator[int]:
    """Evaluation-point frame counts: geometric growth to the cap.

    ``batch, 2·batch, 4·batch, …`` clipped to ``max_total`` (which is
    always the last point).  Geometric growth keeps the total work of
    re-running the stream at every point within ~2× the final run.
    """
    frames = repeat.batch
    while frames < repeat.max_total:
        yield frames
        frames *= 2
    yield repeat.max_total


def repeat_stream(spec: StreamSpec, repeat: RepeatSpec, *,
                  workers: int = 1,
                  chunk_frames: int = DEFAULT_CHUNK_FRAMES,
                  validate: bool = True,
                  telemetry: Optional[Telemetry] = None) -> RepeatResult:
    """Extend a stream soak until the CI target on a rate metric is met.

    The stream counterpart of
    :func:`repro.campaigns.runner.repeat_campaign`: frame counts grow
    geometrically from ``repeat.batch`` to the ``repeat.max_total``
    budget cap, re-running the stream at each evaluation point.  Every
    per-frame draw (arrival, fault decision) is an indexed pure function
    of ``(seed, frame)``, so an ``n``-frame run is a strict prefix of a
    ``2n``-frame run — extending the soak never changes frames already
    streamed, and the evaluation trajectory is a pure function of
    ``(spec, repeat)``, independent of ``workers`` / ``chunk_frames``.

    The stopping rule is evaluated on the chosen metric's
    :meth:`~repro.streams.report.StreamReport.rate_interval`; evaluation
    points where the metric has no trials yet (e.g. ``fault_sdc``
    before any fault was injected) do not satisfy the target and are
    absent from the history.

    Args:
        spec: the declarative stream; its ``frames`` field is ignored in
            favour of the repeat schedule.
        repeat: the stopping rule; ``metric`` must be one of
            :data:`~repro.streams.report.STREAM_RATE_METRICS`.
        workers: forwarded to :func:`run_stream` (never changes the
            result).
        chunk_frames: forwarded to :func:`run_stream` (never changes the
            result).
        validate: forward the simulator's trace-validation switch.
        telemetry: optional :class:`~repro.obs.session.Telemetry`
            session; each evaluation point runs as its own
            instrumented stream under a ``batch`` span.

    Returns:
        A :class:`~repro.stats.repeater.RepeatResult` whose ``report``
        is the :class:`~repro.streams.report.StreamReport` of the
        stopping point; ``converged`` is ``False`` when the budget cap
        was exhausted first.

    Raises:
        StreamError: on an unknown repeat metric or invalid stream
            parameters.
        StatsError: when no evaluation point up to the budget cap yields
            a well-defined estimate.
    """
    if repeat.metric not in STREAM_RATE_METRICS:
        raise StreamError(
            f"unknown stream repeat metric {repeat.metric!r}; known: "
            + ", ".join(STREAM_RATE_METRICS)
        )
    tm = telemetry if telemetry is not None else NULL_TELEMETRY
    tm.emit("run_start", kind="stream-repeat", label=spec.label,
            spec_hash=spec.config_hash, metric=repeat.metric,
            budget=repeat.max_total)
    history: List[RateEstimate] = []
    report: Optional[StreamReport] = None
    batches = 0
    converged = False
    last_stats_error: Optional[StatsError] = None
    for frames in _repeat_lengths(repeat):
        batches += 1
        with tm.span("batch", frames=frames):
            report = run_stream(
                dataclasses.replace(spec, frames=frames),
                workers=workers, chunk_frames=chunk_frames,
                validate=validate, telemetry=tm,
            )
        try:
            estimate = report.rate_interval(
                repeat.metric, confidence=repeat.confidence,
                method=repeat.interval,
            )
        except StatsError as exc:
            last_stats_error = exc
            continue
        history.append(estimate)
        if target_met(estimate,
                      relative_half_width=repeat.relative_half_width,
                      half_width=repeat.half_width):
            converged = True
            break
    if not history or report is None:
        raise StatsError(
            f"no evaluation point up to {repeat.max_total} frames yields "
            f"a well-defined {repeat.metric!r} estimate"
            + (f": {last_stats_error}" if last_stats_error else "")
        )
    estimate = history[-1]
    error = None
    if not converged:
        target = (f"relative half-width <= {repeat.relative_half_width}"
                  if repeat.relative_half_width is not None
                  else f"half-width <= {repeat.half_width}")
        error = (
            f"budget of {repeat.max_total} frames exhausted with the "
            f"{repeat.metric!r} interval at {estimate.describe()} — "
            f"target {target} not met"
        )
    tm.emit("run_end", kind="stream-repeat", converged=converged,
            batches=batches, total=report.frames)
    return RepeatResult(
        metric=repeat.metric,
        converged=converged,
        stop_reason=STOP_TARGET if converged else STOP_BUDGET,
        batches=batches,
        total=report.frames,
        estimate=estimate,
        report=report,
        history=tuple(history),
        error=error,
    )
