"""Online, O(1)-memory stream statistics.

Million-frame soak runs must never materialise per-frame records, so all
stream analytics are *streaming* folds:

* :class:`P2Quantile` — the P² quantile estimator (Jain & Chlamtac,
  CACM 1985): five markers per tracked quantile, parabolic interpolation,
  exact for the first five observations, O(1) per update;
* :class:`StreamingMoments` — count / min / max / mean / variance via
  Welford's algorithm (numerically stable, single pass);
* :class:`WindowedRates` — tumbling windows over the stream's virtual
  time axis whose per-window throughput and utilisation fold into
  bounded min/mean/max aggregates (empty windows count as idle);
* :class:`StreamAccumulator` — the fused per-frame fold the stream
  runner drives: one ``observe()`` call updates latency moments, wait
  moments, every quantile estimator and the tumbling windows without
  re-chasing attributes per frame.

All folds are deterministic: feeding the same values in the same order
produces bit-identical state, which is what lets
:meth:`~repro.streams.report.StreamReport.digest` promise bit-identity
across worker/chunk configurations.  The fused accumulator performs the
*same floating-point operations in the same order* as the standalone
classes, so fusing is invisible to report digests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import StreamError

__all__ = [
    "P2Quantile",
    "StreamAccumulator",
    "StreamingMoments",
    "WindowedRates",
]


class P2Quantile:
    """Streaming estimate of one quantile in O(1) memory (P² algorithm).

    The estimator keeps five markers whose heights track the minimum, the
    quantile's neighbourhood and the maximum; marker positions follow
    their desired positions with parabolic (fallback linear) height
    adjustment.  The first five observations are buffered, so estimates
    are *exact* until then.

    Args:
        q: the tracked quantile, strictly in ``(0, 1)``.
    """

    __slots__ = (
        "_q", "_heights", "_positions", "_desired", "_increments", "_count",
    )

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise StreamError("quantile must lie strictly in (0, 1)")
        self._q = q
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def q(self) -> float:
        """The tracked quantile."""
        return self._q

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._count

    # ------------------------------------------------------------------
    def add(self, x: float) -> None:
        """Fold one observation into the estimate.

        This is the hottest analytics path (one call per quantile per
        completed frame), so the marker bookkeeping is unrolled and the
        parabolic/linear height predictions are inlined on locals.  Every
        floating-point operation matches the textbook formulation
        operation-for-operation, keeping the fold bit-identical to the
        previous layered implementation.
        """
        count = self._count + 1
        self._count = count
        heights = self._heights
        if count <= 5:
            heights.append(x)
            heights.sort()
            if count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 4.0 * inc for inc in self._increments
                ]
            return

        n = self._positions
        desired = self._desired
        increments = self._increments
        # locate the cell k with heights[k] <= x < heights[k+1]
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1
        if k == 0:
            n[1] += 1.0
            n[2] += 1.0
            n[3] += 1.0
            n[4] += 1.0
        elif k == 1:
            n[2] += 1.0
            n[3] += 1.0
            n[4] += 1.0
        elif k == 2:
            n[3] += 1.0
            n[4] += 1.0
        else:
            n[4] += 1.0
        # desired[0] accumulates increments[0] == 0.0 — an exact no-op
        desired[1] += increments[1]
        desired[2] += increments[2]
        desired[3] += increments[3]
        desired[4] += increments[4]

        # adjust the three interior markers toward their desired positions
        for i in (1, 2, 3):
            ni = n[i]
            delta = desired[i] - ni
            if delta >= 1.0:
                nip = n[i + 1]
                if nip - ni <= 1.0:
                    continue
                step = 1.0
                nim = n[i - 1]
            elif delta <= -1.0:
                nim = n[i - 1]
                if nim - ni >= -1.0:
                    continue
                step = -1.0
                nip = n[i + 1]
            else:
                continue
            hi = heights[i]
            him = heights[i - 1]
            hip = heights[i + 1]
            candidate = hi + step / (nip - nim) * (
                (ni - nim + step) * (hip - hi) / (nip - ni)
                + (nip - ni - step) * (hi - him) / (ni - nim)
            )
            if him < candidate < hip:
                heights[i] = candidate
            elif step == 1.0:
                heights[i] = hi + step * (hip - hi) / (nip - ni)
            else:
                heights[i] = hi + step * (him - hi) / (nim - ni)
            n[i] = ni + step

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """The current quantile estimate.

        Exact (interpolated from the sorted buffer) while fewer than five
        observations have arrived; the centre P² marker afterwards.

        Raises:
            StreamError: before any observation.
        """
        if self._count == 0:
            raise StreamError("quantile of an empty stream is undefined")
        if self._count < 5:
            ordered = self._heights
            rank = self._q * (len(ordered) - 1)
            lo = math.floor(rank)
            hi = min(lo + 1, len(ordered) - 1)
            frac = rank - lo
            return ordered[lo] + (ordered[hi] - ordered[lo]) * frac
        return self._heights[2]


class StreamingMoments:
    """Count, min, max, mean and variance in one pass (Welford)."""

    __slots__ = ("_count", "_min", "_max", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Fold one observation."""
        self._count += 1
        self._min = min(self._min, x)
        self._max = max(self._max, x)
        delta = x - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (x - self._mean)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def minimum(self) -> float:
        """Smallest observation.

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation.

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return self._max

    @property
    def mean(self) -> float:
        """Arithmetic mean.

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return self._mean

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 for a single observation).

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return math.sqrt(self._m2 / self._count)

    def _require(self) -> None:
        if self._count == 0:
            raise StreamError("moments of an empty stream are undefined")


class WindowedRates:
    """Tumbling throughput/utilisation windows with bounded aggregates.

    The stream's virtual time axis is cut into windows of ``window_ms``;
    each completed frame contributes its completion instant and the GPU
    busy time it consumed.  When the stream moves past a window the
    window's throughput (frames per second) and utilisation (busy time
    over window length) fold into min/mean/max aggregates — windows with
    no completions count as idle, so the aggregates honestly reflect
    bursts *and* gaps.  Memory is O(1) regardless of stream length.

    Completion instants must be non-decreasing (single-server FIFO
    streams satisfy this by construction).

    Args:
        window_ms: window length in stream milliseconds.
    """

    __slots__ = (
        "_window_ms", "_current", "_frames_in_window", "_busy_in_window",
        "_last_t", "_windows", "_fps_min", "_fps_max", "_fps_sum",
        "_util_min", "_util_max", "_util_sum",
    )

    def __init__(self, window_ms: float) -> None:
        if window_ms <= 0:
            raise StreamError("window length must be positive")
        self._window_ms = window_ms
        self._current = 0          # index of the open window
        self._frames_in_window = 0
        self._busy_in_window = 0.0
        self._last_t = 0.0
        # folded aggregates over closed windows
        self._windows = 0
        self._fps_min = math.inf
        self._fps_max = -math.inf
        self._fps_sum = 0.0
        self._util_min = math.inf
        self._util_max = -math.inf
        self._util_sum = 0.0

    @property
    def window_ms(self) -> float:
        """Window length in stream milliseconds."""
        return self._window_ms

    @property
    def closed_windows(self) -> int:
        """Number of windows folded so far."""
        return self._windows

    # ------------------------------------------------------------------
    def observe(self, completion_ms: float, busy_ms: float) -> None:
        """Fold one completed frame.

        Args:
            completion_ms: the frame's completion instant (non-decreasing
                across calls).
            busy_ms: GPU busy time the frame consumed.

        Raises:
            StreamError: when completion instants go backwards.
        """
        if completion_ms < self._last_t:
            raise StreamError(
                "window completions must be non-decreasing "
                f"({completion_ms} after {self._last_t})"
            )
        self._last_t = completion_ms
        window = int(completion_ms // self._window_ms)
        if window > self._current:
            self._roll_to(window)
        self._frames_in_window += 1
        self._busy_in_window += busy_ms

    def _roll_to(self, window: int) -> None:
        """Close the open window (plus any skipped idle windows)."""
        self._fold(self._frames_in_window, self._busy_in_window)
        idle = window - self._current - 1
        if idle > 0:
            # idle windows fold as zero throughput / zero utilisation
            self._windows += idle
            self._fps_min = min(self._fps_min, 0.0)
            self._fps_max = max(self._fps_max, 0.0)
            self._util_min = min(self._util_min, 0.0)
            self._util_max = max(self._util_max, 0.0)
        self._current = window
        self._frames_in_window = 0
        self._busy_in_window = 0.0

    def _fold(self, frames: int, busy_ms: float) -> None:
        fps = frames / (self._window_ms / 1000.0)
        util = min(1.0, busy_ms / self._window_ms)
        self._windows += 1
        self._fps_min = min(self._fps_min, fps)
        self._fps_max = max(self._fps_max, fps)
        self._fps_sum += fps
        self._util_min = min(self._util_min, util)
        self._util_max = max(self._util_max, util)
        self._util_sum += util

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Close the open window and return the folded aggregates.

        Returns:
            Mapping with ``windows``, ``window_ms`` and the
            ``fps_min/mean/max`` / ``util_min/mean/max`` aggregates
            (all zero when the stream produced no completions).
        """
        frames, busy = self._frames_in_window, self._busy_in_window
        windows = self._windows
        fps_min, fps_max, fps_sum = self._fps_min, self._fps_max, self._fps_sum
        util_min, util_max = self._util_min, self._util_max
        util_sum = self._util_sum
        if frames or windows == 0:
            # fold the in-progress window without mutating state, so
            # summary() is idempotent and observe() can continue
            fps = frames / (self._window_ms / 1000.0)
            util = min(1.0, busy / self._window_ms)
            windows += 1
            fps_min = min(fps_min, fps)
            fps_max = max(fps_max, fps)
            fps_sum += fps
            util_min = min(util_min, util)
            util_max = max(util_max, util)
            util_sum += util
        return {
            "windows": float(windows),
            "window_ms": self._window_ms,
            "fps_min": fps_min,
            "fps_mean": fps_sum / windows,
            "fps_max": fps_max,
            "util_min": util_min,
            "util_mean": util_sum / windows,
            "util_max": util_max,
        }


class StreamAccumulator:
    """Fused per-frame analytics fold for the stream runner's hot loop.

    One :meth:`observe` call per completed frame updates the latency
    Welford moments, the wait Welford moments, every P² quantile
    estimator and the tumbling windows — the work the runner previously
    spread over four attribute chains per frame.  The Welford updates
    are inlined on ``__slots__`` fields and the quantile ``add`` bound
    methods are pre-resolved, so a frame costs a single method call plus
    plain local arithmetic.

    Bit-identity: every floating-point operation matches what the
    standalone :class:`StreamingMoments` / :class:`P2Quantile` /
    :class:`WindowedRates` sequence performed, in the same order, so
    fusing never changes a report digest.

    Args:
        quantiles: latency quantiles to track (one P² estimator each).
        window_ms: tumbling-window length in stream milliseconds.
    """

    __slots__ = (
        "_lat_count", "_lat_min", "_lat_max", "_lat_mean", "_lat_m2",
        "_wait_count", "_wait_min", "_wait_max", "_wait_mean", "_wait_m2",
        "estimators", "_est_adds", "windows",
    )

    def __init__(self, quantiles: Sequence[float], window_ms: float) -> None:
        self._lat_count = 0
        self._lat_min = math.inf
        self._lat_max = -math.inf
        self._lat_mean = 0.0
        self._lat_m2 = 0.0
        self._wait_count = 0
        self._wait_min = math.inf
        self._wait_max = -math.inf
        self._wait_mean = 0.0
        self._wait_m2 = 0.0
        self.estimators: Tuple[P2Quantile, ...] = tuple(
            P2Quantile(q) for q in quantiles
        )
        self._est_adds = tuple(e.add for e in self.estimators)
        self.windows = WindowedRates(window_ms)

    def observe(self, latency: float, wait: float,
                completion_ms: float, busy_ms: float) -> None:
        """Fold one completed frame into every statistic.

        Args:
            latency: the frame's end-to-end latency (completion minus
                arrival).
            wait: the frame's queueing wait (begin minus arrival).
            completion_ms: the frame's completion instant (non-decreasing
                across calls — enforced by the tumbling windows).
            busy_ms: GPU busy time the frame consumed.
        """
        count = self._lat_count + 1
        self._lat_count = count
        if latency < self._lat_min:
            self._lat_min = latency
        if latency > self._lat_max:
            self._lat_max = latency
        delta = latency - self._lat_mean
        mean = self._lat_mean + delta / count
        self._lat_mean = mean
        self._lat_m2 += delta * (latency - mean)

        count = self._wait_count + 1
        self._wait_count = count
        if wait < self._wait_min:
            self._wait_min = wait
        if wait > self._wait_max:
            self._wait_max = wait
        delta = wait - self._wait_mean
        mean = self._wait_mean + delta / count
        self._wait_mean = mean
        self._wait_m2 += delta * (wait - mean)

        for add in self._est_adds:
            add(latency)
        self.windows.observe(completion_ms, busy_ms)

    # ------------------------------------------------------------------
    def latency_summary(self) -> Dict[str, float]:
        """Plain-data latency moments (``{"count": 0.0}`` when empty)."""
        count = self._lat_count
        if count == 0:
            return {"count": 0.0}
        return {
            "count": float(count),
            "min": self._lat_min,
            "max": self._lat_max,
            "mean": self._lat_mean,
            "std": math.sqrt(self._lat_m2 / count),
        }

    def wait_summary(self) -> Dict[str, float]:
        """Plain-data wait moments (``{"count": 0.0}`` when empty)."""
        count = self._wait_count
        if count == 0:
            return {"count": 0.0}
        return {
            "count": float(count),
            "min": self._wait_min,
            "max": self._wait_max,
            "mean": self._wait_mean,
            "std": math.sqrt(self._wait_m2 / count),
        }
