"""Online, O(1)-memory stream statistics.

Million-frame soak runs must never materialise per-frame records, so all
stream analytics are *streaming* folds:

* :class:`P2Quantile` — the P² quantile estimator (Jain & Chlamtac,
  CACM 1985): five markers per tracked quantile, parabolic interpolation,
  exact for the first five observations, O(1) per update;
* :class:`StreamingMoments` — count / min / max / mean / variance via
  Welford's algorithm (numerically stable, single pass);
* :class:`WindowedRates` — tumbling windows over the stream's virtual
  time axis whose per-window throughput and utilisation fold into
  bounded min/mean/max aggregates (empty windows count as idle).

All folds are deterministic: feeding the same values in the same order
produces bit-identical state, which is what lets
:meth:`~repro.streams.report.StreamReport.digest` promise bit-identity
across worker/chunk configurations.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import StreamError

__all__ = ["P2Quantile", "StreamingMoments", "WindowedRates"]


class P2Quantile:
    """Streaming estimate of one quantile in O(1) memory (P² algorithm).

    The estimator keeps five markers whose heights track the minimum, the
    quantile's neighbourhood and the maximum; marker positions follow
    their desired positions with parabolic (fallback linear) height
    adjustment.  The first five observations are buffered, so estimates
    are *exact* until then.

    Args:
        q: the tracked quantile, strictly in ``(0, 1)``.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise StreamError("quantile must lie strictly in (0, 1)")
        self._q = q
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def q(self) -> float:
        """The tracked quantile."""
        return self._q

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._count

    # ------------------------------------------------------------------
    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(x)
            heights.sort()
            if self._count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 4.0 * inc for inc in self._increments
                ]
            return

        positions = self._positions
        # locate the cell k with heights[k] <= x < heights[k+1]
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # adjust the three interior markers toward their desired positions
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if ((delta >= 1.0 and positions[i + 1] - positions[i] > 1.0)
                    or (delta <= -1.0
                        and positions[i - 1] - positions[i] < -1.0)):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        """Piecewise-parabolic height prediction for marker ``i``."""
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        """Linear fallback when the parabolic prediction leaves its cell."""
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """The current quantile estimate.

        Exact (interpolated from the sorted buffer) while fewer than five
        observations have arrived; the centre P² marker afterwards.

        Raises:
            StreamError: before any observation.
        """
        if self._count == 0:
            raise StreamError("quantile of an empty stream is undefined")
        if self._count < 5:
            ordered = self._heights
            rank = self._q * (len(ordered) - 1)
            lo = math.floor(rank)
            hi = min(lo + 1, len(ordered) - 1)
            frac = rank - lo
            return ordered[lo] + (ordered[hi] - ordered[lo]) * frac
        return self._heights[2]


class StreamingMoments:
    """Count, min, max, mean and variance in one pass (Welford)."""

    def __init__(self) -> None:
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Fold one observation."""
        self._count += 1
        self._min = min(self._min, x)
        self._max = max(self._max, x)
        delta = x - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (x - self._mean)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def minimum(self) -> float:
        """Smallest observation.

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation.

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return self._max

    @property
    def mean(self) -> float:
        """Arithmetic mean.

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return self._mean

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 for a single observation).

        Raises:
            StreamError: before any observation.
        """
        self._require()
        return math.sqrt(self._m2 / self._count)

    def _require(self) -> None:
        if self._count == 0:
            raise StreamError("moments of an empty stream are undefined")


class WindowedRates:
    """Tumbling throughput/utilisation windows with bounded aggregates.

    The stream's virtual time axis is cut into windows of ``window_ms``;
    each completed frame contributes its completion instant and the GPU
    busy time it consumed.  When the stream moves past a window the
    window's throughput (frames per second) and utilisation (busy time
    over window length) fold into min/mean/max aggregates — windows with
    no completions count as idle, so the aggregates honestly reflect
    bursts *and* gaps.  Memory is O(1) regardless of stream length.

    Completion instants must be non-decreasing (single-server FIFO
    streams satisfy this by construction).

    Args:
        window_ms: window length in stream milliseconds.
    """

    def __init__(self, window_ms: float) -> None:
        if window_ms <= 0:
            raise StreamError("window length must be positive")
        self._window_ms = window_ms
        self._current = 0          # index of the open window
        self._frames_in_window = 0
        self._busy_in_window = 0.0
        self._last_t = 0.0
        # folded aggregates over closed windows
        self._windows = 0
        self._fps_min = math.inf
        self._fps_max = -math.inf
        self._fps_sum = 0.0
        self._util_min = math.inf
        self._util_max = -math.inf
        self._util_sum = 0.0

    @property
    def window_ms(self) -> float:
        """Window length in stream milliseconds."""
        return self._window_ms

    @property
    def closed_windows(self) -> int:
        """Number of windows folded so far."""
        return self._windows

    # ------------------------------------------------------------------
    def observe(self, completion_ms: float, busy_ms: float) -> None:
        """Fold one completed frame.

        Args:
            completion_ms: the frame's completion instant (non-decreasing
                across calls).
            busy_ms: GPU busy time the frame consumed.

        Raises:
            StreamError: when completion instants go backwards.
        """
        if completion_ms < self._last_t:
            raise StreamError(
                "window completions must be non-decreasing "
                f"({completion_ms} after {self._last_t})"
            )
        self._last_t = completion_ms
        window = int(completion_ms // self._window_ms)
        if window > self._current:
            self._roll_to(window)
        self._frames_in_window += 1
        self._busy_in_window += busy_ms

    def _roll_to(self, window: int) -> None:
        """Close the open window (plus any skipped idle windows)."""
        self._fold(self._frames_in_window, self._busy_in_window)
        idle = window - self._current - 1
        if idle > 0:
            # idle windows fold as zero throughput / zero utilisation
            self._windows += idle
            self._fps_min = min(self._fps_min, 0.0)
            self._fps_max = max(self._fps_max, 0.0)
            self._util_min = min(self._util_min, 0.0)
            self._util_max = max(self._util_max, 0.0)
        self._current = window
        self._frames_in_window = 0
        self._busy_in_window = 0.0

    def _fold(self, frames: int, busy_ms: float) -> None:
        fps = frames / (self._window_ms / 1000.0)
        util = min(1.0, busy_ms / self._window_ms)
        self._windows += 1
        self._fps_min = min(self._fps_min, fps)
        self._fps_max = max(self._fps_max, fps)
        self._fps_sum += fps
        self._util_min = min(self._util_min, util)
        self._util_max = max(self._util_max, util)
        self._util_sum += util

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Close the open window and return the folded aggregates.

        Returns:
            Mapping with ``windows``, ``window_ms`` and the
            ``fps_min/mean/max`` / ``util_min/mean/max`` aggregates
            (all zero when the stream produced no completions).
        """
        frames, busy = self._frames_in_window, self._busy_in_window
        windows = self._windows
        fps_min, fps_max, fps_sum = self._fps_min, self._fps_max, self._fps_sum
        util_min, util_max = self._util_min, self._util_max
        util_sum = self._util_sum
        if frames or windows == 0:
            # fold the in-progress window without mutating state, so
            # summary() is idempotent and observe() can continue
            fps = frames / (self._window_ms / 1000.0)
            util = min(1.0, busy / self._window_ms)
            windows += 1
            fps_min = min(fps_min, fps)
            fps_max = max(fps_max, fps)
            fps_sum += fps
            util_min = min(util_min, util)
            util_max = max(util_max, util)
            util_sum += util
        return {
            "windows": float(windows),
            "window_ms": self._window_ms,
            "fps_min": fps_min,
            "fps_mean": fps_sum / windows,
            "fps_max": fps_max,
            "util_min": util_min,
            "util_mean": util_sum / windows,
            "util_max": util_max,
        }
