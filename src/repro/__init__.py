"""repro — reproduction of "High-Integrity GPU Designs for Critical
Real-Time Automotive Systems" (Alcaide et al., DATE 2019).

The paper proposes lightweight GPU kernel-scheduler policies (SRRS and
HALF) that guarantee *diverse redundancy* — every redundant thread-block
pair executes on different SMs and/or at different times — so that COTS
GPUs can meet ISO 26262 ASIL-D requirements without heterogeneous
replication.

Top-level packages:

* :mod:`repro.api` — the declarative front door: :class:`RunSpec`,
  :class:`RunArtifact`, the :class:`Engine` facade with parallel batch
  execution, the scenario registry, and :class:`CampaignSpec`;
* :mod:`repro.campaigns` — sharded, resumable fault-injection campaign
  orchestration (process-pool shards, JSONL checkpoint store, streaming
  aggregate fold);
* :mod:`repro.streams` — continuous ADAS frame traffic: open-loop
  arrival models, bounded-queue backpressure, per-frame deadline/FTTI
  accounting and online O(1)-memory latency analytics;
* :mod:`repro.platform` — multi-device vehicle platforms: deterministic
  task placement across a heterogeneous GPU fleet, per-device stream
  execution and the platform-level ISO 26262 rollup;
* :mod:`repro.gpu` — GPU model, discrete-event timing simulator, kernel
  schedulers (default / SRRS / HALF), COTS end-to-end model;
* :mod:`repro.redundancy` — redundant execution manager, output
  comparison, diversity metrics, DMR/TMR;
* :mod:`repro.iso26262` — ASILs, decomposition, FTTI, hardware metrics;
* :mod:`repro.faults` — fault injection (transient CCFs, permanent SM
  defects, SEUs, scheduler faults) and campaigns;
* :mod:`repro.workloads` — Rodinia-shaped benchmark suite, synthetic
  kernels, the Figure 3 classifier;
* :mod:`repro.host` — DCLS lockstep CPU, CUDA-like API, the five-step
  offload protocol;
* :mod:`repro.analysis` — experiment runners regenerating every paper
  figure, and report rendering;
* :mod:`repro.lint` — AST-based determinism-contract checker (rule
  engine, RL001…RL008 catalogue, inline suppressions, CI gate) keeping
  the bit-identity promise machine-enforced (``docs/LINT.md``);
* :mod:`repro.stats` — campaign/stream statistics: Wilson, normal and
  bootstrap confidence intervals, stratified / importance-sampled rate
  estimators with Horvitz–Thompson reweighting, repeat-until-confidence
  stopping, and the two-artifact significance comparison behind
  ``python -m repro compare`` (``docs/STATISTICS.md``);
* :mod:`repro.obs` — the observability plane: typed
  ``repro-telemetry/v1`` event logs, tracing spans, metrics and live
  progress for campaign/stream/platform runs, strictly digest-neutral
  (``docs/OBSERVABILITY.md``).

Quickstart — one declarative run::

    import repro

    spec = repro.RunSpec(workload=repro.WorkloadSpec(benchmark="hotspot"),
                         policy="srrs")
    artifact = repro.run(spec)
    assert artifact.comparisons.all_clean
    assert artifact.diversity.fully_diverse

Batches fan out over a process pool and stay bit-deterministic::

    artifacts = repro.run_many(repro.build_scenario("fig4"), workers=4)

The imperative substrate remains available (see ``docs/API.md`` for the
migration table)::

    from repro import GPUConfig, KernelDescriptor, RedundantKernelManager

    gpu = GPUConfig.gpgpusim_like()
    kernel = KernelDescriptor(name="adas/detect", grid_blocks=36,
                              threads_per_block=256, work_per_block=4000.0)
    run = RedundantKernelManager(gpu, policy="srrs").run([kernel])
    assert run.all_clean and run.diversity.fully_diverse
"""

from repro.errors import (
    CapacityError,
    ConfigurationError,
    FaultInjectionError,
    LintError,
    ObsError,
    PlatformError,
    RedundancyError,
    RepeatBudgetError,
    ReproError,
    SafetyViolation,
    SchedulingError,
    SimulationError,
    StatsError,
    StreamError,
    WorkerCountError,
)
from repro.gpu import (
    ExecutionTrace,
    GPUConfig,
    GPUSimulator,
    KernelDescriptor,
    KernelLaunch,
    SimulationResult,
    SMConfig,
    simulate,
)
from repro.gpu.scheduler import (
    DefaultScheduler,
    HALFScheduler,
    KernelScheduler,
    SRRSScheduler,
    make_scheduler,
)
from repro.iso26262 import Asil, Ftti
from repro.redundancy import (
    RedundancyMode,
    RedundantKernelManager,
    RedundantRunResult,
    analyze_diversity,
)
from repro.workloads import classify_kernel, get_benchmark

__version__ = "1.10.0"

# the api and campaigns packages import repro.__version__ lazily at run
# time, so these imports must stay below the version assignment
from repro.api import (
    ArrivalSpec,
    CampaignSpec,
    DeviceSpec,
    Engine,
    FaultPlanSpec,
    GPUSpec,
    KernelSpec,
    PlacementSpec,
    PlatformSpec,
    RepeatSpec,
    RunArtifact,
    RunSpec,
    SamplingSpec,
    StreamFaultSpec,
    StreamSpec,
    WorkloadSpec,
    build_scenario,
    register_scenario,
    run,
    run_many,
    scenario_names,
)
from repro.campaigns import (
    CampaignStore,
    campaign_status,
    repeat_campaign,
    resume_campaign,
    run_campaign,
)
from repro.stats import (
    RateEstimate,
    RepeatResult,
    compare_artifacts,
    wilson_interval,
)
from repro.streams import StreamReport, repeat_stream, run_stream
from repro.platform import PlatformReport, plan_placement, run_platform
from repro.obs import Telemetry

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "SimulationError",
    "CapacityError",
    "RedundancyError",
    "SafetyViolation",
    "FaultInjectionError",
    "StreamError",
    "PlatformError",
    "WorkerCountError",
    "LintError",
    "StatsError",
    "RepeatBudgetError",
    "ObsError",
    # gpu
    "GPUConfig",
    "SMConfig",
    "KernelDescriptor",
    "KernelLaunch",
    "GPUSimulator",
    "SimulationResult",
    "ExecutionTrace",
    "simulate",
    # schedulers
    "KernelScheduler",
    "DefaultScheduler",
    "SRRSScheduler",
    "HALFScheduler",
    "make_scheduler",
    # safety
    "Asil",
    "Ftti",
    # redundancy
    "RedundantKernelManager",
    "RedundantRunResult",
    "RedundancyMode",
    "analyze_diversity",
    # workloads
    "classify_kernel",
    "get_benchmark",
    # declarative api
    "RunSpec",
    "GPUSpec",
    "KernelSpec",
    "WorkloadSpec",
    "FaultPlanSpec",
    "RunArtifact",
    "Engine",
    "run",
    "run_many",
    "register_scenario",
    "scenario_names",
    "build_scenario",
    # sharded campaigns
    "CampaignSpec",
    "CampaignStore",
    "run_campaign",
    "resume_campaign",
    "repeat_campaign",
    "campaign_status",
    # statistics
    "SamplingSpec",
    "RepeatSpec",
    "RateEstimate",
    "RepeatResult",
    "wilson_interval",
    "compare_artifacts",
    # streams
    "StreamSpec",
    "ArrivalSpec",
    "StreamFaultSpec",
    "StreamReport",
    "run_stream",
    "repeat_stream",
    # platform
    "PlatformSpec",
    "DeviceSpec",
    "PlacementSpec",
    "PlatformReport",
    "plan_placement",
    "run_platform",
    # observability
    "Telemetry",
]
