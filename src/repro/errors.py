"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Subclasses are deliberately fine-grained: the
simulator, the scheduler framework, the redundancy manager and the safety
model each have their own error type, which makes test assertions precise
and error messages actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or out-of-range parameters.

    Examples: a GPU with zero SMs, a kernel whose thread block exceeds the
    per-SM thread limit, a HALF partition that does not cover all SMs.
    """


class SchedulingError(ReproError):
    """A kernel scheduler produced an invalid decision.

    Raised, for instance, when a scheduler places a thread block on an SM
    outside its allowed mask, or admits a kernel that violates its own
    serialization rules.  These indicate bugs in scheduler implementations
    (or deliberately injected scheduler faults escaping their sandbox).
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state.

    Examples: time moving backwards, a thread block completing twice, or a
    deadlock in which undispatched work exists but no progress is possible.
    """


class CapacityError(ReproError):
    """A kernel can never fit on the configured GPU.

    Raised when a single thread block requires more threads, registers or
    shared memory than one SM provides, so no scheduler could ever place it.
    """


class RedundancyError(ReproError):
    """The redundant-execution protocol was violated.

    Examples: comparing outputs of kernels with different grids, requesting
    a redundancy degree below two, or collecting results before all copies
    completed.
    """


class SafetyViolation(ReproError):
    """An ISO 26262 requirement check failed.

    Raised by the safety model when, e.g., an ASIL decomposition is invalid,
    a diagnostic-coverage target is not met, or a fault was not handled
    within the fault-tolerant time interval (FTTI).
    """


class FaultInjectionError(ReproError):
    """A fault-injection campaign was configured inconsistently.

    Examples: injecting into a trace that does not contain the target SM,
    or classifying outcomes before the campaign ran.
    """


class CampaignError(ReproError):
    """Sharded campaign orchestration failed or was asked the impossible.

    Examples: resuming a store created by a different :class:`CampaignSpec`,
    a corrupt shard artifact whose digest does not match its payload, or
    requesting an aggregate report before every shard has completed.
    """


class StreamError(ReproError):
    """Stream execution or its online analytics were asked the impossible.

    Examples: a stream whose workload resolves to no kernels (no frame job
    to execute), reading a latency quantile before any frame completed, or
    feeding the windowed-rate fold completions that go backwards in time.
    """


class PlatformError(ReproError):
    """A vehicle-platform simulation was configured or placed impossibly.

    Examples: a placement policy that cannot fit a task stream on any
    device without exceeding its utilisation capacity (the message names
    the unplaceable task), a ``pinned`` placement whose pins do not cover
    every task, or a pin naming a device the platform does not have.
    """


class LintError(ReproError):
    """The determinism linter (:mod:`repro.lint`) was misused.

    Examples: an unknown rule ID passed to ``--rule``, a lint target
    that does not exist, or a ``repro-lint.toml`` line outside the
    accepted TOML subset.  Contract *violations* are not errors — they
    are the linter's report — so this type only covers misconfiguration
    of the linter itself.
    """


class ObsError(ReproError):
    """The observability layer (:mod:`repro.obs`) was misused or fed garbage.

    Examples: a telemetry line that is not a JSON object, an event of an
    unknown type, a sequence number that goes backwards inside one
    session, or a non-positive heartbeat interval.  Telemetry problems
    never surface as any other error type: the instrumented runners only
    ever *emit*, so a broken telemetry file can only be detected by the
    reader (``repro obs validate`` / ``repro obs report``).
    """


class StatsError(ReproError):
    """A statistical estimator or comparison was asked the impossible.

    Examples: a confidence level outside ``(0, 1)``, a Wilson interval on
    zero trials, a stratified estimator whose population weights name a
    stratum with no samples, or comparing two artifacts of different
    kinds (a campaign against a stream report).
    """


class RepeatBudgetError(StatsError):
    """A repeat-until-confidence run exhausted its budget unconverged.

    Raised by :meth:`repro.stats.repeater.RepeatResult.check` when the
    injection (or frame) budget cap was reached before the target CI
    half-width on the chosen metric was met.  The repeat result — and the
    partial aggregate report inside it — remain available on the
    exception's originating :class:`~repro.stats.repeater.RepeatResult`.
    """


class WorkerCountError(ConfigurationError, StreamError, ValueError):
    """A parallel executor was handed a non-positive worker count.

    Raised eagerly — before any process pool is created — by
    :meth:`repro.api.engine.Engine.run_many`,
    :func:`repro.streams.jobs.resolve_jobs` and
    :func:`repro.platform.runner.run_platform`.  Subclasses both the
    legacy per-subsystem types (:class:`ConfigurationError`,
    :class:`StreamError`) and :class:`ValueError`, so existing handlers
    keep working while plain ``except ValueError`` callers see the bad
    argument for what it is.
    """
