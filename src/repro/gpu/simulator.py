"""Coarse-grained discrete-event GPU timing simulator.

This module is the reproduction's substitute for GPGPU-Sim (see DESIGN.md,
Section 2).  It models execution at *thread-block* granularity with a fluid
(processor-sharing) timing model:

* every resident thread block holds SM resources (threads, registers,
  shared memory, a block slot) from dispatch to completion and never
  migrates — matching the paper's "each thread block is bound to a SM for
  its entire execution";
* a block's **compute** work drains at an equal share of its SM's issue
  throughput (co-resident blocks time-multiplex the SM);
* a block's **memory** traffic drains at an equal share of the GPU-wide
  DRAM bandwidth, overlapped with compute (latency hiding);
* a block completes when both its compute and memory work reach zero;
* kernels arrive through a serial host dispatch path: consecutive launches
  are separated by at least :attr:`GPUConfig.dispatch_latency` cycles —
  the natural staggering of redundant kernels noted in Section IV-A;
* launch-to-launch dependencies model in-stream ordering of multi-kernel
  applications.

The global kernel scheduler is pluggable (:mod:`repro.gpu.scheduler`); the
simulator asks it for admission, SM masks and per-block SM selection, and
*validates* every answer so that faulty/injected schedulers cannot corrupt
simulator invariants silently.

Incremental virtual-time core
-----------------------------

Rates change only at events (arrival, dimension completion, placement), so
the simulation advances event-to-event with exact piecewise-linear
progress integration; results are fully deterministic.

Because co-resident blocks share an SM's issue throughput *equally* (and
memory-active blocks share DRAM bandwidth equally), progress is tracked by
**virtual clocks** instead of per-block countdowns — classic fair-queuing:

* each SM carries a compute clock ``V_s`` = work drained per compute-active
  block since the run started; the global memory clock ``V_mem`` counts
  bytes drained per memory-active block;
* a block placed when the clock reads ``V`` with ``w`` units of work
  finishes that dimension exactly when the clock reaches ``V + w`` — a key
  that **never changes**, no matter how often the block's bandwidth share
  changes afterwards;
* upcoming finishes therefore live in min-heaps (one per SM for compute,
  one global for memory) that never need re-keying; an event advances the
  clocks (one multiply-add per active SM plus one for memory) and drains
  **every** key within ``_EPS`` of the new clock readings, so all
  same-virtual-time completions collapse into one batched event.

Raw-speed data layout
---------------------

The hot-loop state is array-oriented rather than object-oriented:

* **Flat thread-block slots** — a resident block is a reusable integer
  slot id indexing parallel lists (owning launch state, block index, SM,
  start time, per-dimension activity flags).  Heap entries are plain
  ``(finish_key, seq, slot)`` tuples; a free-list recycles slot ids so a
  run allocates O(peak residency) slots, not O(total blocks).
* **Indexed dispatch queue** — arrived, not-fully-dispatched launches
  live in a doubly-linked list over order indices (ascending submission
  order) with O(1) unlink, replacing the former sorted-list ``insort``
  re-queues and list rebuilds.
* **Parked eligibility classes** — a capacity-blocked launch is *parked*
  off the dispatch queue under its eligibility-class key (resource
  footprint + SM mask; the launch itself when kernel mixing is off).  The
  release log is the dirty flag: a parked class is re-screened only
  against SMs that released a block since it parked, and costs O(1) per
  placement call otherwise.  This replaces per-event candidate rescans of
  every blocked launch with one screen per blocked *class*.

Per-event cost is O(active SMs + log resident + blocked classes) instead
of the previous O(resident blocks + launches); placement bookkeeping is
likewise indexed (release-log capacity screen, reverse-dependency map,
per-SM per-instance residency counters) so no event rescans all blocks or
launch states.

:mod:`repro.gpu.reference` retains a scan-everything-per-event core with
the *identical* arithmetic; the randomized differential suite
(``tests/gpu/test_simulator_equivalence.py``) proves both produce
bit-identical traces, event counts and scheduler interactions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.occupancy import occupancy_report
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.trace import ExecutionTrace, KernelSpan, TBRecord

__all__ = ["GPUSimulator", "SimulationResult", "simulate"]

_EPS = 1e-9


@dataclass
class _SMState:
    """Mutable resource accounting and compute clock of one SM.

    Residency is tracked by counters (total and per launch instance) so the
    scheduler-view queries and the kernel-mixing rule are O(1); the heap
    holds ``(compute_finish, seq, slot)`` for every compute-active block,
    where ``slot`` indexes the simulator's flat thread-block arrays.
    """

    free_threads: int
    free_registers: int
    free_shared_memory: int
    free_blocks: int
    resident_total: int = 0
    resident_by_instance: Dict[int, int] = field(default_factory=dict)
    compute_active: int = 0
    virtual: float = 0.0
    heap: List[Tuple[float, int, int]] = field(default_factory=list)

    def fits(self, kernel: KernelDescriptor) -> bool:
        """Whether one more block of ``kernel`` fits right now."""
        return (
            self.free_blocks >= 1
            and self.free_threads >= kernel.threads_per_block
            and self.free_registers
            >= kernel.regs_per_thread * kernel.threads_per_block
            and self.free_shared_memory >= kernel.shared_mem_per_block
        )

    def take(self, kernel: KernelDescriptor) -> None:
        """Reserve resources for one block of ``kernel``."""
        self.free_blocks -= 1
        self.free_threads -= kernel.threads_per_block
        self.free_registers -= kernel.regs_per_thread * kernel.threads_per_block
        self.free_shared_memory -= kernel.shared_mem_per_block

    def release(self, kernel: KernelDescriptor) -> None:
        """Return resources of one completed block of ``kernel``."""
        self.free_blocks += 1
        self.free_threads += kernel.threads_per_block
        self.free_registers += kernel.regs_per_thread * kernel.threads_per_block
        self.free_shared_memory += kernel.shared_mem_per_block


@dataclass
class _LaunchState:
    """Mutable per-launch bookkeeping.

    ``kernel``, ``grid_blocks``, ``work`` and ``memory`` mirror immutable
    launch attributes as plain fields: the placement fast paths read them
    millions of times per run, and a field load is severalfold cheaper
    than a property call chaining through two attribute lookups.
    """

    launch: KernelLaunch
    kernel: KernelDescriptor
    remaining_deps: Set[int]
    order_index: int
    grid_blocks: int
    work: float  # float(kernel.work_per_block), cached
    memory: float  # float(kernel.bytes_per_block), cached
    arrival: Optional[float] = None  # known once deps resolved + dispatch slot
    started: bool = False
    first_dispatch: Optional[float] = None
    next_tb: int = 0
    resident_count: int = 0
    completed_tbs: int = 0
    completion: Optional[float] = None
    allowed: Tuple[int, ...] = ()  # scheduler mask, cached (sorted, deduped)
    allowed_set: frozenset = frozenset()
    # release-log position at which the last candidate scan found nothing;
    # None when the launch is not known to be capacity-blocked
    blocked_at_log: Optional[int] = None
    # (resource footprint, mask) eligibility class shared with identical
    # launches; None when kernel mixing is off (eligibility then depends
    # on the launch instance itself)
    screen_key: Optional[Tuple] = None
    # parking key: ``screen_key`` when kernel mixing is on, else the
    # launch's own order index (a solo one-member class)
    park_key: object = None

    @property
    def all_dispatched(self) -> bool:
        """True when every block has been placed on some SM."""
        return self.next_tb >= self.grid_blocks

    @property
    def complete(self) -> bool:
        """True when every block has finished."""
        return self.completion is not None


class _ParkedGroup:
    """Capacity-blocked launches of one eligibility class, parked off the
    dispatch queue.

    ``blocked_at_log`` is the release-log length at the class's oldest
    un-rescreened block point — the dirty flag: while the log has not
    grown past it, no SM can have become eligible and the whole class
    costs O(1) per placement call.  ``members`` is a min-heap of parked
    order indices, so the earliest-submitted member is always unparked
    first (submission-order placement is part of the bit-identity
    contract with the reference core).
    """

    __slots__ = ("blocked_at_log", "members")

    def __init__(self, blocked_at_log: int) -> None:
        self.blocked_at_log = blocked_at_log
        self.members: List[int] = []


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated workload.

    Attributes:
        trace: full execution trace (thread-block records, kernel spans).
        makespan: completion time of the last thread block (cycles).
        scheduler_name: ``describe()`` of the policy used.
        gpu: the simulated GPU configuration.
        events: number of discrete events processed (diagnostics).
    """

    trace: ExecutionTrace
    makespan: float
    scheduler_name: str
    gpu: GPUConfig
    events: int

    def kernel_exec_cycles(self, instance_id: int) -> float:
        """Pure execution time (first dispatch to completion) of a launch."""
        return self.trace.span(instance_id).exec_time

    def total_kernel_cycles(self) -> float:
        """Sum of per-launch execution times (contention-inflated)."""
        return sum(s.exec_time for s in self.trace.spans)


class GPUSimulator:
    """Discrete-event GPU simulator with a pluggable kernel scheduler.

    A simulator instance is reusable: every :meth:`run` call resets all
    mutable state (including the scheduler, via
    :meth:`KernelScheduler.reset`).

    Args:
        gpu: hardware configuration.
        scheduler: global kernel scheduling policy.
        validate: when True (default) run trace consistency checks at the
            end of each simulation; costs a few percent of run time.
    """

    def __init__(self, gpu: GPUConfig, scheduler: KernelScheduler,
                 *, validate: bool = True) -> None:
        self._gpu = gpu
        self._scheduler = scheduler
        self._validate = validate
        # run-scoped state, initialised in run()
        self._now = 0.0
        self._sms: List[_SMState] = []
        self._states: Dict[int, _LaunchState] = {}
        self._order: List[int] = []  # instance ids in submission order
        self._order_index: Dict[int, int] = {}
        self._dependents: Dict[int, List[int]] = {}
        self._last_dispatch_time: Optional[float] = None
        self._trace: Optional[ExecutionTrace] = None
        self._events = 0
        # config scalars, cached at reset (hot-loop reads)
        self._throughput = 1.0
        self._dram_bw = 1.0
        self._mixing = True
        # virtual-time engine state
        self._mem_virtual = 0.0
        self._mem_active = 0
        self._mem_heap: List[Tuple[float, int, int]] = []
        self._resident_total = 0
        self._seq = 0
        self._zombies: List[Tuple[int, int]] = []  # (seq, slot)
        # flat thread-block slot arrays (parallel, indexed by slot id)
        self._tb_state: List[Optional[_LaunchState]] = []
        self._tb_index: List[int] = []
        self._tb_sm: List[int] = []
        self._tb_start: List[float] = []
        self._tb_cact: List[bool] = []  # compute dimension still draining
        self._tb_mact: List[bool] = []  # memory dimension still draining
        self._tb_free: List[int] = []  # recycled slot ids
        # indexed launch bookkeeping
        self._arrival_heap: List[Tuple[float, int]] = []  # (arrival, order idx)
        # dispatch queue: doubly-linked list over order indices, ascending;
        # index n is the sentinel, -1 marks "not linked"
        self._ud_next: List[int] = []
        self._ud_prev: List[int] = []
        self._ud_sent = 0
        self._parked: Dict[object, _ParkedGroup] = {}
        self._first_incomplete = 0
        self._incomplete = 0
        self._release_log: List[int] = []  # SM id per completed block

    # ------------------------------------------------------------------
    # SchedulerView protocol
    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GPUConfig:
        """Simulated GPU configuration (SchedulerView)."""
        return self._gpu

    def resident_blocks(self, sm: int) -> int:
        """Resident block count of one SM (SchedulerView)."""
        return self._sms[sm].resident_total

    def resident_blocks_of(self, sm: int, instance_id: int) -> int:
        """Resident blocks of a launch on one SM (SchedulerView, O(1))."""
        return self._sms[sm].resident_by_instance.get(instance_id, 0)

    def is_idle(self) -> bool:
        """True when no block is resident anywhere (SchedulerView)."""
        return self._resident_total == 0

    def incomplete_before(self, launch: KernelLaunch) -> bool:
        """True when a launch submitted earlier has not completed
        (SchedulerView).  Amortised O(1) via a first-incomplete pointer."""
        return self._advance_first_incomplete() < self._order_index[
            launch.instance_id
        ]

    def now(self) -> float:
        """Current simulation time in cycles (SchedulerView)."""
        return self._now

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(self, launches: Sequence[KernelLaunch]) -> SimulationResult:
        """Simulate a workload to completion.

        Args:
            launches: kernel launches in host submission order.  Instance
                ids must be unique; dependencies must reference ids within
                the workload and be acyclic (submission order is assumed to
                be a valid topological order, as in a real command stream).

        Returns:
            A :class:`SimulationResult` with the full execution trace.

        Raises:
            ConfigurationError: malformed workload (duplicate ids, forward
                dependencies).
            CapacityError: some kernel can never fit on its allowed SMs.
            SimulationError: internal inconsistency or scheduler deadlock.
        """
        self._reset(launches)
        self._precheck(launches)

        while True:
            self._try_placement()
            next_time = self._next_event_time()
            if next_time is None:
                break
            if next_time < self._now - _EPS:
                raise SimulationError(
                    f"time would move backwards: {next_time} < {self._now}"
                )
            self._advance(max(next_time, self._now))
            self._events += 1

        self._check_all_complete()
        trace = self._trace
        assert trace is not None
        if self._validate:
            trace.validate()
        return SimulationResult(
            trace=trace,
            makespan=trace.makespan,
            scheduler_name=self._scheduler.describe(),
            gpu=self._gpu,
            events=self._events,
        )

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _reset(self, launches: Sequence[KernelLaunch]) -> None:
        if not launches:
            raise ConfigurationError("workload must contain >= 1 launch")
        ids = [l.instance_id for l in launches]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate instance ids in workload")
        id_set = set(ids)
        seen: Set[int] = set()
        for launch in launches:
            for dep in launch.depends_on:
                if dep not in id_set:
                    raise ConfigurationError(
                        f"launch {launch.instance_id} depends on unknown "
                        f"instance {dep}"
                    )
                if dep not in seen:
                    raise ConfigurationError(
                        f"launch {launch.instance_id} depends on {dep}, "
                        "which is submitted later (streams submit in order)"
                    )
            seen.add(launch.instance_id)

        self._now = 0.0
        self._events = 0
        self._last_dispatch_time = None
        self._throughput = self._gpu.sm.issue_throughput
        self._dram_bw = self._gpu.dram_bandwidth
        self._mixing = self._gpu.allow_kernel_mixing
        sm_cfg = self._gpu.sm
        self._sms = [
            _SMState(
                free_threads=sm_cfg.max_threads,
                free_registers=sm_cfg.registers,
                free_shared_memory=sm_cfg.shared_memory,
                free_blocks=sm_cfg.max_blocks,
            )
            for _ in self._gpu.sm_ids
        ]
        self._order = list(ids)
        self._order_index = {iid: i for i, iid in enumerate(ids)}
        self._states = {
            l.instance_id: _LaunchState(
                launch=l,
                kernel=l.kernel,
                remaining_deps=set(l.depends_on),
                order_index=self._order_index[l.instance_id],
                grid_blocks=l.kernel.grid_blocks,
                work=float(l.kernel.work_per_block),
                memory=float(l.kernel.bytes_per_block),
            )
            for l in launches
        }
        self._dependents = {}
        for launch in launches:  # submission order => dependents in order
            for dep in launch.depends_on:
                self._dependents.setdefault(dep, []).append(launch.instance_id)
        self._mem_virtual = 0.0
        self._mem_active = 0
        self._mem_heap = []
        self._resident_total = 0
        self._seq = 0
        self._zombies = []
        self._tb_state = []
        self._tb_index = []
        self._tb_sm = []
        self._tb_start = []
        self._tb_cact = []
        self._tb_mact = []
        self._tb_free = []
        self._arrival_heap = []
        n = len(ids)
        self._ud_next = [-1] * (n + 1)
        self._ud_prev = [-1] * (n + 1)
        self._ud_next[n] = self._ud_prev[n] = n
        self._ud_sent = n
        self._parked = {}
        self._first_incomplete = 0
        self._incomplete = n
        self._release_log = []
        self._trace = ExecutionTrace(self._gpu.num_sms)
        self._scheduler.reset(self._gpu)
        # resolve arrivals of dependency-free launches (in submission order,
        # respecting the serial dispatch path)
        for iid in self._order:
            st = self._states[iid]
            if not st.remaining_deps:
                self._assign_arrival(st, ready_at=0.0)

    def _precheck(self, launches: Sequence[KernelLaunch]) -> None:
        """Fail fast when a kernel cannot fit on its allowed SMs.

        Also caches each launch's (validated) scheduler SM mask: the
        :meth:`KernelScheduler.allowed_sms` contract is a static per-launch
        property ("SMs this launch's thread blocks may *ever* use"), so it
        is queried once per launch per run instead of once per placement.
        """
        for launch in launches:
            occupancy_report(launch.kernel, self._gpu.sm)  # raises CapacityError
            allowed = self._scheduler.allowed_sms(launch)
            if not allowed:
                raise CapacityError(
                    f"scheduler {self._scheduler.name!r} allows no SMs for "
                    f"launch {launch.instance_id} ({launch.kernel.name})"
                )
            for sm in allowed:
                if not (0 <= sm < self._gpu.num_sms):
                    raise SchedulingError(
                        f"scheduler allowed invalid SM {sm} for launch "
                        f"{launch.instance_id}"
                    )
            st = self._states[launch.instance_id]
            st.allowed = tuple(sorted(set(allowed)))
            st.allowed_set = frozenset(st.allowed)
            if self._mixing:
                kernel = launch.kernel
                st.screen_key = (
                    kernel.threads_per_block,
                    kernel.regs_per_thread,
                    kernel.shared_mem_per_block,
                    st.allowed,
                )
                st.park_key = st.screen_key
            else:
                st.park_key = st.order_index

    def _assign_arrival(self, st: _LaunchState, ready_at: float) -> None:
        """Compute a launch's arrival time through the serial dispatch path."""
        ready = ready_at + st.launch.arrival_offset
        if self._last_dispatch_time is None:
            arrival = ready
        else:
            arrival = max(ready, self._last_dispatch_time + self._gpu.dispatch_latency)
        st.arrival = arrival
        self._last_dispatch_time = arrival
        heapq.heappush(self._arrival_heap, (arrival, st.order_index))

    # ------------------------------------------------------------------
    # dispatch queue (doubly-linked list over order indices)
    # ------------------------------------------------------------------
    def _ud_insert_sorted(self, idx: int) -> None:
        """Link ``idx`` into the dispatch queue at its sorted position.

        Walks backwards from the tail: insertions are clustered near the
        end (arrivals are near-monotone in submission order; unparked
        launches re-enter close to their neighbours), so the walk is
        near-O(1) in practice.
        """
        nxt, prv = self._ud_next, self._ud_prev
        sent = self._ud_sent
        j = prv[sent]
        while j != sent and j > idx:
            j = prv[j]
        k = nxt[j]
        nxt[j] = idx
        prv[idx] = j
        nxt[idx] = k
        prv[k] = idx

    def _ud_unlink(self, idx: int) -> None:
        """Unlink ``idx`` from the dispatch queue (O(1))."""
        nxt, prv = self._ud_next, self._ud_prev
        p, k = prv[idx], nxt[idx]
        nxt[p] = k
        prv[k] = p
        nxt[idx] = -1
        prv[idx] = -1

    # ------------------------------------------------------------------
    # parked eligibility classes
    # ------------------------------------------------------------------
    def _park(self, st: _LaunchState, idx: int, log_len: int) -> None:
        """Move a capacity-blocked launch from the queue to its class."""
        self._ud_unlink(idx)
        group = self._parked.get(st.park_key)
        if group is None:
            self._parked[st.park_key] = group = _ParkedGroup(log_len)
        heapq.heappush(group.members, idx)

    def _unpark_eligible(self, log_len: int) -> None:
        """Re-screen parked classes against SMs released since they parked.

        A class whose screen finds an eligible SM gets its earliest-
        submitted member linked back into the dispatch queue; the member's
        own ``blocked_at_log`` then drives the (narrower) released-SM
        rescan at its queue position, preserving the exact candidate lists
        and ``select_sm`` sequence of the reference core.  A class whose
        screen finds nothing updates its dirty flag and stays O(1) until
        the release log grows again.
        """
        log = self._release_log
        states, order = self._states, self._order
        for key in list(self._parked):
            group = self._parked[key]
            blocked_at = group.blocked_at_log
            if blocked_at >= log_len:
                continue  # nothing released since the last screen
            rep = states[order[group.members[0]]]
            allowed = rep.allowed_set
            eligible = False
            for sm in set(log[blocked_at:]):
                if sm in allowed and self._sm_eligible(sm, rep):
                    eligible = True
                    break
            if eligible:
                head = heapq.heappop(group.members)
                if not group.members:
                    del self._parked[key]
                self._ud_insert_sorted(head)
            else:
                group.blocked_at_log = log_len

    def _feed_from_group(self, st: _LaunchState) -> None:
        """Offer the next parked member of ``st``'s class to this pass.

        Called when a launch of the class left the queue without proving
        the class blocked (fully dispatched, or the scheduler declined
        placement): the reference core would scan the class's next
        launch in the same pass, so it must re-enter the queue here.
        """
        group = self._parked.get(st.park_key)
        if group is None:
            return
        member = heapq.heappop(group.members)
        if not group.members:
            del self._parked[st.park_key]
        self._ud_insert_sorted(member)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _advance_first_incomplete(self) -> int:
        """Index of the earliest-submitted incomplete launch (monotone)."""
        order, states = self._order, self._states
        i = self._first_incomplete
        n = len(order)
        while i < n and states[order[i]].completion is not None:
            i += 1
        self._first_incomplete = i
        return i

    def _sm_eligible(self, sm: int, st: _LaunchState) -> bool:
        """Capacity + kernel-mixing screen for one SM (O(1))."""
        state = self._sms[sm]
        if not state.fits(st.kernel):
            return False
        if not self._mixing:
            iid = st.launch.instance_id
            others = state.resident_total - state.resident_by_instance.get(iid, 0)
            if others:
                return False
        return True

    def _try_placement(self) -> None:
        """Dispatch thread blocks of arrived launches until no progress."""
        # materialise arrivals that are due at the current time
        heap = self._arrival_heap
        due = self._now + _EPS
        while heap and heap[0][0] <= due:
            self._ud_insert_sorted(heapq.heappop(heap)[1])
        if self._scheduler.strict_fifo:
            self._try_placement_fifo()
        else:
            self._try_placement_concurrent()

    def _try_placement_fifo(self) -> None:
        """Strict-FIFO placement: only the earliest incomplete launch may
        make progress ("no further kernel can be executed in the GPU until
        the second one also finishes")."""
        idx = self._advance_first_incomplete()
        if idx >= len(self._order):
            return
        st = self._states[self._order[idx]]
        if st.arrival is None or st.arrival > self._now + _EPS:
            return
        progressed = True
        while progressed:
            progressed = False
            if not st.all_dispatched:
                if not st.started:
                    if not self._scheduler.may_start(st.launch, self):
                        break
                    self._scheduler.on_kernel_start(st.launch, self)
                    st.started = True
                progressed = self._dispatch_blocks(st)
        if st.all_dispatched and self._ud_next[st.order_index] != -1:
            self._ud_unlink(st.order_index)

    def _try_placement_concurrent(self) -> None:
        """Concurrent placement over all arrived, not-fully-dispatched
        launches, in submission order, repeated until no progress.

        No block completes during placement, so ``len(release_log)`` is
        constant here and a launch (or eligibility class — see
        ``park_key``) screened as capacity-blocked stays blocked for the
        rest of the call; those launches are parked off the queue and the
        pass scan touches only launches that can still make progress.
        """
        log_len = len(self._release_log)
        if self._parked:
            self._unpark_eligible(log_len)
        blocked_keys: Set[Tuple] = set()
        states, order = self._states, self._order
        nxt, prv = self._ud_next, self._ud_prev
        sent = self._ud_sent
        scheduler = self._scheduler
        progressed = True
        while progressed:
            progressed = False
            cur = nxt[sent]
            while cur != sent:
                prev = prv[cur]
                st = states[order[cur]]
                if not st.started:
                    if not scheduler.may_start(st.launch, self):
                        cur = nxt[cur]
                        continue
                    scheduler.on_kernel_start(st.launch, self)
                    st.started = True
                if st.blocked_at_log == log_len:
                    # blocked earlier in this call; park until a release
                    self._park(st, cur, log_len)
                    cur = nxt[prev]
                    continue
                key = st.screen_key
                if key is not None and key in blocked_keys:
                    # an identical (footprint, mask) launch already found
                    # zero eligible SMs this round; capacity only shrank
                    st.blocked_at_log = log_len
                    self._park(st, cur, log_len)
                    cur = nxt[prev]
                    continue
                if self._dispatch_blocks(st):
                    progressed = True
                if st.next_tb >= st.grid_blocks:
                    self._ud_unlink(cur)
                    self._feed_from_group(st)
                    cur = nxt[prev]
                elif st.blocked_at_log == log_len:
                    if key is not None:
                        blocked_keys.add(key)
                    self._park(st, cur, log_len)
                    cur = nxt[prev]
                else:
                    # scheduler declined while capacity remains: parked
                    # classmates must still get their scan this pass
                    self._feed_from_group(st)
                    cur = nxt[cur]

    def _dispatch_blocks(self, st: _LaunchState) -> bool:
        """Place as many blocks of one launch as capacity permits.

        Candidate lists are maintained incrementally: placements only
        *consume* capacity, so within one dispatch round only the chosen
        SM needs re-screening.  A launch whose scan found **zero**
        candidates is blocked until some SM releases a block; the release
        log pins down exactly which SMs could have become eligible since,
        so the retry scan touches only those instead of the full mask.
        """
        log = self._release_log
        if st.blocked_at_log is not None:
            if st.blocked_at_log == len(log):
                return False  # nothing released since the failed scan
            released = set(log[st.blocked_at_log:])
            st.blocked_at_log = None
            candidates = [
                sm for sm in sorted(released & st.allowed_set)
                if self._sm_eligible(sm, st)
            ]
        else:
            candidates = [
                sm for sm in st.allowed if self._sm_eligible(sm, st)
            ]
        if not candidates:
            st.blocked_at_log = len(log)
            return False
        placed_any = False
        candidate_set = set(candidates)
        while st.next_tb < st.grid_blocks:
            sm = self._scheduler.select_sm(st.launch, candidates, self)
            if sm is None:
                break
            if sm not in candidate_set:
                raise SchedulingError(
                    f"scheduler {self._scheduler.name!r} selected SM {sm} "
                    f"outside candidates {candidates} for launch "
                    f"{st.launch.instance_id}"
                )
            self._place_tb(st, sm)
            placed_any = True
            if not self._sm_eligible(sm, st):
                candidates.remove(sm)
                candidate_set.discard(sm)
                if not candidates:
                    if st.next_tb < st.grid_blocks:
                        st.blocked_at_log = len(log)
                    break
        return placed_any

    def _place_tb(self, st: _LaunchState, sm: int) -> None:
        """Make one block of ``st`` resident on ``sm`` (flat-slot alloc)."""
        kernel = st.kernel
        sm_state = self._sms[sm]
        sm_state.take(kernel)
        compute = st.work
        memory = st.memory
        seq = self._seq
        self._seq = seq + 1
        cact = compute > _EPS
        mact = memory > _EPS
        free = self._tb_free
        if free:
            slot = free.pop()
            self._tb_state[slot] = st
            self._tb_index[slot] = st.next_tb
            self._tb_sm[slot] = sm
            self._tb_start[slot] = self._now
            self._tb_cact[slot] = cact
            self._tb_mact[slot] = mact
        else:
            slot = len(self._tb_state)
            self._tb_state.append(st)
            self._tb_index.append(st.next_tb)
            self._tb_sm.append(sm)
            self._tb_start.append(self._now)
            self._tb_cact.append(cact)
            self._tb_mact.append(mact)
        st.next_tb += 1
        st.resident_count += 1
        if st.first_dispatch is None:
            st.first_dispatch = self._now
        iid = st.launch.instance_id
        sm_state.resident_total += 1
        by_instance = sm_state.resident_by_instance
        by_instance[iid] = by_instance.get(iid, 0) + 1
        self._resident_total += 1
        if cact:
            sm_state.compute_active += 1
            heapq.heappush(sm_state.heap, (sm_state.virtual + compute, seq, slot))
        if mact:
            self._mem_active += 1
            heapq.heappush(self._mem_heap, (self._mem_virtual + memory, seq, slot))
        if not cact and not mact:
            # degenerate (sub-epsilon) work in both dimensions: completes
            # at the next event, like any block whose work just drained
            self._zombies.append((seq, slot))

    # ------------------------------------------------------------------
    # fluid timing (virtual clocks)
    # ------------------------------------------------------------------
    def _next_event_time(self) -> Optional[float]:
        """Earliest upcoming event: a work-dimension completion or an
        arrival.  ``None`` when the workload is fully drained.

        O(active SMs + admission-blocked launches): each dimension's next
        completion is its heap top mapped through the current clock rate.
        """
        candidate: Optional[float] = None
        now = self._now

        if self._mem_active:
            mem_rate = self._dram_bw / self._mem_active
            candidate = (
                now + (self._mem_heap[0][0] - self._mem_virtual) / mem_rate
            )
        throughput = self._throughput
        for sm_state in self._sms:
            if sm_state.compute_active:
                share = throughput / sm_state.compute_active
                t = now + (sm_state.heap[0][0] - sm_state.virtual) / share
                if candidate is None or t < candidate:
                    candidate = t

        future_arrival: Optional[float] = None
        if self._arrival_heap:
            # every remaining entry is strictly in the future (due arrivals
            # were materialised by _try_placement at this timestamp)
            future_arrival = self._arrival_heap[0][0]
        states, order, nxt = self._states, self._order, self._ud_next
        sent = self._ud_sent
        cur = nxt[sent]
        while cur != sent:
            st = states[order[cur]]
            if not st.started:
                # arrived but admission-blocked: time-gated policies
                # (e.g. enforced stagger) expose their retry time
                retry = self._scheduler.earliest_start(st.launch, self)
                if retry is not None and retry > now + _EPS:
                    if future_arrival is None or retry < future_arrival:
                        future_arrival = retry
            cur = nxt[cur]
        if future_arrival is not None:
            if candidate is None or future_arrival < candidate:
                candidate = future_arrival

        if candidate is None and self._incomplete:
            self._diagnose_deadlock()
        return candidate

    def _diagnose_deadlock(self) -> None:
        """Raise a descriptive error when work exists but nothing can run."""
        stuck = [
            f"{st.launch.instance_id}({st.kernel.name}: "
            f"dispatched {st.next_tb}/{st.kernel.grid_blocks}, "
            f"resident {st.resident_count}, arrival {st.arrival})"
            for st in self._states.values()
            if not st.complete
        ]
        raise SimulationError(
            "scheduler deadlock: no resident work, no future arrivals, but "
            "incomplete launches remain: " + "; ".join(sorted(stuck))
        )

    def _advance(self, t_next: float) -> None:
        """Advance the virtual clocks to ``t_next`` and drain every finish
        key within ``_EPS`` — all same-virtual-time completions batch into
        this one event."""
        dt = t_next - self._now
        if dt > 0:
            if self._mem_active:
                self._mem_virtual += (
                    self._dram_bw / self._mem_active
                ) * dt
            throughput = self._throughput
            for sm_state in self._sms:
                if sm_state.compute_active:
                    sm_state.virtual += (
                        throughput / sm_state.compute_active
                    ) * dt
        self._now = t_next

        finished = self._zombies
        self._zombies = []
        cact, mact = self._tb_cact, self._tb_mact
        heap = self._mem_heap
        v = self._mem_virtual
        while heap and heap[0][0] - v <= _EPS:
            _, seq, slot = heapq.heappop(heap)
            mact[slot] = False
            self._mem_active -= 1
            if not cact[slot]:
                finished.append((seq, slot))
        for sm_state in self._sms:
            heap = sm_state.heap
            v = sm_state.virtual
            while heap and heap[0][0] - v <= _EPS:
                _, seq, slot = heapq.heappop(heap)
                cact[slot] = False
                sm_state.compute_active -= 1
                if not mact[slot]:
                    finished.append((seq, slot))
        if finished:
            finished.sort()  # (seq, slot): dispatch order
            for _, slot in finished:
                self._complete_tb(slot)

    def _complete_tb(self, slot: int) -> None:
        """Retire one finished block: release resources, log, record."""
        st = self._tb_state[slot]
        assert st is not None
        launch = st.launch
        iid = launch.instance_id
        sm = self._tb_sm[slot]
        sm_state = self._sms[sm]
        sm_state.release(st.kernel)
        sm_state.resident_total -= 1
        remaining = sm_state.resident_by_instance[iid] - 1
        if remaining:
            sm_state.resident_by_instance[iid] = remaining
        else:
            del sm_state.resident_by_instance[iid]
        self._resident_total -= 1
        self._release_log.append(sm)
        st.resident_count -= 1
        st.completed_tbs += 1
        assert self._trace is not None
        self._trace.add_tb(
            TBRecord(
                instance_id=iid,
                logical_id=launch.logical_id or 0,
                copy_id=launch.copy_id,
                tb_index=self._tb_index[slot],
                sm=sm,
                start=self._tb_start[slot],
                end=self._now,
                tag=launch.tag,
            )
        )
        self._tb_state[slot] = None  # drop the reference; recycle the slot
        self._tb_free.append(slot)
        if st.next_tb >= st.grid_blocks and st.resident_count == 0:
            self._complete_launch(st)

    def _complete_launch(self, st: _LaunchState) -> None:
        """Close out a fully-finished launch and wake its dependents."""
        st.completion = self._now
        assert st.first_dispatch is not None and st.arrival is not None
        assert self._trace is not None
        self._trace.add_span(
            KernelSpan(
                instance_id=st.launch.instance_id,
                logical_id=st.launch.logical_id or 0,
                copy_id=st.launch.copy_id,
                kernel_name=st.kernel.name,
                arrival=st.arrival,
                first_dispatch=st.first_dispatch,
                completion=st.completion,
                tag=st.launch.tag,
            )
        )
        self._incomplete -= 1
        self._scheduler.on_kernel_complete(st.launch, self)
        # resolve dependents via the reverse-dependency map (submission
        # order within the map matches the order the old full scan used)
        for iid in self._dependents.get(st.launch.instance_id, ()):
            dep_st = self._states[iid]
            dep_st.remaining_deps.discard(st.launch.instance_id)
            if not dep_st.remaining_deps and dep_st.arrival is None:
                self._assign_arrival(dep_st, ready_at=self._now)

    def _check_all_complete(self) -> None:
        """Raise when the event loop drained with launches unfinished."""
        leftovers = [
            iid for iid, st in self._states.items() if not st.complete
        ]
        if leftovers:
            raise SimulationError(
                f"simulation ended with incomplete launches: {sorted(leftovers)}"
            )


def simulate(gpu: GPUConfig, scheduler: KernelScheduler,
             launches: Sequence[KernelLaunch], *,
             validate: bool = True) -> SimulationResult:
    """Convenience one-shot simulation wrapper.

    Equivalent to ``GPUSimulator(gpu, scheduler, validate=validate)
    .run(launches)``.
    """
    return GPUSimulator(gpu, scheduler, validate=validate).run(launches)
