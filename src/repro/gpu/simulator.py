"""Coarse-grained discrete-event GPU timing simulator.

This module is the reproduction's substitute for GPGPU-Sim (see DESIGN.md,
Section 2).  It models execution at *thread-block* granularity with a fluid
(processor-sharing) timing model:

* every resident thread block holds SM resources (threads, registers,
  shared memory, a block slot) from dispatch to completion and never
  migrates — matching the paper's "each thread block is bound to a SM for
  its entire execution";
* a block's **compute** work drains at an equal share of its SM's issue
  throughput (co-resident blocks time-multiplex the SM);
* a block's **memory** traffic drains at an equal share of the GPU-wide
  DRAM bandwidth, overlapped with compute (latency hiding);
* a block completes when both its compute and memory work reach zero;
* kernels arrive through a serial host dispatch path: consecutive launches
  are separated by at least :attr:`GPUConfig.dispatch_latency` cycles —
  the natural staggering of redundant kernels noted in Section IV-A;
* launch-to-launch dependencies model in-stream ordering of multi-kernel
  applications.

The global kernel scheduler is pluggable (:mod:`repro.gpu.scheduler`); the
simulator asks it for admission, SM masks and per-block SM selection, and
*validates* every answer so that faulty/injected schedulers cannot corrupt
simulator invariants silently.

Rates change only at events (arrival, dimension completion, placement), so
the simulation advances event-to-event with exact piecewise-linear
progress integration; results are fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.occupancy import occupancy_report
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.trace import ExecutionTrace, KernelSpan, TBRecord

__all__ = ["GPUSimulator", "SimulationResult", "simulate"]

_EPS = 1e-9


@dataclass
class _ResidentTB:
    """Mutable state of one thread block resident on an SM."""

    launch: KernelLaunch
    tb_index: int
    sm: int
    start: float
    compute_left: float
    memory_left: float
    compute_rate: float = 0.0
    memory_rate: float = 0.0

    @property
    def done(self) -> bool:
        """True when both work dimensions are exhausted."""
        return self.compute_left <= _EPS and self.memory_left <= _EPS

    @property
    def key(self) -> Tuple[int, int]:
        """Unique identity of the block within a run."""
        return (self.launch.instance_id, self.tb_index)


@dataclass
class _SMState:
    """Mutable resource accounting of one SM.

    Resident blocks are keyed by ``(instance_id, tb_index)`` so completion
    removes in O(1); insertion order (= dispatch order) is preserved, which
    keeps event processing deterministic.
    """

    free_threads: int
    free_registers: int
    free_shared_memory: int
    free_blocks: int
    resident: Dict[Tuple[int, int], _ResidentTB] = field(default_factory=dict)

    def fits(self, kernel: KernelDescriptor) -> bool:
        """Whether one more block of ``kernel`` fits right now."""
        return (
            self.free_blocks >= 1
            and self.free_threads >= kernel.threads_per_block
            and self.free_registers
            >= kernel.regs_per_thread * kernel.threads_per_block
            and self.free_shared_memory >= kernel.shared_mem_per_block
        )

    def take(self, kernel: KernelDescriptor) -> None:
        """Reserve resources for one block of ``kernel``."""
        self.free_blocks -= 1
        self.free_threads -= kernel.threads_per_block
        self.free_registers -= kernel.regs_per_thread * kernel.threads_per_block
        self.free_shared_memory -= kernel.shared_mem_per_block

    def release(self, kernel: KernelDescriptor) -> None:
        """Return resources of one completed block of ``kernel``."""
        self.free_blocks += 1
        self.free_threads += kernel.threads_per_block
        self.free_registers += kernel.regs_per_thread * kernel.threads_per_block
        self.free_shared_memory += kernel.shared_mem_per_block


@dataclass
class _LaunchState:
    """Mutable per-launch bookkeeping."""

    launch: KernelLaunch
    remaining_deps: Set[int]
    arrival: Optional[float] = None  # known once deps resolved + dispatch slot
    started: bool = False
    first_dispatch: Optional[float] = None
    next_tb: int = 0
    resident_count: int = 0
    completed_tbs: int = 0
    completion: Optional[float] = None

    @property
    def kernel(self) -> KernelDescriptor:
        """Static descriptor of the launch."""
        return self.launch.kernel

    @property
    def all_dispatched(self) -> bool:
        """True when every block has been placed on some SM."""
        return self.next_tb >= self.kernel.grid_blocks

    @property
    def complete(self) -> bool:
        """True when every block has finished."""
        return self.completion is not None


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated workload.

    Attributes:
        trace: full execution trace (thread-block records, kernel spans).
        makespan: completion time of the last thread block (cycles).
        scheduler_name: ``describe()`` of the policy used.
        gpu: the simulated GPU configuration.
        events: number of discrete events processed (diagnostics).
    """

    trace: ExecutionTrace
    makespan: float
    scheduler_name: str
    gpu: GPUConfig
    events: int

    def kernel_exec_cycles(self, instance_id: int) -> float:
        """Pure execution time (first dispatch to completion) of a launch."""
        return self.trace.span(instance_id).exec_time

    def total_kernel_cycles(self) -> float:
        """Sum of per-launch execution times (contention-inflated)."""
        return sum(s.exec_time for s in self.trace.spans)


class GPUSimulator:
    """Discrete-event GPU simulator with a pluggable kernel scheduler.

    A simulator instance is reusable: every :meth:`run` call resets all
    mutable state (including the scheduler, via
    :meth:`KernelScheduler.reset`).

    Args:
        gpu: hardware configuration.
        scheduler: global kernel scheduling policy.
        validate: when True (default) run trace consistency checks at the
            end of each simulation; costs a few percent of run time.
    """

    def __init__(self, gpu: GPUConfig, scheduler: KernelScheduler,
                 *, validate: bool = True) -> None:
        self._gpu = gpu
        self._scheduler = scheduler
        self._validate = validate
        # run-scoped state, initialised in run()
        self._now = 0.0
        self._sms: List[_SMState] = []
        self._states: Dict[int, _LaunchState] = {}
        self._order: List[int] = []  # instance ids in submission order
        self._resident: Dict[Tuple[int, int], _ResidentTB] = {}
        self._last_dispatch_time: Optional[float] = None
        self._trace: Optional[ExecutionTrace] = None
        self._events = 0

    # ------------------------------------------------------------------
    # SchedulerView protocol
    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GPUConfig:
        """Simulated GPU configuration (SchedulerView)."""
        return self._gpu

    def resident_blocks(self, sm: int) -> int:
        """Resident block count of one SM (SchedulerView)."""
        return len(self._sms[sm].resident)

    def resident_blocks_of(self, sm: int, instance_id: int) -> int:
        """Resident blocks of a launch on one SM (SchedulerView)."""
        return sum(
            1
            for tb in self._sms[sm].resident.values()
            if tb.launch.instance_id == instance_id
        )

    def is_idle(self) -> bool:
        """True when no block is resident anywhere (SchedulerView)."""
        return not self._resident

    def incomplete_before(self, launch: KernelLaunch) -> bool:
        """True when a launch submitted earlier has not completed
        (SchedulerView)."""
        for iid in self._order:
            if iid == launch.instance_id:
                return False
            if not self._states[iid].complete:
                return True
        return False

    def now(self) -> float:
        """Current simulation time in cycles (SchedulerView)."""
        return self._now

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(self, launches: Sequence[KernelLaunch]) -> SimulationResult:
        """Simulate a workload to completion.

        Args:
            launches: kernel launches in host submission order.  Instance
                ids must be unique; dependencies must reference ids within
                the workload and be acyclic (submission order is assumed to
                be a valid topological order, as in a real command stream).

        Returns:
            A :class:`SimulationResult` with the full execution trace.

        Raises:
            ConfigurationError: malformed workload (duplicate ids, forward
                dependencies).
            CapacityError: some kernel can never fit on its allowed SMs.
            SimulationError: internal inconsistency or scheduler deadlock.
        """
        self._reset(launches)
        self._precheck(launches)

        while True:
            self._try_placement()
            next_time = self._next_event_time()
            if next_time is None:
                break
            if next_time < self._now - _EPS:
                raise SimulationError(
                    f"time would move backwards: {next_time} < {self._now}"
                )
            self._advance(max(next_time, self._now))
            self._events += 1

        self._check_all_complete()
        trace = self._trace
        assert trace is not None
        if self._validate:
            trace.validate()
        return SimulationResult(
            trace=trace,
            makespan=trace.makespan,
            scheduler_name=self._scheduler.describe(),
            gpu=self._gpu,
            events=self._events,
        )

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _reset(self, launches: Sequence[KernelLaunch]) -> None:
        if not launches:
            raise ConfigurationError("workload must contain >= 1 launch")
        ids = [l.instance_id for l in launches]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate instance ids in workload")
        id_set = set(ids)
        seen: Set[int] = set()
        for launch in launches:
            for dep in launch.depends_on:
                if dep not in id_set:
                    raise ConfigurationError(
                        f"launch {launch.instance_id} depends on unknown "
                        f"instance {dep}"
                    )
                if dep not in seen:
                    raise ConfigurationError(
                        f"launch {launch.instance_id} depends on {dep}, "
                        "which is submitted later (streams submit in order)"
                    )
            seen.add(launch.instance_id)

        self._now = 0.0
        self._events = 0
        self._resident = {}
        self._last_dispatch_time = None
        sm_cfg = self._gpu.sm
        self._sms = [
            _SMState(
                free_threads=sm_cfg.max_threads,
                free_registers=sm_cfg.registers,
                free_shared_memory=sm_cfg.shared_memory,
                free_blocks=sm_cfg.max_blocks,
            )
            for _ in self._gpu.sm_ids
        ]
        self._order = list(ids)
        self._states = {
            l.instance_id: _LaunchState(
                launch=l, remaining_deps=set(l.depends_on)
            )
            for l in launches
        }
        self._trace = ExecutionTrace(self._gpu.num_sms)
        self._scheduler.reset(self._gpu)
        # resolve arrivals of dependency-free launches (in submission order,
        # respecting the serial dispatch path)
        for iid in self._order:
            st = self._states[iid]
            if not st.remaining_deps:
                self._assign_arrival(st, ready_at=0.0)

    def _precheck(self, launches: Sequence[KernelLaunch]) -> None:
        """Fail fast when a kernel cannot fit on its allowed SMs."""
        for launch in launches:
            occupancy_report(launch.kernel, self._gpu.sm)  # raises CapacityError
            allowed = self._scheduler.allowed_sms(launch)
            if not allowed:
                raise CapacityError(
                    f"scheduler {self._scheduler.name!r} allows no SMs for "
                    f"launch {launch.instance_id} ({launch.kernel.name})"
                )
            for sm in allowed:
                if not (0 <= sm < self._gpu.num_sms):
                    raise SchedulingError(
                        f"scheduler allowed invalid SM {sm} for launch "
                        f"{launch.instance_id}"
                    )

    def _assign_arrival(self, st: _LaunchState, ready_at: float) -> None:
        """Compute a launch's arrival time through the serial dispatch path."""
        ready = ready_at + st.launch.arrival_offset
        if self._last_dispatch_time is None:
            arrival = ready
        else:
            arrival = max(ready, self._last_dispatch_time + self._gpu.dispatch_latency)
        st.arrival = arrival
        self._last_dispatch_time = arrival

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _candidate_sms(self, launch: KernelLaunch) -> List[int]:
        """SMs with capacity for one more block of ``launch``, within the
        scheduler's mask and the kernel-mixing rule."""
        allowed = self._scheduler.allowed_sms(launch)
        candidates = []
        for sm in allowed:
            state = self._sms[sm]
            if not state.fits(launch.kernel):
                continue
            if not self._gpu.allow_kernel_mixing:
                if any(
                    tb.launch.instance_id != launch.instance_id
                    for tb in state.resident.values()
                ):
                    continue
            candidates.append(sm)
        return sorted(candidates)

    def _try_placement(self) -> None:
        """Dispatch thread blocks of arrived launches until no progress."""
        progressed = True
        while progressed:
            progressed = False
            for iid in self._order:
                st = self._states[iid]
                if st.complete:
                    continue
                if st.arrival is None or st.arrival > self._now + _EPS:
                    if self._scheduler.strict_fifo:
                        # nothing behind an unfinished head may proceed
                        break
                    continue
                if not st.all_dispatched:
                    if not st.started:
                        if not self._scheduler.may_start(st.launch, self):
                            if self._scheduler.strict_fifo:
                                break
                            continue
                        self._scheduler.on_kernel_start(st.launch, self)
                        st.started = True
                    progressed |= self._dispatch_blocks(st)
                if self._scheduler.strict_fifo and not st.complete:
                    break

    def _dispatch_blocks(self, st: _LaunchState) -> bool:
        """Place as many blocks of one launch as capacity permits."""
        placed_any = False
        while not st.all_dispatched:
            candidates = self._candidate_sms(st.launch)
            if not candidates:
                break
            sm = self._scheduler.select_sm(st.launch, candidates, self)
            if sm is None:
                break
            if sm not in candidates:
                raise SchedulingError(
                    f"scheduler {self._scheduler.name!r} selected SM {sm} "
                    f"outside candidates {candidates} for launch "
                    f"{st.launch.instance_id}"
                )
            self._place_tb(st, sm)
            placed_any = True
        return placed_any

    def _place_tb(self, st: _LaunchState, sm: int) -> None:
        kernel = st.kernel
        self._sms[sm].take(kernel)
        tb = _ResidentTB(
            launch=st.launch,
            tb_index=st.next_tb,
            sm=sm,
            start=self._now,
            compute_left=float(kernel.work_per_block),
            memory_left=float(kernel.bytes_per_block),
        )
        st.next_tb += 1
        st.resident_count += 1
        if st.first_dispatch is None:
            st.first_dispatch = self._now
        self._sms[sm].resident[tb.key] = tb
        self._resident[tb.key] = tb

    # ------------------------------------------------------------------
    # fluid timing
    # ------------------------------------------------------------------
    def _recompute_rates(self) -> None:
        """Assign processor-sharing rates to every resident block."""
        mem_active = sum(
            1 for tb in self._resident.values() if tb.memory_left > _EPS
        )
        mem_rate = (
            self._gpu.dram_bandwidth / mem_active if mem_active else 0.0
        )
        for sm_state in self._sms:
            compute_active = sum(
                1 for tb in sm_state.resident.values() if tb.compute_left > _EPS
            )
            share = (
                self._gpu.sm.issue_throughput / compute_active
                if compute_active
                else 0.0
            )
            for tb in sm_state.resident.values():
                tb.compute_rate = share if tb.compute_left > _EPS else 0.0
                tb.memory_rate = mem_rate if tb.memory_left > _EPS else 0.0

    def _next_event_time(self) -> Optional[float]:
        """Earliest upcoming event: a work-dimension completion or an
        arrival.  ``None`` when the workload is fully drained."""
        self._recompute_rates()
        candidate: Optional[float] = None

        for tb in self._resident.values():
            if tb.compute_left > _EPS and tb.compute_rate > 0:
                t = self._now + tb.compute_left / tb.compute_rate
                candidate = t if candidate is None else min(candidate, t)
            if tb.memory_left > _EPS and tb.memory_rate > 0:
                t = self._now + tb.memory_left / tb.memory_rate
                candidate = t if candidate is None else min(candidate, t)

        future_arrival: Optional[float] = None
        pending_work = False
        for st in self._states.values():
            if st.complete:
                continue
            pending_work = True
            if st.arrival is not None and st.arrival > self._now + _EPS:
                future_arrival = (
                    st.arrival
                    if future_arrival is None
                    else min(future_arrival, st.arrival)
                )
            elif st.arrival is not None and not st.started:
                # arrived but admission-blocked: time-gated policies
                # (e.g. enforced stagger) expose their retry time
                retry = self._scheduler.earliest_start(st.launch, self)
                if retry is not None and retry > self._now + _EPS:
                    future_arrival = (
                        retry
                        if future_arrival is None
                        else min(future_arrival, retry)
                    )
        if future_arrival is not None:
            candidate = (
                future_arrival
                if candidate is None
                else min(candidate, future_arrival)
            )

        if candidate is None and pending_work:
            self._diagnose_deadlock()
        return candidate

    def _diagnose_deadlock(self) -> None:
        """Raise a descriptive error when work exists but nothing can run."""
        stuck = [
            f"{st.launch.instance_id}({st.kernel.name}: "
            f"dispatched {st.next_tb}/{st.kernel.grid_blocks}, "
            f"resident {st.resident_count}, arrival {st.arrival})"
            for st in self._states.values()
            if not st.complete
        ]
        raise SimulationError(
            "scheduler deadlock: no resident work, no future arrivals, but "
            "incomplete launches remain: " + "; ".join(sorted(stuck))
        )

    def _advance(self, t_next: float) -> None:
        """Integrate progress to ``t_next`` and process completions."""
        dt = t_next - self._now
        if dt > 0:
            for tb in self._resident.values():
                if tb.compute_rate > 0:
                    tb.compute_left = max(0.0, tb.compute_left - tb.compute_rate * dt)
                if tb.memory_rate > 0:
                    tb.memory_left = max(0.0, tb.memory_left - tb.memory_rate * dt)
        self._now = t_next

        finished = [tb for tb in self._resident.values() if tb.done]
        for tb in finished:
            self._complete_tb(tb)

    def _complete_tb(self, tb: _ResidentTB) -> None:
        st = self._states[tb.launch.instance_id]
        self._sms[tb.sm].release(st.kernel)
        del self._sms[tb.sm].resident[tb.key]
        del self._resident[tb.key]
        st.resident_count -= 1
        st.completed_tbs += 1
        assert self._trace is not None
        self._trace.add_tb(
            TBRecord(
                instance_id=tb.launch.instance_id,
                logical_id=tb.launch.logical_id or 0,
                copy_id=tb.launch.copy_id,
                tb_index=tb.tb_index,
                sm=tb.sm,
                start=tb.start,
                end=self._now,
                tag=tb.launch.tag,
            )
        )
        if st.all_dispatched and st.resident_count == 0:
            self._complete_launch(st)

    def _complete_launch(self, st: _LaunchState) -> None:
        st.completion = self._now
        assert st.first_dispatch is not None and st.arrival is not None
        assert self._trace is not None
        self._trace.add_span(
            KernelSpan(
                instance_id=st.launch.instance_id,
                logical_id=st.launch.logical_id or 0,
                copy_id=st.launch.copy_id,
                kernel_name=st.kernel.name,
                arrival=st.arrival,
                first_dispatch=st.first_dispatch,
                completion=st.completion,
                tag=st.launch.tag,
            )
        )
        self._scheduler.on_kernel_complete(st.launch, self)
        # resolve dependents
        for iid in self._order:
            dep_st = self._states[iid]
            if st.launch.instance_id in dep_st.remaining_deps:
                dep_st.remaining_deps.discard(st.launch.instance_id)
                if not dep_st.remaining_deps and dep_st.arrival is None:
                    self._assign_arrival(dep_st, ready_at=self._now)

    def _check_all_complete(self) -> None:
        leftovers = [
            iid for iid, st in self._states.items() if not st.complete
        ]
        if leftovers:
            raise SimulationError(
                f"simulation ended with incomplete launches: {sorted(leftovers)}"
            )


def simulate(gpu: GPUConfig, scheduler: KernelScheduler,
             launches: Sequence[KernelLaunch], *,
             validate: bool = True) -> SimulationResult:
    """Convenience one-shot simulation wrapper.

    Equivalent to ``GPUSimulator(gpu, scheduler, validate=validate)
    .run(launches)``.
    """
    return GPUSimulator(gpu, scheduler, validate=validate).run(launches)
