"""Execution traces produced by the GPU simulator.

The diversity argument of the paper (Section IV-C) quantifies over *where*
and *when* each thread block of each redundant kernel copy executed.  The
trace captures exactly that: one :class:`TBRecord` per thread block with its
SM and execution interval, plus one :class:`KernelSpan` per kernel launch.

Traces are the single source of truth consumed by:

* :mod:`repro.redundancy.diversity` — SM-disjointness and time-slack metrics,
* :mod:`repro.faults` — fault-injection outcome classification,
* :mod:`repro.analysis` — overlap measurement and report generation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["TBRecord", "KernelSpan", "ExecutionTrace", "intervals_overlap"]


def intervals_overlap(a_start: float, a_end: float,
                      b_start: float, b_end: float) -> bool:
    """True when the half-open intervals ``[a_start, a_end)`` and
    ``[b_start, b_end)`` intersect."""
    return a_start < b_end and b_start < a_end


@dataclass(frozen=True)
class TBRecord:
    """Execution record of one thread block.

    Attributes:
        instance_id: kernel launch the block belongs to.
        logical_id: logical computation id (shared by redundant copies).
        copy_id: redundancy copy index of the owning launch.
        tb_index: block index within the grid (0-based).
        sm: SM the block executed on (blocks never migrate).
        start: dispatch-to-SM time (cycles).
        end: completion time (cycles).
        tag: workload label carried from the launch.
    """

    instance_id: int
    logical_id: int
    copy_id: int
    tb_index: int
    sm: int
    start: float
    end: float
    tag: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"TB {self.tb_index} of instance {self.instance_id}: "
                f"end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Execution time of the block in cycles."""
        return self.end - self.start

    def phase_at(self, t: float) -> Optional[float]:
        """Execution phase (0..1 fraction of progress) at time ``t``.

        Returns ``None`` when the block is not executing at ``t``.  Under
        the fluid model progress is piecewise linear; we approximate the
        phase as the elapsed-time fraction, which is exact whenever rates
        are constant over the block's lifetime and a good proxy otherwise.
        The fault model only compares phases *between redundant copies of
        the same block*, for which the approximation is symmetric.
        """
        if not (self.start <= t < self.end) or self.duration == 0:
            return None
        return (t - self.start) / self.duration

    def active_at(self, t: float) -> bool:
        """True when the block occupies its SM at time ``t``."""
        return self.start <= t < self.end

    def overlaps(self, other: "TBRecord") -> bool:
        """True when the two blocks' execution intervals intersect."""
        return intervals_overlap(self.start, self.end, other.start, other.end)


@dataclass(frozen=True)
class KernelSpan:
    """Summary of one kernel launch's execution.

    Attributes:
        instance_id / logical_id / copy_id / tag: identity (see
        :class:`TBRecord`).
        kernel_name: descriptor name.
        arrival: time the launch reached the GPU kernel scheduler.
        first_dispatch: time its first block started on an SM.
        completion: time its last block finished.
    """

    instance_id: int
    logical_id: int
    copy_id: int
    kernel_name: str
    arrival: float
    first_dispatch: float
    completion: float
    tag: str = ""

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (includes scheduler queueing)."""
        return self.completion - self.arrival

    @property
    def exec_time(self) -> float:
        """First-dispatch-to-completion time (pure execution)."""
        return self.completion - self.first_dispatch

    @property
    def queue_delay(self) -> float:
        """Time the launch waited before its first block was placed."""
        return self.first_dispatch - self.arrival


class ExecutionTrace:
    """Container of all :class:`TBRecord` / :class:`KernelSpan` of one run.

    Provides the pairing and overlap queries the redundancy and fault
    analyses rely on.  Instances are append-only during simulation and
    behave as immutable afterwards.
    """

    def __init__(self, num_sms: int) -> None:
        if num_sms <= 0:
            raise SimulationError("trace requires at least one SM")
        self._num_sms = num_sms
        self._tb_records: List[TBRecord] = []
        self._spans: Dict[int, KernelSpan] = {}
        self._by_instance: Dict[int, List[TBRecord]] = {}
        self._by_sm: Dict[int, List[TBRecord]] = {}

    # ------------------------------------------------------------------
    # construction (used by the simulator)
    # ------------------------------------------------------------------
    def add_tb(self, record: TBRecord) -> None:
        """Append a thread-block record (simulator-internal)."""
        if not (0 <= record.sm < self._num_sms):
            raise SimulationError(f"record references unknown SM {record.sm}")
        self._tb_records.append(record)
        self._by_instance.setdefault(record.instance_id, []).append(record)
        self._by_sm.setdefault(record.sm, []).append(record)

    def add_span(self, span: KernelSpan) -> None:
        """Append a kernel span (simulator-internal)."""
        if span.instance_id in self._spans:
            raise SimulationError(
                f"duplicate span for instance {span.instance_id}"
            )
        self._spans[span.instance_id] = span

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_sms(self) -> int:
        """Number of SMs of the simulated GPU."""
        return self._num_sms

    @property
    def tb_records(self) -> Tuple[TBRecord, ...]:
        """All thread-block records, in completion order."""
        return tuple(self._tb_records)

    @property
    def spans(self) -> Tuple[KernelSpan, ...]:
        """All kernel spans, ordered by instance id."""
        return tuple(self._spans[k] for k in sorted(self._spans))

    def span(self, instance_id: int) -> KernelSpan:
        """Span of a specific launch."""
        try:
            return self._spans[instance_id]
        except KeyError:
            raise SimulationError(f"no span for instance {instance_id}") from None

    def blocks_of(self, instance_id: int) -> Tuple[TBRecord, ...]:
        """Thread-block records of one launch, sorted by block index."""
        records = self._by_instance.get(instance_id, [])
        return tuple(sorted(records, key=lambda r: r.tb_index))

    def blocks_on_sm(self, sm: int) -> Tuple[TBRecord, ...]:
        """Thread-block records that executed on SM ``sm``."""
        return tuple(self._by_sm.get(sm, []))

    @property
    def makespan(self) -> float:
        """Completion time of the last thread block (0 for empty traces)."""
        if not self._tb_records:
            return 0.0
        return max(r.end for r in self._tb_records)

    @property
    def instance_ids(self) -> Tuple[int, ...]:
        """Sorted launch instance ids present in the trace."""
        return tuple(sorted(self._spans))

    # ------------------------------------------------------------------
    # redundancy-oriented queries
    # ------------------------------------------------------------------
    def copies_of(self, logical_id: int) -> Dict[int, KernelSpan]:
        """Map ``copy_id -> span`` for all copies of one logical kernel."""
        return {
            s.copy_id: s for s in self._spans.values() if s.logical_id == logical_id
        }

    def logical_ids(self) -> Tuple[int, ...]:
        """Sorted logical computation ids present in the trace."""
        return tuple(sorted({s.logical_id for s in self._spans.values()}))

    def paired_blocks(self, logical_id: int,
                      copy_a: int = 0, copy_b: int = 1
                      ) -> Iterator[Tuple[TBRecord, TBRecord]]:
        """Yield ``(block of copy_a, block of copy_b)`` pairs by tb_index.

        This is the quantification domain of the paper's diversity claim:
        every redundant pair must execute on different SMs at different
        times.

        Raises:
            SimulationError: when the two copies have different grids, which
                would indicate a broken redundant-launch construction.
        """
        spans = self.copies_of(logical_id)
        if copy_a not in spans or copy_b not in spans:
            raise SimulationError(
                f"logical kernel {logical_id} lacks copies {copy_a}/{copy_b}"
            )
        blocks_a = self.blocks_of(spans[copy_a].instance_id)
        blocks_b = self.blocks_of(spans[copy_b].instance_id)
        if len(blocks_a) != len(blocks_b):
            raise SimulationError(
                f"logical kernel {logical_id}: copies have different grids "
                f"({len(blocks_a)} vs {len(blocks_b)} blocks)"
            )
        for ra, rb in zip(blocks_a, blocks_b):
            yield ra, rb

    def active_blocks_at(self, t: float,
                         sms: Optional[Iterable[int]] = None
                         ) -> List[TBRecord]:
        """Blocks executing at time ``t``, optionally filtered to ``sms``."""
        sm_filter = set(sms) if sms is not None else None
        return [
            r
            for r in self._tb_records
            if r.active_at(t) and (sm_filter is None or r.sm in sm_filter)
        ]

    def busy_intervals(self, sm: int) -> List[Tuple[float, float]]:
        """Merged busy intervals of one SM (for utilization reporting)."""
        intervals = sorted(
            (r.start, r.end) for r in self._by_sm.get(sm, []) if r.end > r.start
        )
        merged: List[Tuple[float, float]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def sm_utilization(self, sm: int) -> float:
        """Fraction of the makespan during which ``sm`` had resident work."""
        total = self.makespan
        if total == 0:
            return 0.0
        busy = sum(end - start for start, end in self.busy_intervals(sm))
        return busy / total

    def gpu_busy_intervals(self) -> List[Tuple[float, float]]:
        """Merged intervals during which *any* SM had resident work.

        This is the wall-clock the GPU actually simulates/executes —
        host-side dispatch gaps between kernels are excluded, matching the
        "simulated time only for the kernel execution" metric of the
        paper's Figure 4 (GPGPU-Sim's total simulated cycles).
        """
        intervals = sorted(
            (r.start, r.end) for r in self._tb_records if r.end > r.start
        )
        merged: List[Tuple[float, float]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    @property
    def busy_cycles(self) -> float:
        """Total GPU-active cycles (length of the busy-interval union)."""
        return sum(end - start for start, end in self.gpu_busy_intervals())

    def overlap_cycles(self, instance_a: int, instance_b: int) -> float:
        """Cycles during which two launches were simultaneously resident.

        Drives the paper's Figure 3 kernel taxonomy (short / heavy /
        friendly by achievable overlap).
        """
        def union(iid: int) -> List[Tuple[float, float]]:
            """Merged residency intervals of one launch's blocks."""
            intervals = sorted(
                (r.start, r.end)
                for r in self._by_instance.get(iid, [])
                if r.end > r.start
            )
            merged: List[Tuple[float, float]] = []
            for start, end in intervals:
                if merged and start <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], end))
                else:
                    merged.append((start, end))
            return merged

        overlap = 0.0
        for a_start, a_end in union(instance_a):
            for b_start, b_end in union(instance_b):
                lo = max(a_start, b_start)
                hi = min(a_end, b_end)
                if hi > lo:
                    overlap += hi - lo
        return overlap

    # ------------------------------------------------------------------
    # differential-testing support
    # ------------------------------------------------------------------
    def differences(self, other: "ExecutionTrace",
                    limit: int = 5) -> List[str]:
        """Describe where two traces diverge, bit-exactly.

        Used by the simulator equivalence suite: the production and
        reference cores must agree on every record and span, including
        order and exact float values.

        Args:
            other: trace to compare against.
            limit: maximum number of mismatch descriptions to collect.

        Returns:
            Human-readable mismatch descriptions; empty when the traces
            are identical.
        """
        diffs: List[str] = []
        if self._num_sms != other._num_sms:
            diffs.append(f"num_sms: {self._num_sms} != {other._num_sms}")
        if len(self._tb_records) != len(other._tb_records):
            diffs.append(
                f"tb_record count: {len(self._tb_records)} != "
                f"{len(other._tb_records)}"
            )
        for i, (a, b) in enumerate(zip(self._tb_records, other._tb_records)):
            if len(diffs) >= limit:
                return diffs
            if a != b:
                diffs.append(f"tb_record[{i}]: {a} != {b}")
        if sorted(self._spans) != sorted(other._spans):
            diffs.append(
                f"span instances: {sorted(self._spans)} != "
                f"{sorted(other._spans)}"
            )
            return diffs
        for iid in sorted(self._spans):
            if len(diffs) >= limit:
                break
            if self._spans[iid] != other._spans[iid]:
                diffs.append(
                    f"span[{iid}]: {self._spans[iid]} != {other._spans[iid]}"
                )
        return diffs

    def identical_to(self, other: "ExecutionTrace") -> bool:
        """True when both traces hold bit-identical records and spans,
        in the same order."""
        return not self.differences(other, limit=1)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Internal consistency check (used heavily by tests).

        Verifies that every launch with blocks has a span, spans bracket
        their blocks, and no record escapes the SM range.

        Raises:
            SimulationError: on any inconsistency.
        """
        for iid, records in self._by_instance.items():
            if iid not in self._spans:
                raise SimulationError(f"instance {iid} has blocks but no span")
            span = self._spans[iid]
            first = min(r.start for r in records)
            last = max(r.end for r in records)
            if abs(first - span.first_dispatch) > 1e-6:
                raise SimulationError(
                    f"instance {iid}: span first_dispatch {span.first_dispatch} "
                    f"!= earliest block start {first}"
                )
            if abs(last - span.completion) > 1e-6:
                raise SimulationError(
                    f"instance {iid}: span completion {span.completion} "
                    f"!= latest block end {last}"
                )
            indices = sorted(r.tb_index for r in records)
            if indices != list(range(len(records))):
                raise SimulationError(
                    f"instance {iid}: block indices not contiguous: {indices[:8]}..."
                )
