"""Kernel scheduling policies for the GPU simulator.

Exports the scheduler interface, the three policies evaluated in the paper
(default / SRRS / HALF) and the name-based registry.
"""

from repro.gpu.scheduler.base import KernelScheduler, SchedulerView
from repro.gpu.scheduler.default import DefaultScheduler
from repro.gpu.scheduler.half import HALFScheduler
from repro.gpu.scheduler.registry import (
    PAPER_POLICIES,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.gpu.scheduler.srrs import SRRSScheduler
from repro.gpu.scheduler.staggered import StaggeredScheduler

__all__ = [
    "KernelScheduler",
    "SchedulerView",
    "DefaultScheduler",
    "SRRSScheduler",
    "HALFScheduler",
    "StaggeredScheduler",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "PAPER_POLICIES",
]
