"""Baseline (unconstrained) kernel scheduler.

Models the stock GPGPU-Sim / COTS behaviour the paper compares against:
kernels are admitted as soon as they arrive, any SM may be used, and thread
blocks are placed on the least-loaded SM.  Redundant kernel copies may
therefore co-reside on the same SM and execute the same thread block at
overlapping times — which is precisely the common-cause-fault exposure the
paper's policies eliminate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.kernel import KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler, SchedulerView

__all__ = ["DefaultScheduler"]


class DefaultScheduler(KernelScheduler):
    """Greedy least-loaded placement over all SMs, immediate admission.

    The tie-break (lowest SM id) makes runs fully deterministic, which the
    fault-injection campaigns rely on: a single simulation per policy is
    reused for every injected fault.
    """

    name = "default"
    strict_fifo = False

    def select_sm(self, launch: KernelLaunch, candidates: Sequence[int],
                  view: SchedulerView) -> Optional[int]:
        """Pick the candidate SM with the fewest resident blocks.

        Equivalent to ``min(candidates, key=lambda sm:
        (view.resident_blocks(sm), sm))`` but without a per-candidate
        lambda call and tuple allocation — this runs once per placed
        thread block, which makes it one of the hottest scheduler paths.
        """
        resident_blocks = view.resident_blocks
        best = candidates[0]
        best_load = resident_blocks(best)
        for sm in candidates[1:]:
            load = resident_blocks(sm)
            if load < best_load or (load == best_load and sm < best):
                best, best_load = sm, load
        return best
