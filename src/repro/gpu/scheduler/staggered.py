"""STAGGER — an ablation policy: enforced temporal stagger only.

Not proposed by the paper; included to *isolate* the two ingredients of
its diversity argument.  STAGGER delays every redundancy copy's kernel
start until a minimum stagger after the previous copy of the same
logical kernel started, but places blocks with the unconstrained default
heuristic (copies may share SMs).

Consequences, demonstrated by the fault-coverage ablation
(``benchmarks/bench_diversity_mechanisms.py``) and the property tests:

* permanent SM faults leak — redundant copies can still co-locate on the
  defective SM;
* even the transient protection is *not guaranteed*: the kernel-start
  stagger does not bound per-block phase distance, because co-residency
  changes the copies' progress rates and phases can cross mid-flight
  (deterministic witness in ``tests/test_properties_extended.py``).

Both gaps are closed by SRRS/HALF, which control **where** as well as
**when** — the reason the paper proposes scheduler policies instead of
mere staggering.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler, SchedulerView

__all__ = ["StaggeredScheduler"]


class StaggeredScheduler(KernelScheduler):
    """Default placement plus an enforced minimum inter-copy stagger.

    Copy ``c`` of logical kernel ``l`` may not start until copy ``c-1``
    of ``l`` started at least ``min_stagger`` cycles ago (copy 0 is
    unconstrained).

    Args:
        min_stagger: enforced stagger in cycles; must be positive (zero
            would degenerate to the default policy).
    """

    name = "staggered"
    strict_fifo = False

    def __init__(self, min_stagger: float = 2000.0) -> None:
        super().__init__()
        if min_stagger <= 0:
            raise ConfigurationError("min_stagger must be positive")
        self._min_stagger = min_stagger
        self._start_times: Dict[Tuple[int, int], float] = {}

    @property
    def min_stagger(self) -> float:
        """Enforced stagger in cycles."""
        return self._min_stagger

    def reset(self, gpu: GPUConfig) -> None:
        """Bind to a GPU and clear recorded start times."""
        super().reset(gpu)
        self._start_times = {}

    def may_start(self, launch: KernelLaunch, view: SchedulerView) -> bool:
        """Admit once the previous copy's start is old enough."""
        if launch.copy_id == 0:
            return True
        prev_key = (launch.logical_id or 0, launch.copy_id - 1)
        prev_start = self._start_times.get(prev_key)
        if prev_start is None:
            return False
        return view.now() >= prev_start + self._min_stagger

    def earliest_start(self, launch: KernelLaunch,
                       view: SchedulerView) -> Optional[float]:
        """Retry time for the simulator's event loop (time-gated policy)."""
        if launch.copy_id == 0:
            return None
        prev_key = (launch.logical_id or 0, launch.copy_id - 1)
        prev_start = self._start_times.get(prev_key)
        if prev_start is None:
            return None  # unblocked by the predecessor's start event
        return prev_start + self._min_stagger

    def on_kernel_start(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Record the copy's start time for its successors."""
        key = (launch.logical_id or 0, launch.copy_id)
        self._start_times[key] = view.now()

    def select_sm(self, launch: KernelLaunch, candidates: Sequence[int],
                  view: SchedulerView) -> Optional[int]:
        """Unconstrained least-loaded placement (the point of the
        ablation: no spatial control)."""
        return min(candidates, key=lambda sm: (view.resident_blocks(sm), sm))

    def describe(self) -> str:
        """Label including the stagger parameter."""
        return f"staggered(min_stagger={self._min_stagger:.0f})"
