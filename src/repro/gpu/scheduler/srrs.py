"""SRRS — the paper's Start / Round-Robin / Serial scheduling policy.

Section IV-B.1 of the paper defines SRRS by five requirements:

1. a kernel does not start until the GPU is idle;
2. the SM receiving the kernel's *first* thread block is selectable;
3. subsequent SMs are allocated in round-robin order;
4. redundant kernel execution is fully serialized (the second copy starts
   only after the first finished);
5. no further kernel executes until the second copy also finishes.

With different starting SMs for the two copies, every thread block pair
executes (a) on different SMs — the round-robin order is a pure rotation,
so block *i* of copy *c* lands on SM ``(start_c + f(i)) mod n`` with the
same ``f`` for both copies — and (b) at different times, because execution
is serialized.  That is the paper's diverse redundancy by construction.

Requirements 1, 4 and 5 are expressed here through :meth:`may_start`
(idle + FIFO) combined with ``strict_fifo``; requirements 2 and 3 through
:meth:`select_sm`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler, SchedulerView

__all__ = ["SRRSScheduler"]


class SRRSScheduler(KernelScheduler):
    """Start / Round-Robin / Serial policy.

    Args:
        start_offset: SM-rotation applied per redundancy copy; copy ``c``
            starts at SM ``(c * start_offset) mod num_sms``.  Diversity
            requires the offset of distinct copies to differ modulo the SM
            count, so ``start_offset`` must not be a multiple of
            ``num_sms`` (checked at :meth:`reset` time).
        base_sm: starting SM of copy 0 (default 0).
    """

    name = "srrs"
    strict_fifo = True

    def __init__(self, start_offset: int = 1, base_sm: int = 0) -> None:
        super().__init__()
        if start_offset <= 0:
            raise ConfigurationError("SRRS start_offset must be >= 1")
        if base_sm < 0:
            raise ConfigurationError("SRRS base_sm must be >= 0")
        self._start_offset = start_offset
        self._base_sm = base_sm
        self._rr_pointer: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def start_offset(self) -> int:
        """Per-copy starting-SM rotation."""
        return self._start_offset

    def reset(self, gpu: GPUConfig) -> None:
        """Bind to a GPU, validating the rotation yields distinct starts."""
        super().reset(gpu)
        if gpu.num_sms > 1 and self._start_offset % gpu.num_sms == 0:
            raise ConfigurationError(
                f"SRRS start_offset {self._start_offset} is a multiple of "
                f"num_sms {gpu.num_sms}: redundant copies would start on "
                "the same SM, defeating diversity"
            )
        if self._base_sm >= gpu.num_sms:
            raise ConfigurationError(
                f"SRRS base_sm {self._base_sm} out of range for "
                f"{gpu.num_sms} SMs"
            )
        self._rr_pointer = {}

    # ------------------------------------------------------------------
    def start_sm(self, launch: KernelLaunch) -> int:
        """Starting SM for a launch (requirement 2)."""
        return (self._base_sm + launch.copy_id * self._start_offset) % self.gpu.num_sms

    def may_start(self, launch: KernelLaunch, view: SchedulerView) -> bool:
        """Admit only onto an idle GPU with no unfinished predecessor."""
        return view.is_idle() and not view.incomplete_before(launch)

    def on_kernel_start(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Initialise the launch's round-robin pointer at its start SM."""
        self._rr_pointer[launch.instance_id] = self.start_sm(launch)

    def on_kernel_complete(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Drop per-launch state."""
        self._rr_pointer.pop(launch.instance_id, None)

    def select_sm(self, launch: KernelLaunch, candidates: Sequence[int],
                  view: SchedulerView) -> Optional[int]:
        """Round-robin from the launch's pointer (requirement 3).

        Scans SMs in rotation order starting at the pointer and picks the
        first candidate; the pointer then advances past the chosen SM so
        consecutive blocks sweep across SMs.
        """
        num_sms = self.gpu.num_sms
        pointer = self._rr_pointer.get(launch.instance_id, self.start_sm(launch))
        candidate_set = set(candidates)
        for step in range(num_sms):
            sm = (pointer + step) % num_sms
            if sm in candidate_set:
                self._rr_pointer[launch.instance_id] = (sm + 1) % num_sms
                return sm
        return None

    def describe(self) -> str:
        """One-line description including the rotation parameter."""
        return f"srrs(start_offset={self._start_offset})"
