"""Scheduler registry — name-based construction of scheduling policies.

Benchmarks, examples and the redundancy manager refer to policies by name
(``"default"``, ``"srrs"``, ``"half"``); the registry maps names to factory
callables.  User code can register additional policies (e.g. the faulty
wrappers used in scheduler-fault campaigns, or experimental policies) via
:func:`register_scheduler`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.scheduler.default import DefaultScheduler
from repro.gpu.scheduler.half import HALFScheduler
from repro.gpu.scheduler.srrs import SRRSScheduler
from repro.gpu.scheduler.staggered import StaggeredScheduler

__all__ = [
    "register_scheduler",
    "make_scheduler",
    "available_schedulers",
    "PAPER_POLICIES",
]

#: The three policies evaluated in Figure 4 of the paper, in plot order.
PAPER_POLICIES: Tuple[str, ...] = ("default", "half", "srrs")

_REGISTRY: Dict[str, Callable[..., KernelScheduler]] = {}


def register_scheduler(name: str,
                       factory: Callable[..., KernelScheduler],
                       *, overwrite: bool = False) -> None:
    """Register a scheduler factory under ``name``.

    Args:
        name: registry key (case-sensitive).
        factory: zero-or-keyword-argument callable returning a fresh
            :class:`KernelScheduler`.
        overwrite: allow replacing an existing registration.

    Raises:
        ConfigurationError: on duplicate names without ``overwrite``.
    """
    if not name:
        raise ConfigurationError("scheduler name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"scheduler {name!r} already registered")
    _REGISTRY[name] = factory


def make_scheduler(name: str, **kwargs) -> KernelScheduler:
    """Instantiate a registered scheduler by name.

    Keyword arguments are forwarded to the factory (e.g.
    ``make_scheduler("half", partitions=3)``).

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known: {known}"
        ) from None
    return factory(**kwargs)


def available_schedulers() -> Tuple[str, ...]:
    """Sorted names of all registered schedulers."""
    return tuple(sorted(_REGISTRY))


register_scheduler("default", DefaultScheduler)
register_scheduler("srrs", SRRSScheduler)
register_scheduler("half", HALFScheduler)
register_scheduler("staggered", StaggeredScheduler)
