"""HALF — the paper's SM-partitioning scheduling policy.

Section IV-B.2: allocate half of the SMs to one redundant kernel copy and
the other half to the other copy.  Different SMs are then used by
construction; the serial dispatch of kernels from the host (the GPU's
command path processes launches one at a time) guarantees the two copies
never execute the same computation at the same instant, so a transient
common-cause fault cannot corrupt both copies identically.

The implementation generalizes "half" to *k* equal partitions so the same
policy serves TMR (three copies) and sweep experiments; ``partitions=2``
reproduces the paper exactly.  Within its partition a launch uses the same
least-loaded placement as the default scheduler — the paper leaves intra-
partition placement to the stock policy ("we use the default scheduling
policy ... and restrict each kernel execution to 3 dedicated SMs").
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler, SchedulerView

__all__ = ["HALFScheduler"]


class HALFScheduler(KernelScheduler):
    """Static SM partitioning by redundancy copy.

    Args:
        partitions: number of equal SM groups; copy ``c`` is confined to
            partition ``c mod partitions``.  Must not exceed the SM count
            (checked at :meth:`reset`).
    """

    name = "half"
    strict_fifo = False

    def __init__(self, partitions: int = 2) -> None:
        super().__init__()
        if partitions < 2:
            raise ConfigurationError(
                "HALF needs >= 2 partitions to separate redundant copies"
            )
        self._partitions = partitions

    # ------------------------------------------------------------------
    @property
    def partitions(self) -> int:
        """Number of SM partitions."""
        return self._partitions

    def reset(self, gpu: GPUConfig) -> None:
        """Bind to a GPU, checking every partition is non-empty."""
        super().reset(gpu)
        if self._partitions > gpu.num_sms:
            raise ConfigurationError(
                f"cannot split {gpu.num_sms} SMs into {self._partitions} "
                "non-empty partitions"
            )

    def partition_of(self, copy_id: int) -> int:
        """Partition index assigned to a redundancy copy."""
        return copy_id % self._partitions

    def partition_sms(self, partition: int) -> Tuple[int, ...]:
        """SM ids of one partition (contiguous ranges, remainder spread
        over the first partitions)."""
        num_sms = self.gpu.num_sms
        base, extra = divmod(num_sms, self._partitions)
        start = partition * base + min(partition, extra)
        size = base + (1 if partition < extra else 0)
        return tuple(range(start, start + size))

    # ------------------------------------------------------------------
    def allowed_sms(self, launch: KernelLaunch) -> Tuple[int, ...]:
        """The partition of the launch's redundancy copy."""
        return self.partition_sms(self.partition_of(launch.copy_id))

    def select_sm(self, launch: KernelLaunch, candidates: Sequence[int],
                  view: SchedulerView) -> Optional[int]:
        """Least-loaded placement within the copy's partition."""
        return min(candidates, key=lambda sm: (view.resident_blocks(sm), sm))

    def describe(self) -> str:
        """One-line description including the partition count."""
        return f"half(partitions={self._partitions})"
