"""Kernel-scheduler interface.

The paper's contribution is a pair of *global kernel scheduler* policies
(SRRS and HALF) that constrain (a) **when** a kernel may start dispatching
thread blocks and (b) **which SM** each thread block is placed on.  The
simulator delegates exactly those two decisions to a
:class:`KernelScheduler`, mirroring the hardware split between the global
kernel scheduler and the SMs in Figure 2 of the paper.

The scheduler observes the machine through a narrow read-only
:class:`SchedulerView` protocol so that policies cannot mutate simulator
state — scheduler *faults* are modelled separately by wrapping a policy
(see :mod:`repro.faults.scheduler_faults`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Protocol, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelLaunch

__all__ = ["SchedulerView", "KernelScheduler"]


class SchedulerView(Protocol):
    """Read-only view of the simulator state exposed to schedulers."""

    @property
    def gpu(self) -> GPUConfig:
        """The simulated GPU configuration."""
        ...

    def resident_blocks(self, sm: int) -> int:
        """Number of thread blocks currently resident on ``sm``."""
        ...

    def resident_blocks_of(self, sm: int, instance_id: int) -> int:
        """Resident blocks of a specific launch on ``sm``."""
        ...

    def is_idle(self) -> bool:
        """True when no thread block is resident on any SM."""
        ...

    def incomplete_before(self, launch: KernelLaunch) -> bool:
        """True when an earlier-arrived launch has not yet completed."""
        ...

    def now(self) -> float:
        """Current simulation time in cycles."""
        ...


class KernelScheduler(ABC):
    """Abstract global kernel scheduler.

    Subclasses implement the three policy decisions:

    * :meth:`may_start` — admission: may an arrived launch begin dispatching
      thread blocks *now*?  (SRRS answers "only when the GPU is idle and no
      earlier launch is unfinished".)
    * :meth:`allowed_sms` — static SM mask for a launch.  (HALF answers
      "the partition assigned to this redundancy copy".)
    * :meth:`select_sm` — pick the SM for the *next* thread block among the
      candidates that currently have capacity.  (SRRS answers "round-robin
      from a copy-specific starting SM".)

    Attributes:
        name: registry key and report label.
        strict_fifo: when True the simulator will not consider any launch
            behind an unfinished one (the paper's "no further kernel can be
            executed in the GPU until the second one also finishes").
    """

    name: str = "abstract"
    strict_fifo: bool = False

    def __init__(self) -> None:
        self._gpu: Optional[GPUConfig] = None

    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GPUConfig:
        """GPU this scheduler was bound to via :meth:`reset`."""
        if self._gpu is None:
            raise ConfigurationError(
                f"scheduler {self.name!r} used before reset(gpu)"
            )
        return self._gpu

    def reset(self, gpu: GPUConfig) -> None:
        """Bind to a GPU and clear per-run state.

        The simulator calls this once at the start of every run, so a single
        scheduler object can be reused across simulations.
        """
        self._gpu = gpu

    # ------------------------------------------------------------------
    # policy decisions
    # ------------------------------------------------------------------
    def may_start(self, launch: KernelLaunch, view: SchedulerView) -> bool:
        """Admission decision for an arrived, not-yet-started launch."""
        return True

    def allowed_sms(self, launch: KernelLaunch) -> Tuple[int, ...]:
        """SMs this launch's thread blocks may ever use.

        The mask is a *static* per-launch property: the simulator queries
        it once per launch per run (at workload precheck), validates it,
        and caches the deduplicated, ascending result for all subsequent
        placement decisions.  Masks that vary over a run would be silently
        ignored — encode time-varying behaviour in :meth:`may_start` /
        :meth:`select_sm` instead.
        """
        return tuple(self.gpu.sm_ids)

    def earliest_start(self, launch: KernelLaunch,
                       view: SchedulerView) -> Optional[float]:
        """Future time at which :meth:`may_start` may flip to True.

        Policies whose admission is gated on *time* (rather than on GPU
        state changes, which generate their own events) must return that
        time so the simulator can schedule a retry; returning ``None``
        means "no time-based gate" (the default).
        """
        return None

    @abstractmethod
    def select_sm(self, launch: KernelLaunch, candidates: Sequence[int],
                  view: SchedulerView) -> Optional[int]:
        """Choose the SM for the launch's next thread block.

        Args:
            launch: the launch being dispatched.
            candidates: non-empty subset of :meth:`allowed_sms` that
                currently has capacity for one more block of this kernel,
                in ascending SM order.  The sequence is only valid for the
                duration of the call (the simulator maintains it
                incrementally across placements) — copy it if you must
                retain it.
            view: read-only simulator state.

        Returns:
            The chosen SM id (must be in ``candidates``), or ``None`` to
            decline placement for now.
        """

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------
    def on_kernel_start(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Called when the launch's first thread block is about to place."""

    def on_kernel_complete(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Called when the launch's last thread block completed."""

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description for reports."""
        return self.name
