"""Hardware configuration objects for the GPU timing model.

The model follows the architecture sketch in Figure 2 of the paper: a GPU is
a set of *streaming multiprocessors* (SMs), each with private execution
resources (threads, registers, shared memory, block slots, issue
throughput), plus GPU-wide shared resources (DRAM bandwidth, a global
kernel scheduler, and a host-to-GPU command/dispatch path).

Two presets are provided:

* :func:`GPUConfig.gpgpusim_like` — the 6-SM configuration used for the
  paper's GPGPU-Sim experiments (Figure 4).
* :func:`GPUConfig.gtx1050ti_like` — a 6-SM configuration with clock and
  bandwidth in the ballpark of the GTX 1050 Ti used for the paper's COTS
  experiments (Figure 5).  The paper notes the COTS GPU "has the same
  number of SMs as the simulated platform".

Timing in the simulator is expressed in *cycles*; :attr:`GPUConfig.clock_mhz`
converts cycles to wall-clock time for end-to-end (COTS) modelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = ["SMConfig", "GPUConfig"]


@dataclass(frozen=True)
class SMConfig:
    """Per-SM resource limits and throughput.

    Attributes:
        max_threads: maximum resident threads per SM.
        max_blocks: maximum resident thread blocks per SM.
        registers: number of 32-bit registers in the SM register file.
        shared_memory: bytes of on-chip shared memory per SM.
        issue_throughput: abstract compute work units the SM retires per
            cycle, shared among resident thread blocks.  ``1.0`` means one
            "work unit" per cycle; kernel descriptors express their compute
            demand in the same unit, so a thread block with
            ``work_per_block == 1000`` alone on an SM takes 1000 cycles of
            compute.
    """

    max_threads: int = 1536
    max_blocks: int = 8
    registers: int = 65536
    shared_memory: int = 49152
    issue_throughput: float = 1.0

    def __post_init__(self) -> None:
        if self.max_threads <= 0:
            raise ConfigurationError("SM must support at least one thread")
        if self.max_blocks <= 0:
            raise ConfigurationError("SM must support at least one block")
        if self.registers <= 0:
            raise ConfigurationError("SM register file must be non-empty")
        if self.shared_memory < 0:
            raise ConfigurationError("SM shared memory cannot be negative")
        if self.issue_throughput <= 0:
            raise ConfigurationError("SM issue throughput must be positive")


@dataclass(frozen=True)
class GPUConfig:
    """Whole-GPU configuration.

    Attributes:
        name: human-readable identifier, used in reports.
        num_sms: number of streaming multiprocessors.
        sm: per-SM limits (see :class:`SMConfig`).
        clock_mhz: core clock, used to convert simulated cycles to seconds.
        dram_bandwidth: GPU-wide DRAM bandwidth in bytes per core cycle,
            shared equally among thread blocks with outstanding memory work.
        dispatch_latency: cycles the host/command processor needs between
            dispatching two consecutive kernels.  This is the source of the
            "intrinsically serial" staggering of redundant kernels noted in
            Section IV-A of the paper.
        allow_kernel_mixing: whether the *default* scheduler may co-locate
            thread blocks of different kernels on one SM (the paper's SM1
            example executes ``tb_1^k1, tb_2^k1, tb_2^k2, tb_4^k2``).
            SRRS/HALF make this irrelevant by construction.
    """

    name: str = "generic-6sm"
    num_sms: int = 6
    sm: SMConfig = field(default_factory=SMConfig)
    clock_mhz: float = 700.0
    dram_bandwidth: float = 48.0
    dispatch_latency: float = 3000.0
    allow_kernel_mixing: bool = True

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigurationError("GPU must have at least one SM")
        if self.clock_mhz <= 0:
            raise ConfigurationError("GPU clock must be positive")
        if self.dram_bandwidth <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        if self.dispatch_latency < 0:
            raise ConfigurationError("dispatch latency cannot be negative")

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def gpgpusim_like(cls, num_sms: int = 6) -> "GPUConfig":
        """The 6-SM platform modelled with GPGPU-Sim 3.2.2 in the paper."""
        return cls(
            name=f"gpgpusim-{num_sms}sm",
            num_sms=num_sms,
            sm=SMConfig(
                max_threads=1536,
                max_blocks=8,
                registers=32768,
                shared_memory=49152,
                issue_throughput=1.0,
            ),
            clock_mhz=700.0,
            dram_bandwidth=48.0,
            dispatch_latency=3000.0,
        )

    @classmethod
    def gtx1050ti_like(cls) -> "GPUConfig":
        """A GTX-1050-Ti-flavoured 6-SM configuration for COTS modelling."""
        return cls(
            name="gtx1050ti",
            num_sms=6,
            sm=SMConfig(
                max_threads=2048,
                max_blocks=16,
                registers=65536,
                shared_memory=65536,
                issue_throughput=2.0,
            ),
            clock_mhz=1290.0,
            dram_bandwidth=87.0,
            dispatch_latency=8000.0,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def cycles_to_ms(self, cycles: float) -> float:
        """Convert core cycles to milliseconds at :attr:`clock_mhz`."""
        return cycles / (self.clock_mhz * 1e3)

    def ms_to_cycles(self, ms: float) -> float:
        """Convert milliseconds to core cycles at :attr:`clock_mhz`."""
        return ms * self.clock_mhz * 1e3

    def with_sms(self, num_sms: int) -> "GPUConfig":
        """Return a copy of this configuration with a different SM count."""
        return replace(self, num_sms=num_sms, name=f"{self.name}-{num_sms}sm")

    @property
    def sm_ids(self) -> range:
        """Iterable of valid SM identifiers (``0 .. num_sms-1``)."""
        return range(self.num_sms)
