"""Reference GPU simulator core — the differential-testing oracle.

This module retains the pre-optimisation structure of
:class:`repro.gpu.simulator.GPUSimulator`: every event rescans all
resident thread blocks to find the next work-dimension completion, and all
launch states to find the next arrival — O(resident + launches) per event.
It implements the *same* virtual-time (fair-queuing) semantics as the
production core, expression-for-expression:

* the per-SM compute clock and the global memory clock advance by
  ``(throughput / active) * dt`` per event;
* a block's work dimension drains when its fixed finish key ``F``
  satisfies ``F - clock <= eps``;
* the next completion candidate of a dimension is
  ``now + (F_min - clock) / (throughput / active)``.

Because the production core evaluates exactly these expressions (reading
``F_min`` from a never-re-keyed min-heap instead of a scan, and the active
counts from counters instead of recounting), the two cores must produce
**bit-identical** traces, event counts and scheduler call sequences on any
workload.  ``tests/gpu/test_simulator_equivalence.py`` enforces this on
randomized workloads across every registered scheduling policy; any
divergence pinpoints a bug in the incremental bookkeeping (heaps, counters,
release log, reverse-dependency map) of the production core.

This simulator is intentionally simple, not fast.  Do not use it in
experiments; use :class:`repro.gpu.simulator.GPUSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.occupancy import occupancy_report
from repro.gpu.scheduler.base import KernelScheduler
from repro.gpu.simulator import SimulationResult
from repro.gpu.trace import ExecutionTrace, KernelSpan, TBRecord

__all__ = ["ReferenceSimulator", "reference_simulate"]

_EPS = 1e-9


@dataclass
class _RefTB:
    """Mutable state of one thread block resident on an SM."""

    launch: KernelLaunch
    tb_index: int
    sm: int
    start: float
    compute_active: bool
    memory_active: bool
    compute_finish: float = 0.0
    memory_finish: float = 0.0

    @property
    def done(self) -> bool:
        """True once both work dimensions have drained."""
        return not self.compute_active and not self.memory_active

    @property
    def key(self) -> Tuple[int, int]:
        """Stable identity ``(instance_id, tb_index)`` of this block."""
        return (self.launch.instance_id, self.tb_index)


@dataclass
class _RefSMState:
    """Mutable resource accounting of one SM (scan-based residency)."""

    free_threads: int
    free_registers: int
    free_shared_memory: int
    free_blocks: int
    virtual: float = 0.0
    resident: Dict[Tuple[int, int], _RefTB] = field(default_factory=dict)

    def fits(self, kernel: KernelDescriptor) -> bool:
        """True when one more block of ``kernel`` fits on this SM."""
        return (
            self.free_blocks >= 1
            and self.free_threads >= kernel.threads_per_block
            and self.free_registers
            >= kernel.regs_per_thread * kernel.threads_per_block
            and self.free_shared_memory >= kernel.shared_mem_per_block
        )

    def take(self, kernel: KernelDescriptor) -> None:
        """Debit one block's worth of ``kernel`` resources."""
        self.free_blocks -= 1
        self.free_threads -= kernel.threads_per_block
        self.free_registers -= kernel.regs_per_thread * kernel.threads_per_block
        self.free_shared_memory -= kernel.shared_mem_per_block

    def release(self, kernel: KernelDescriptor) -> None:
        """Credit one block's worth of ``kernel`` resources back."""
        self.free_blocks += 1
        self.free_threads += kernel.threads_per_block
        self.free_registers += kernel.regs_per_thread * kernel.threads_per_block
        self.free_shared_memory += kernel.shared_mem_per_block


@dataclass
class _RefLaunchState:
    """Mutable per-launch bookkeeping."""

    launch: KernelLaunch
    remaining_deps: Set[int]
    arrival: Optional[float] = None
    started: bool = False
    first_dispatch: Optional[float] = None
    next_tb: int = 0
    resident_count: int = 0
    completed_tbs: int = 0
    completion: Optional[float] = None
    allowed: Tuple[int, ...] = ()

    @property
    def kernel(self) -> KernelDescriptor:
        """The launch's kernel descriptor."""
        return self.launch.kernel

    @property
    def all_dispatched(self) -> bool:
        """True once every grid block has been placed on some SM."""
        return self.next_tb >= self.kernel.grid_blocks

    @property
    def complete(self) -> bool:
        """True once every block of the launch has finished."""
        return self.completion is not None


class ReferenceSimulator:
    """Scan-per-event reference implementation of the GPU simulator.

    Drop-in compatible with :class:`repro.gpu.simulator.GPUSimulator`
    (same constructor, :meth:`run` signature, SchedulerView protocol and
    :class:`SimulationResult` output) but with every per-event decision
    derived by a straightforward full rescan.
    """

    def __init__(self, gpu: GPUConfig, scheduler: KernelScheduler,
                 *, validate: bool = True) -> None:
        self._gpu = gpu
        self._scheduler = scheduler
        self._validate = validate
        self._now = 0.0
        self._sms: List[_RefSMState] = []
        self._states: Dict[int, _RefLaunchState] = {}
        self._order: List[int] = []
        self._resident: Dict[Tuple[int, int], _RefTB] = {}
        self._mem_virtual = 0.0
        self._last_dispatch_time: Optional[float] = None
        self._trace: Optional[ExecutionTrace] = None
        self._events = 0

    # ------------------------------------------------------------------
    # SchedulerView protocol
    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GPUConfig:
        """Simulated GPU configuration (SchedulerView)."""
        return self._gpu

    def resident_blocks(self, sm: int) -> int:
        """Resident block count of one SM (SchedulerView)."""
        return len(self._sms[sm].resident)

    def resident_blocks_of(self, sm: int, instance_id: int) -> int:
        """Resident blocks of a launch on one SM (SchedulerView)."""
        return sum(
            1
            for tb in self._sms[sm].resident.values()
            if tb.launch.instance_id == instance_id
        )

    def is_idle(self) -> bool:
        """True when no block is resident anywhere (SchedulerView)."""
        return not self._resident

    def incomplete_before(self, launch: KernelLaunch) -> bool:
        """True when a launch submitted earlier has not completed
        (SchedulerView)."""
        for iid in self._order:
            if iid == launch.instance_id:
                return False
            if not self._states[iid].complete:
                return True
        return False

    def now(self) -> float:
        """Current simulation time in cycles (SchedulerView)."""
        return self._now

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(self, launches: Sequence[KernelLaunch]) -> SimulationResult:
        """Simulate a workload to completion (see ``GPUSimulator.run``)."""
        self._reset(launches)
        self._precheck(launches)

        while True:
            self._try_placement()
            next_time = self._next_event_time()
            if next_time is None:
                break
            if next_time < self._now - _EPS:
                raise SimulationError(
                    f"time would move backwards: {next_time} < {self._now}"
                )
            self._advance(max(next_time, self._now))
            self._events += 1

        self._check_all_complete()
        trace = self._trace
        assert trace is not None
        if self._validate:
            trace.validate()
        return SimulationResult(
            trace=trace,
            makespan=trace.makespan,
            scheduler_name=self._scheduler.describe(),
            gpu=self._gpu,
            events=self._events,
        )

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _reset(self, launches: Sequence[KernelLaunch]) -> None:
        if not launches:
            raise ConfigurationError("workload must contain >= 1 launch")
        ids = [l.instance_id for l in launches]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate instance ids in workload")
        id_set = set(ids)
        seen: Set[int] = set()
        for launch in launches:
            for dep in launch.depends_on:
                if dep not in id_set:
                    raise ConfigurationError(
                        f"launch {launch.instance_id} depends on unknown "
                        f"instance {dep}"
                    )
                if dep not in seen:
                    raise ConfigurationError(
                        f"launch {launch.instance_id} depends on {dep}, "
                        "which is submitted later (streams submit in order)"
                    )
            seen.add(launch.instance_id)

        self._now = 0.0
        self._events = 0
        self._resident = {}
        self._mem_virtual = 0.0
        self._last_dispatch_time = None
        sm_cfg = self._gpu.sm
        self._sms = [
            _RefSMState(
                free_threads=sm_cfg.max_threads,
                free_registers=sm_cfg.registers,
                free_shared_memory=sm_cfg.shared_memory,
                free_blocks=sm_cfg.max_blocks,
            )
            for _ in self._gpu.sm_ids
        ]
        self._order = list(ids)
        self._states = {
            l.instance_id: _RefLaunchState(
                launch=l, remaining_deps=set(l.depends_on)
            )
            for l in launches
        }
        self._trace = ExecutionTrace(self._gpu.num_sms)
        self._scheduler.reset(self._gpu)
        for iid in self._order:
            st = self._states[iid]
            if not st.remaining_deps:
                self._assign_arrival(st, ready_at=0.0)

    def _precheck(self, launches: Sequence[KernelLaunch]) -> None:
        """Fail fast on unsatisfiable kernels; cache scheduler SM masks."""
        for launch in launches:
            occupancy_report(launch.kernel, self._gpu.sm)
            allowed = self._scheduler.allowed_sms(launch)
            if not allowed:
                raise CapacityError(
                    f"scheduler {self._scheduler.name!r} allows no SMs for "
                    f"launch {launch.instance_id} ({launch.kernel.name})"
                )
            for sm in allowed:
                if not (0 <= sm < self._gpu.num_sms):
                    raise SchedulingError(
                        f"scheduler allowed invalid SM {sm} for launch "
                        f"{launch.instance_id}"
                    )
            self._states[launch.instance_id].allowed = tuple(
                sorted(set(allowed))
            )

    def _assign_arrival(self, st: _RefLaunchState, ready_at: float) -> None:
        ready = ready_at + st.launch.arrival_offset
        if self._last_dispatch_time is None:
            arrival = ready
        else:
            arrival = max(ready, self._last_dispatch_time + self._gpu.dispatch_latency)
        st.arrival = arrival
        self._last_dispatch_time = arrival

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _candidate_sms(self, launch: KernelLaunch) -> List[int]:
        st = self._states[launch.instance_id]
        candidates = []
        for sm in st.allowed:
            state = self._sms[sm]
            if not state.fits(launch.kernel):
                continue
            if not self._gpu.allow_kernel_mixing:
                if any(
                    tb.launch.instance_id != launch.instance_id
                    for tb in state.resident.values()
                ):
                    continue
            candidates.append(sm)
        return candidates

    def _try_placement(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for iid in self._order:
                st = self._states[iid]
                if st.complete:
                    continue
                if st.arrival is None or st.arrival > self._now + _EPS:
                    if self._scheduler.strict_fifo:
                        break
                    continue
                if not st.all_dispatched:
                    if not st.started:
                        if not self._scheduler.may_start(st.launch, self):
                            if self._scheduler.strict_fifo:
                                break
                            continue
                        self._scheduler.on_kernel_start(st.launch, self)
                        st.started = True
                    progressed |= self._dispatch_blocks(st)
                if self._scheduler.strict_fifo and not st.complete:
                    break

    def _dispatch_blocks(self, st: _RefLaunchState) -> bool:
        placed_any = False
        while not st.all_dispatched:
            candidates = self._candidate_sms(st.launch)
            if not candidates:
                break
            sm = self._scheduler.select_sm(st.launch, candidates, self)
            if sm is None:
                break
            if sm not in candidates:
                raise SchedulingError(
                    f"scheduler {self._scheduler.name!r} selected SM {sm} "
                    f"outside candidates {candidates} for launch "
                    f"{st.launch.instance_id}"
                )
            self._place_tb(st, sm)
            placed_any = True
        return placed_any

    def _place_tb(self, st: _RefLaunchState, sm: int) -> None:
        kernel = st.kernel
        sm_state = self._sms[sm]
        sm_state.take(kernel)
        compute = float(kernel.work_per_block)
        memory = float(kernel.bytes_per_block)
        tb = _RefTB(
            launch=st.launch,
            tb_index=st.next_tb,
            sm=sm,
            start=self._now,
            compute_active=compute > _EPS,
            memory_active=memory > _EPS,
        )
        if tb.compute_active:
            tb.compute_finish = sm_state.virtual + compute
        if tb.memory_active:
            tb.memory_finish = self._mem_virtual + memory
        st.next_tb += 1
        st.resident_count += 1
        if st.first_dispatch is None:
            st.first_dispatch = self._now
        sm_state.resident[tb.key] = tb
        self._resident[tb.key] = tb

    # ------------------------------------------------------------------
    # fluid timing (virtual clocks, evaluated by full rescans)
    # ------------------------------------------------------------------
    def _next_event_time(self) -> Optional[float]:
        candidate: Optional[float] = None

        mem_active = sum(
            1 for tb in self._resident.values() if tb.memory_active
        )
        if mem_active:
            mem_rate = self._gpu.dram_bandwidth / mem_active
            for tb in self._resident.values():
                if tb.memory_active:
                    t = self._now + (tb.memory_finish - self._mem_virtual) / mem_rate
                    candidate = t if candidate is None else min(candidate, t)
        throughput = self._gpu.sm.issue_throughput
        for sm_state in self._sms:
            compute_active = sum(
                1 for tb in sm_state.resident.values() if tb.compute_active
            )
            if not compute_active:
                continue
            share = throughput / compute_active
            for tb in sm_state.resident.values():
                if tb.compute_active:
                    t = self._now + (tb.compute_finish - sm_state.virtual) / share
                    candidate = t if candidate is None else min(candidate, t)

        future_arrival: Optional[float] = None
        pending_work = False
        for st in self._states.values():
            if st.complete:
                continue
            pending_work = True
            if st.arrival is not None and st.arrival > self._now + _EPS:
                future_arrival = (
                    st.arrival
                    if future_arrival is None
                    else min(future_arrival, st.arrival)
                )
            elif st.arrival is not None and not st.started:
                retry = self._scheduler.earliest_start(st.launch, self)
                if retry is not None and retry > self._now + _EPS:
                    future_arrival = (
                        retry
                        if future_arrival is None
                        else min(future_arrival, retry)
                    )
        if future_arrival is not None:
            candidate = (
                future_arrival
                if candidate is None
                else min(candidate, future_arrival)
            )

        if candidate is None and pending_work:
            self._diagnose_deadlock()
        return candidate

    def _diagnose_deadlock(self) -> None:
        stuck = [
            f"{st.launch.instance_id}({st.kernel.name}: "
            f"dispatched {st.next_tb}/{st.kernel.grid_blocks}, "
            f"resident {st.resident_count}, arrival {st.arrival})"
            for st in self._states.values()
            if not st.complete
        ]
        raise SimulationError(
            "scheduler deadlock: no resident work, no future arrivals, but "
            "incomplete launches remain: " + "; ".join(sorted(stuck))
        )

    def _advance(self, t_next: float) -> None:
        dt = t_next - self._now
        throughput = self._gpu.sm.issue_throughput
        if dt > 0:
            mem_active = sum(
                1 for tb in self._resident.values() if tb.memory_active
            )
            if mem_active:
                self._mem_virtual += (
                    self._gpu.dram_bandwidth / mem_active
                ) * dt
            for sm_state in self._sms:
                compute_active = sum(
                    1 for tb in sm_state.resident.values() if tb.compute_active
                )
                if compute_active:
                    sm_state.virtual += (throughput / compute_active) * dt
        self._now = t_next

        for tb in self._resident.values():
            if tb.memory_active and tb.memory_finish - self._mem_virtual <= _EPS:
                tb.memory_active = False
            if (
                tb.compute_active
                and tb.compute_finish - self._sms[tb.sm].virtual <= _EPS
            ):
                tb.compute_active = False
        finished = [tb for tb in self._resident.values() if tb.done]
        for tb in finished:
            self._complete_tb(tb)

    def _complete_tb(self, tb: _RefTB) -> None:
        st = self._states[tb.launch.instance_id]
        self._sms[tb.sm].release(st.kernel)
        del self._sms[tb.sm].resident[tb.key]
        del self._resident[tb.key]
        st.resident_count -= 1
        st.completed_tbs += 1
        assert self._trace is not None
        self._trace.add_tb(
            TBRecord(
                instance_id=tb.launch.instance_id,
                logical_id=tb.launch.logical_id or 0,
                copy_id=tb.launch.copy_id,
                tb_index=tb.tb_index,
                sm=tb.sm,
                start=tb.start,
                end=self._now,
                tag=tb.launch.tag,
            )
        )
        if st.all_dispatched and st.resident_count == 0:
            self._complete_launch(st)

    def _complete_launch(self, st: _RefLaunchState) -> None:
        st.completion = self._now
        assert st.first_dispatch is not None and st.arrival is not None
        assert self._trace is not None
        self._trace.add_span(
            KernelSpan(
                instance_id=st.launch.instance_id,
                logical_id=st.launch.logical_id or 0,
                copy_id=st.launch.copy_id,
                kernel_name=st.kernel.name,
                arrival=st.arrival,
                first_dispatch=st.first_dispatch,
                completion=st.completion,
                tag=st.launch.tag,
            )
        )
        self._scheduler.on_kernel_complete(st.launch, self)
        for iid in self._order:
            dep_st = self._states[iid]
            if st.launch.instance_id in dep_st.remaining_deps:
                dep_st.remaining_deps.discard(st.launch.instance_id)
                if not dep_st.remaining_deps and dep_st.arrival is None:
                    self._assign_arrival(dep_st, ready_at=self._now)

    def _check_all_complete(self) -> None:
        leftovers = [
            iid for iid, st in self._states.items() if not st.complete
        ]
        if leftovers:
            raise SimulationError(
                f"simulation ended with incomplete launches: {sorted(leftovers)}"
            )


def reference_simulate(gpu: GPUConfig, scheduler: KernelScheduler,
                       launches: Sequence[KernelLaunch], *,
                       validate: bool = True) -> SimulationResult:
    """One-shot wrapper around :class:`ReferenceSimulator`."""
    return ReferenceSimulator(gpu, scheduler, validate=validate).run(launches)
