"""GPU architecture, timing simulation and scheduling substrate.

This package is the reproduction's stand-in for GPGPU-Sim plus the COTS
GPU testbed: configuration objects (:mod:`repro.gpu.config`), the kernel
model (:mod:`repro.gpu.kernel`), occupancy rules
(:mod:`repro.gpu.occupancy`), pluggable kernel schedulers
(:mod:`repro.gpu.scheduler`), the discrete-event simulator
(:mod:`repro.gpu.simulator`), execution traces (:mod:`repro.gpu.trace`)
and the analytic COTS end-to-end model (:mod:`repro.gpu.cots`).
"""

from repro.gpu.config import GPUConfig, SMConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch, dependent_chain
from repro.gpu.memory import (
    AccessProfile,
    L2Model,
    derive_bytes_per_block,
    derive_kernel,
)
from repro.gpu.occupancy import (
    OccupancyReport,
    blocks_per_sm,
    max_resident_blocks,
    occupancy_report,
)
from repro.gpu.reference import ReferenceSimulator, reference_simulate
from repro.gpu.simulator import GPUSimulator, SimulationResult, simulate
from repro.gpu.trace import ExecutionTrace, KernelSpan, TBRecord

__all__ = [
    "GPUConfig",
    "SMConfig",
    "KernelDescriptor",
    "KernelLaunch",
    "dependent_chain",
    "OccupancyReport",
    "blocks_per_sm",
    "max_resident_blocks",
    "occupancy_report",
    "GPUSimulator",
    "ReferenceSimulator",
    "SimulationResult",
    "simulate",
    "reference_simulate",
    "ExecutionTrace",
    "KernelSpan",
    "TBRecord",
    "AccessProfile",
    "L2Model",
    "derive_bytes_per_block",
    "derive_kernel",
]
