"""SM occupancy calculation.

Determines how many thread blocks of a kernel can be resident on one SM
simultaneously, limited by the four classic occupancy constraints: block
slots, thread count, register file and shared memory.  This is the mechanism
behind the paper's *heavy* kernel category — a kernel whose blocks exhaust
SM resources prevents a concurrently-dispatched kernel from starting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.gpu.config import GPUConfig, SMConfig
from repro.gpu.kernel import KernelDescriptor

__all__ = ["OccupancyReport", "blocks_per_sm", "occupancy_report", "max_resident_blocks"]


@dataclass(frozen=True)
class OccupancyReport:
    """Breakdown of the per-SM occupancy limits for one kernel.

    Attributes:
        blocks_limit: limit imposed by SM block slots.
        threads_limit: limit imposed by the SM thread budget.
        regs_limit: limit imposed by the register file.
        smem_limit: limit imposed by shared memory (``None`` if the kernel
            uses no shared memory, i.e. unconstrained).
        blocks_per_sm: the binding minimum of the above.
        limiter: name of the binding constraint (ties resolved in the order
            blocks, threads, registers, shared memory).
    """

    blocks_limit: int
    threads_limit: int
    regs_limit: int
    smem_limit: int | None
    blocks_per_sm: int
    limiter: str

    @property
    def occupancy(self) -> float:
        """Fraction of the SM's block slots actually usable (0..1]."""
        return self.blocks_per_sm / self.blocks_limit


def occupancy_report(kernel: KernelDescriptor, sm: SMConfig) -> OccupancyReport:
    """Compute the full occupancy breakdown of ``kernel`` on ``sm``.

    Raises:
        CapacityError: if a single block can never fit on the SM.
    """
    if kernel.threads_per_block > sm.max_threads:
        raise CapacityError(
            f"{kernel.name}: block of {kernel.threads_per_block} threads "
            f"exceeds SM limit of {sm.max_threads}"
        )
    regs_per_block = kernel.regs_per_thread * kernel.threads_per_block
    if regs_per_block > sm.registers:
        raise CapacityError(
            f"{kernel.name}: block needs {regs_per_block} registers, "
            f"SM has {sm.registers}"
        )
    if kernel.shared_mem_per_block > sm.shared_memory:
        raise CapacityError(
            f"{kernel.name}: block needs {kernel.shared_mem_per_block} B "
            f"shared memory, SM has {sm.shared_memory} B"
        )

    blocks_limit = sm.max_blocks
    threads_limit = sm.max_threads // kernel.threads_per_block
    regs_limit = sm.registers // regs_per_block if regs_per_block else sm.max_blocks
    if kernel.shared_mem_per_block:
        smem_limit: int | None = sm.shared_memory // kernel.shared_mem_per_block
    else:
        smem_limit = None

    candidates = {
        "blocks": blocks_limit,
        "threads": threads_limit,
        "registers": regs_limit,
    }
    if smem_limit is not None:
        candidates["shared_memory"] = smem_limit

    limiter = min(candidates, key=lambda k: candidates[k])
    binding = candidates[limiter]
    return OccupancyReport(
        blocks_limit=blocks_limit,
        threads_limit=threads_limit,
        regs_limit=regs_limit,
        smem_limit=smem_limit,
        blocks_per_sm=binding,
        limiter=limiter,
    )


def blocks_per_sm(kernel: KernelDescriptor, sm: SMConfig) -> int:
    """Maximum co-resident blocks of ``kernel`` on one SM (>= 1)."""
    return occupancy_report(kernel, sm).blocks_per_sm


def max_resident_blocks(kernel: KernelDescriptor, gpu: GPUConfig) -> int:
    """Maximum co-resident blocks of ``kernel`` across the whole GPU."""
    return blocks_per_sm(kernel, gpu.sm) * gpu.num_sms
