"""Analytic COTS end-to-end model (the paper's Figure 5 testbed).

Section V-B of the paper mimics SRRS on a GTX 1050 Ti by serializing the
redundant kernels with ``cudaDeviceSynchronize()`` and measures *end-to-
end* benchmark times.  The observation is that redundant-serialized
execution costs almost nothing for most benchmarks, because the GPU
protocol (transfers + kernels) is a small share of the end-to-end time;
the exceptions — cfd and streamcluster — are kernel-dominated.

We reproduce that with a transparent decomposition.  Baseline:

    t = cpu + alloc + h2d + launch_overhead + kernel + d2h

Redundant serialized (the paper's steps 1-5): allocations, transfers,
launches and kernels are paid twice — the kernel part strictly serialized
— and the DCLS cores compare both output buffers:

    t = cpu + 2*(alloc + h2d + launch_overhead + kernel + d2h) + compare

Device parameters (transfer bandwidths, launch overhead, compare rate)
are grouped in :class:`COTSDevice` with GTX-1050-Ti-flavoured defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.workloads.rodinia import COTSProfile, RodiniaBenchmark

__all__ = [
    "COTSDevice",
    "COTS_DEVICE_PRESETS",
    "cots_device_preset",
    "protocol_overhead_ms",
    "EndToEndBreakdown",
    "cots_end_to_end",
]


@dataclass(frozen=True)
class COTSDevice:
    """Host/device parameters of the COTS platform.

    Defaults are in the ballpark of the paper's testbed (AMD Ryzen 7
    1800X + GTX 1050 Ti on PCIe 3.0 x16, pageable transfers).

    Attributes:
        h2d_gbps / d2h_gbps: effective transfer bandwidths (GB/s).
        launch_overhead_ms: host-side cost per kernel-launch command.
        alloc_ms: cost per ``cudaMalloc``.
        free_ms: cost per ``cudaFree`` (0.0 by default for backward
            compatibility with profiles that fold it into ``cpu_ms``).
        compare_gbps: DCLS output-comparison throughput (GB/s); the
            comparison runs on the lockstep CPU cores.
        sync_overhead_ms: cost of the ``cudaDeviceSynchronize()`` barrier
            used to serialize the redundant kernels.
    """

    h2d_gbps: float = 6.0
    d2h_gbps: float = 6.0
    launch_overhead_ms: float = 0.008
    alloc_ms: float = 0.15
    free_ms: float = 0.0
    compare_gbps: float = 4.0
    sync_overhead_ms: float = 0.02

    def __post_init__(self) -> None:
        if min(self.h2d_gbps, self.d2h_gbps, self.compare_gbps) <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if min(self.launch_overhead_ms, self.alloc_ms, self.free_ms,
               self.sync_overhead_ms) < 0:
            raise ConfigurationError("overheads cannot be negative")

    # ------------------------------------------------------------------
    def transfer_ms(self, megabytes: float, gbps: float) -> float:
        """Milliseconds to move ``megabytes`` at ``gbps`` GB/s."""
        return megabytes / gbps / 1e3 * 1e3  # MB / (GB/s) = ms


#: Named host/device parameter sets for the vehicle-platform layer
#: (:mod:`repro.platform`): the paper's GTX-1050-Ti-flavoured defaults
#: plus a faster discrete card on a PCIe 4.0 link and a slower
#: embedded/integrated part — the heterogeneous fleet a real vehicle
#: platform mixes.
COTS_DEVICE_PRESETS: Dict[str, COTSDevice] = {
    "gtx1050ti": COTSDevice(),
    "pcie4-discrete": COTSDevice(
        h2d_gbps=12.0,
        d2h_gbps=12.0,
        launch_overhead_ms=0.004,
        alloc_ms=0.08,
        free_ms=0.0,
        compare_gbps=8.0,
        sync_overhead_ms=0.01,
    ),
    "embedded-igpu": COTSDevice(
        h2d_gbps=2.5,
        d2h_gbps=2.5,
        launch_overhead_ms=0.02,
        alloc_ms=0.4,
        free_ms=0.0,
        compare_gbps=1.5,
        sync_overhead_ms=0.05,
    ),
}


def cots_device_preset(name: str) -> COTSDevice:
    """Look up one :data:`COTS_DEVICE_PRESETS` entry.

    Raises:
        ConfigurationError: for unknown preset names.
    """
    try:
        return COTS_DEVICE_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown COTS device preset {name!r}; "
            f"known: {', '.join(sorted(COTS_DEVICE_PRESETS))}"
        ) from None


def protocol_overhead_ms(device: COTSDevice, *, input_mb: float,
                         output_mb: float, n_launches: int,
                         copies: int = 1) -> float:
    """Per-frame GPU-protocol overhead of one offload on ``device``.

    The host-side cost a frame pays on top of its simulated kernel time:
    transfers, launch commands and serialization barriers (each paid
    ``copies`` times) plus the DCLS output comparison between copies.
    This is the kernel-chain analogue of :func:`cots_end_to_end` (which
    works from a benchmark's measured :class:`COTSProfile`), used by
    :mod:`repro.platform` to make per-device service times reflect the
    device's interconnect and launch costs.
    """
    if copies < 1:
        raise ConfigurationError("protocol overhead needs copies >= 1")
    if min(input_mb, output_mb) < 0 or n_launches < 0:
        raise ConfigurationError(
            "transfer sizes and launch counts cannot be negative"
        )
    per_copy = (
        device.transfer_ms(input_mb, device.h2d_gbps)
        + device.transfer_ms(output_mb, device.d2h_gbps)
        + n_launches * (device.launch_overhead_ms + device.sync_overhead_ms)
    )
    compare = (
        device.transfer_ms(output_mb, device.compare_gbps) * (copies - 1)
    )
    return copies * per_copy + compare


@dataclass(frozen=True)
class EndToEndBreakdown:
    """End-to-end time decomposition of one benchmark run (milliseconds).

    Attributes:
        name: benchmark name.
        cpu_ms: non-replicated host-side time.
        alloc_ms / h2d_ms / launch_ms / kernel_ms / d2h_ms: GPU-protocol
            components (already multiplied by the redundancy factor).
        compare_ms: DCLS output comparison (redundant runs only).
        sync_ms: serialization-barrier overhead (redundant runs only).
    """

    name: str
    cpu_ms: float
    alloc_ms: float
    h2d_ms: float
    launch_ms: float
    kernel_ms: float
    d2h_ms: float
    compare_ms: float = 0.0
    sync_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        """Total end-to-end time."""
        return (
            self.cpu_ms + self.alloc_ms + self.h2d_ms + self.launch_ms
            + self.kernel_ms + self.d2h_ms + self.compare_ms + self.sync_ms
        )

    @property
    def gpu_protocol_ms(self) -> float:
        """Time attributable to the GPU offload protocol."""
        return self.total_ms - self.cpu_ms


def cots_end_to_end(benchmark: RodiniaBenchmark,
                    device: Optional[COTSDevice] = None, *,
                    redundant: bool = False,
                    copies: int = 2,
                    kernel_ms_override: Optional[float] = None
                    ) -> EndToEndBreakdown:
    """End-to-end execution-time model of one benchmark.

    Args:
        benchmark: the benchmark (its :class:`COTSProfile` is used).
        device: platform parameters (GTX-1050-Ti-like defaults).
        redundant: model the paper's redundant-serialized execution
            (everything GPU-side paid ``copies`` times + DCLS comparison).
        copies: redundancy degree for the redundant variant.
        kernel_ms_override: replace the profile's kernel time, e.g. with
            a simulator-derived value.

    Returns:
        The :class:`EndToEndBreakdown`; ``.total_ms`` is the Figure 5 bar.
    """
    if copies < 2 and redundant:
        raise ConfigurationError("redundant execution needs >= 2 copies")
    device = device or COTSDevice()
    profile: COTSProfile = benchmark.cots
    kernel_ms = (
        kernel_ms_override if kernel_ms_override is not None
        else profile.kernel_ms
    )
    factor = copies if redundant else 1
    h2d = device.transfer_ms(profile.input_mb, device.h2d_gbps)
    d2h = device.transfer_ms(profile.output_mb, device.d2h_gbps)
    breakdown = EndToEndBreakdown(
        name=benchmark.name,
        cpu_ms=profile.cpu_ms,
        alloc_ms=profile.alloc_buffers * device.alloc_ms * factor,
        h2d_ms=h2d * factor,
        launch_ms=profile.n_launches * device.launch_overhead_ms * factor,
        kernel_ms=kernel_ms * factor,
        d2h_ms=d2h * factor,
        compare_ms=(
            device.transfer_ms(profile.output_mb, device.compare_gbps)
            * (copies - 1)
            if redundant
            else 0.0
        ),
        sync_ms=(
            profile.n_launches * device.sync_overhead_ms * copies
            if redundant
            else 0.0
        ),
    )
    return breakdown
