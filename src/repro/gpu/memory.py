"""Cache/DRAM traffic modelling.

The simulator consumes a per-block DRAM traffic figure
(:attr:`~repro.gpu.kernel.KernelDescriptor.bytes_per_block`).  For the
Rodinia-shaped suite those figures are given directly; this module
derives them from first principles when building *new* workloads: an
:class:`AccessProfile` describes what a thread block touches, and a
capacity-based :class:`L2Model` estimates how much of it spills to DRAM.

The model is deliberately simple (no address streams): the GPU-wide L2
holds the combined working set of all concurrently-resident blocks; when
it fits, only cold misses reach DRAM; when it does not, reuse is lost
proportionally.  Inter-block sharing (halos, broadcast lookup tables —
ubiquitous in the stencil/graph kernels the paper evaluates) shrinks the
combined working set.  The SECDED ECC protecting these arrays in NVIDIA
GPUs (Section III-B of the paper) is carried as a capacity overhead knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.occupancy import blocks_per_sm

__all__ = ["AccessProfile", "L2Model", "derive_bytes_per_block",
           "derive_kernel"]


@dataclass(frozen=True)
class AccessProfile:
    """Memory behaviour of one thread block.

    Attributes:
        footprint_bytes: unique bytes the block touches (its working set).
        access_bytes: total bytes of load/store traffic the block issues
            (>= footprint; the ratio is the block's reuse).
        sharing_factor: average number of concurrently-resident blocks
            touching the same data (1.0 = fully private footprints;
            stencil halos and shared lookup tables push this above 1).
    """

    footprint_bytes: float
    access_bytes: float
    sharing_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ConfigurationError("footprint must be positive")
        if self.access_bytes < self.footprint_bytes:
            raise ConfigurationError(
                "a block cannot access fewer bytes than its footprint"
            )
        if self.sharing_factor < 1.0:
            raise ConfigurationError("sharing factor must be >= 1.0")

    @property
    def reuse(self) -> float:
        """Accesses per unique byte (>= 1)."""
        return self.access_bytes / self.footprint_bytes


@dataclass(frozen=True)
class L2Model:
    """Capacity-based shared-L2 miss model.

    Attributes:
        size_bytes: usable L2 capacity.
        ecc_overhead: fraction of capacity consumed by SECDED ECC bits
            (NVIDIA carries ECC in-band on some parts; 0 disables).
    """

    size_bytes: int = 1 << 20
    ecc_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("L2 size must be positive")
        if not (0.0 <= self.ecc_overhead < 1.0):
            raise ConfigurationError("ECC overhead must be in [0, 1)")

    @property
    def effective_size(self) -> float:
        """Capacity left for data after ECC overhead."""
        return self.size_bytes * (1.0 - self.ecc_overhead)

    def miss_ratio(self, profile: AccessProfile,
                   concurrent_blocks: int) -> float:
        """Fraction of the block's accesses that reach DRAM.

        The combined working set of ``concurrent_blocks`` resident blocks
        is ``footprint * blocks / sharing``.  Fitting working sets pay
        only cold misses (one per unique byte).  Oversubscribed working
        sets lose reuse linearly with the overflow, degrading to
        streaming (every access misses) at 2x oversubscription — a
        standard capacity-model interpolation.
        """
        if concurrent_blocks < 1:
            raise ConfigurationError("at least one resident block")
        cold = 1.0 / profile.reuse
        working_set = (
            profile.footprint_bytes * concurrent_blocks
            / profile.sharing_factor
        )
        capacity = self.effective_size
        if working_set <= capacity:
            return cold
        oversubscription = working_set / capacity
        if oversubscription >= 2.0:
            return 1.0
        # linear interpolation between cold-only and all-miss
        blend = oversubscription - 1.0  # in (0, 1)
        return cold + (1.0 - cold) * blend


def derive_bytes_per_block(profile: AccessProfile, gpu: GPUConfig,
                           kernel: KernelDescriptor,
                           l2: Optional[L2Model] = None) -> float:
    """DRAM bytes one block generates, given its profile and the L2.

    Residency is taken at full occupancy (the worst case for capacity).
    """
    l2 = l2 or L2Model()
    resident = min(
        kernel.grid_blocks, blocks_per_sm(kernel, gpu.sm) * gpu.num_sms
    )
    return profile.access_bytes * l2.miss_ratio(profile, resident)


def derive_kernel(kernel: KernelDescriptor, profile: AccessProfile,
                  gpu: GPUConfig, l2: Optional[L2Model] = None
                  ) -> KernelDescriptor:
    """Return a copy of ``kernel`` with model-derived DRAM traffic.

    Ties the memory substrate into the simulator: build the kernel with
    its compute shape, describe its access behaviour, and let the L2
    model set ``bytes_per_block``.
    """
    from dataclasses import replace

    traffic = derive_bytes_per_block(profile, gpu, kernel, l2)
    return replace(kernel, bytes_per_block=traffic)
