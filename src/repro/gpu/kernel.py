"""Kernel, grid and launch models.

A :class:`KernelDescriptor` is the static description of a CUDA-style kernel:
its grid (number of thread blocks), per-block resource footprint, and its
abstract compute/memory demand.  The simulator never executes real code —
it only needs the *shape* of the kernel (parallelism vs. resources vs. work),
which is exactly what the paper's evaluation depends on.

A :class:`KernelLaunch` is one dynamic invocation of a descriptor with an
instance identity, a *copy id* (0 for the primary, 1 for the redundant copy,
2 for a TMR third copy, ...), an arrival time or dependency set, and an
optional logical input signature used by the fault-injection machinery to
derive output signatures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["KernelDescriptor", "KernelLaunch", "dependent_chain"]


@dataclass(frozen=True)
class KernelDescriptor:
    """Static description of a GPU kernel.

    Attributes:
        name: kernel identifier (e.g. ``"hotspot/calculate_temp"``).
        grid_blocks: number of thread blocks in the launch grid.
        threads_per_block: threads per block.
        regs_per_thread: 32-bit registers used per thread.
        shared_mem_per_block: bytes of shared memory statically allocated
            per block.
        work_per_block: abstract compute work units a block must retire.
            One unit equals one cycle of a whole SM at issue throughput 1.0.
        bytes_per_block: DRAM traffic (bytes) a block generates; drained at
            the block's share of the GPU-wide DRAM bandwidth, overlapped
            with compute (GPU latency hiding).
        output_bytes: size of the kernel's result buffer, transferred back
            to the host and compared on the DCLS cores.
        input_bytes: size of input buffers transferred host-to-device.
    """

    name: str
    grid_blocks: int
    threads_per_block: int
    regs_per_thread: int = 24
    shared_mem_per_block: int = 0
    work_per_block: float = 1000.0
    bytes_per_block: float = 0.0
    output_bytes: int = 4096
    input_bytes: int = 4096

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("kernel name must be non-empty")
        if self.grid_blocks <= 0:
            raise ConfigurationError(f"{self.name}: grid must have >= 1 block")
        if self.threads_per_block <= 0:
            raise ConfigurationError(f"{self.name}: block must have >= 1 thread")
        if self.regs_per_thread < 0:
            raise ConfigurationError(f"{self.name}: negative register usage")
        if self.shared_mem_per_block < 0:
            raise ConfigurationError(f"{self.name}: negative shared memory")
        if self.work_per_block < 0 or self.bytes_per_block < 0:
            raise ConfigurationError(f"{self.name}: negative work demand")
        if self.work_per_block == 0 and self.bytes_per_block == 0:
            raise ConfigurationError(f"{self.name}: kernel performs no work")
        if self.output_bytes < 0 or self.input_bytes < 0:
            raise ConfigurationError(f"{self.name}: negative buffer size")

    # ------------------------------------------------------------------
    @property
    def total_threads(self) -> int:
        """Total threads across the grid."""
        return self.grid_blocks * self.threads_per_block

    @property
    def total_work(self) -> float:
        """Aggregate compute work units of the whole grid."""
        return self.grid_blocks * self.work_per_block

    @property
    def total_bytes(self) -> float:
        """Aggregate DRAM traffic of the whole grid."""
        return self.grid_blocks * self.bytes_per_block

    def scaled(self, factor: float, name: Optional[str] = None) -> "KernelDescriptor":
        """Return a copy with per-block work/traffic scaled by ``factor``.

        Useful for parameter sweeps (E9) and synthetic workload generation.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            name=name or self.name,
            work_per_block=self.work_per_block * factor,
            bytes_per_block=self.bytes_per_block * factor,
        )

    def with_grid(self, grid_blocks: int) -> "KernelDescriptor":
        """Return a copy with a different grid size (same per-block shape)."""
        return replace(self, grid_blocks=grid_blocks)

    def ideal_cycles(self, num_sms: int, issue_throughput: float = 1.0,
                     dram_bandwidth: float = float("inf"),
                     blocks_per_sm: Optional[int] = None) -> float:
        """Lower-bound execution cycles on an idle GPU slice.

        Computed as the max of the compute-throughput bound, the wave-count
        bound (blocks execute in waves of ``num_sms * blocks_per_sm``) and
        the DRAM-bandwidth bound.  Used by the kernel classifier and by
        tests as an analytic cross-check of the simulator.
        """
        if num_sms <= 0:
            raise ConfigurationError("num_sms must be positive")
        compute_bound = self.total_work / (num_sms * issue_throughput)
        dram_bound = self.total_bytes / dram_bandwidth if self.total_bytes else 0.0
        if blocks_per_sm is not None and blocks_per_sm > 0:
            waves = math.ceil(self.grid_blocks / (num_sms * blocks_per_sm))
            wave_bound = waves * self.work_per_block / issue_throughput
        else:
            wave_bound = self.work_per_block / issue_throughput
        return max(compute_bound, wave_bound, dram_bound)


@dataclass(frozen=True)
class KernelLaunch:
    """One dynamic kernel invocation submitted to the simulator.

    Attributes:
        kernel: the static kernel descriptor.
        instance_id: unique identity of this launch within a workload.
        copy_id: redundancy copy index (0 = primary, 1 = redundant, ...).
        arrival_offset: cycles added after the launch becomes *ready*.
            For a launch without dependencies, readiness is time 0, so this
            is the absolute arrival time at the GPU's kernel scheduler.
        depends_on: instance ids that must complete before this launch is
            dispatched (models in-stream ordering of multi-kernel apps).
        logical_id: identity of the *logical* computation; the redundant
            copies of one computation share a ``logical_id`` so traces and
            comparators can pair them up.
        tag: free-form label (e.g. benchmark name) carried into traces.
    """

    kernel: KernelDescriptor
    instance_id: int
    copy_id: int = 0
    arrival_offset: float = 0.0
    depends_on: Tuple[int, ...] = ()
    logical_id: Optional[int] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.instance_id < 0:
            raise ConfigurationError("instance_id must be non-negative")
        if self.copy_id < 0:
            raise ConfigurationError("copy_id must be non-negative")
        if self.arrival_offset < 0:
            raise ConfigurationError("arrival_offset cannot be negative")
        if self.instance_id in self.depends_on:
            raise ConfigurationError("a launch cannot depend on itself")
        if self.logical_id is None:
            object.__setattr__(self, "logical_id", self.instance_id)


def dependent_chain(kernels: Sequence[KernelDescriptor], *, copy_id: int = 0,
                    first_instance_id: int = 0, logical_base: int = 0,
                    gap: float = 0.0, tag: str = "") -> list:
    """Build a serially-dependent chain of launches (a single CUDA stream).

    Launch *i+1* depends on launch *i*; the first launch is ready at time 0
    (plus ``gap``).  ``logical_base + i`` is assigned as the logical id so a
    redundant chain built with the same base pairs up launch-by-launch.

    Returns:
        list[KernelLaunch] in submission order.
    """
    launches = []
    prev: Optional[int] = None
    for i, kd in enumerate(kernels):
        iid = first_instance_id + i
        launches.append(
            KernelLaunch(
                kernel=kd,
                instance_id=iid,
                copy_id=copy_id,
                arrival_offset=gap,
                depends_on=(prev,) if prev is not None else (),
                logical_id=logical_base + i,
                tag=tag,
            )
        )
        prev = iid
    return launches
