"""Workload models: the Rodinia-shaped suite, synthetic generators and the
Figure 3 kernel classifier."""

from repro.workloads.adas import (
    ADAS_TASKS,
    AdasTask,
    TaskSchedule,
    schedulability_report,
)
from repro.workloads.classify import (
    ClassificationReport,
    KernelCategory,
    classify_kernel,
    recommend_policy,
)
from repro.workloads.rodinia import (
    FIG4_BENCHMARKS,
    FIG5_BENCHMARKS,
    COTSProfile,
    RodiniaBenchmark,
    all_benchmarks,
    get_benchmark,
)
from repro.workloads.synthetic import (
    make_friendly_kernel,
    make_heavy_kernel,
    make_narrow_kernel,
    make_short_kernel,
    random_kernel,
)

__all__ = [
    "AdasTask",
    "TaskSchedule",
    "ADAS_TASKS",
    "schedulability_report",
    "KernelCategory",
    "ClassificationReport",
    "classify_kernel",
    "recommend_policy",
    "COTSProfile",
    "RodiniaBenchmark",
    "FIG4_BENCHMARKS",
    "FIG5_BENCHMARKS",
    "get_benchmark",
    "all_benchmarks",
    "make_short_kernel",
    "make_heavy_kernel",
    "make_friendly_kernel",
    "make_narrow_kernel",
    "random_kernel",
]
