"""ADAS task library and redundant-execution schedulability analysis.

The paper's motivation is *critical real-time* autonomous driving: object
recognition and tracking must complete every frame, redundantly, with
errors handled inside the FTTI.  This module provides the workload side
of that story:

* :class:`AdasTask` — a periodic GPU offload (kernel chain + period +
  ASIL + FTTI), with a small library of representative tasks (camera
  perception, radar CFAR, lidar segmentation, trajectory scoring) whose
  shapes follow the paper's introduction;
* :func:`schedulability_report` — checks that the task's *redundant*
  execution fits its period and that detection + re-execution recovery
  fits its FTTI, using both the simulator (observed) and the analytic
  bounds of :mod:`repro.analysis.bounds` (guaranteed, policy-dependent).

This is where the scheduling policies earn their keep twice: they give
the diversity ISO 26262 demands *and* the compositional timing bounds a
real-time argument needs (the default policy provides neither).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.analysis.bounds import half_chain_bound, srrs_chain_bound
from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.scheduler.base import KernelScheduler
from repro.iso26262.asil import Asil
from repro.iso26262.fault_model import FaultHandlingTimeline, Ftti
from repro.redundancy.manager import RedundantKernelManager

__all__ = [
    "AdasTask",
    "TaskSchedule",
    "schedulability_report",
    "CAMERA_PERCEPTION",
    "RADAR_CFAR",
    "LIDAR_SEGMENTATION",
    "TRAJECTORY_SCORING",
    "ADAS_TASKS",
]


@dataclass(frozen=True)
class AdasTask:
    """A periodic safety-critical GPU offload.

    Attributes:
        name: task name.
        kernels: the per-activation kernel chain.
        period_ms: activation period (e.g. 33.3 ms at 30 fps).
        asil: integrity level from the hazard analysis.
        ftti: fault-tolerant time interval of the associated safety goal.
        policy: recommended scheduling policy (from the analysis phase).
    """

    name: str
    kernels: Tuple[KernelDescriptor, ...]
    period_ms: float
    asil: Asil
    ftti: Ftti
    policy: str = "half"

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ConfigurationError(f"{self.name}: empty kernel chain")
        if self.period_ms <= 0:
            raise ConfigurationError(f"{self.name}: period must be positive")
        if self.policy not in ("srrs", "half"):
            raise ConfigurationError(
                f"{self.name}: safety tasks must use a diverse policy, "
                f"not {self.policy!r}"
            )


@dataclass(frozen=True)
class TaskSchedule:
    """Schedulability verdict of one task under one policy.

    Attributes:
        task: the analysed task.
        policy: policy label used.
        observed_ms: simulated redundant makespan per activation.
        bound_ms: analytic worst-case makespan (sound for SRRS/HALF).
        utilization: bound over period.
        recovery: fault-handling timeline assuming detection at the end
            of the redundant pass and one full re-execution as recovery.
    """

    task: AdasTask
    policy: str
    observed_ms: float
    bound_ms: float
    utilization: float
    recovery: FaultHandlingTimeline

    @property
    def schedulable(self) -> bool:
        """True when the worst-case redundant pass fits the period."""
        return self.bound_ms <= self.task.period_ms

    @property
    def recoverable_in_ftti(self) -> bool:
        """True when detect + re-execute completes inside the FTTI."""
        return self.recovery.within(self.task.ftti)

    @property
    def deployable(self) -> bool:
        """Schedulable *and* recoverable — the deployment gate."""
        return self.schedulable and self.recoverable_in_ftti

    def summary(self) -> str:
        """One-line verdict for reports."""
        return (
            f"{self.task.name:20s} {self.policy:5s} "
            f"observed={self.observed_ms:7.3f}ms "
            f"bound={self.bound_ms:7.3f}ms "
            f"util={self.utilization:5.1%} "
            f"schedulable={self.schedulable} "
            f"ftti_ok={self.recoverable_in_ftti}"
        )


def schedulability_report(task: AdasTask, gpu: GPUConfig, *,
                          policy: Optional[Union[str, KernelScheduler]] = None,
                          copies: int = 2) -> TaskSchedule:
    """Analyse one task's redundant execution under a policy.

    Args:
        task: the ADAS task.
        gpu: platform configuration.
        policy: override the task's recommended policy (name or
            instance); SRRS/HALF only — the analytic bound does not exist
            for the default policy.
        copies: redundancy degree.

    Returns:
        The :class:`TaskSchedule` verdict.

    Raises:
        ConfigurationError: for policies without a sound bound.
    """
    chosen = policy if policy is not None else task.policy
    label = chosen if isinstance(chosen, str) else chosen.name
    kernels = list(task.kernels)
    if label == "srrs":
        bound_cycles = srrs_chain_bound(kernels, gpu, copies=copies)
    elif label == "half":
        bound_cycles = half_chain_bound(kernels, gpu, partitions=max(copies, 2))
    else:
        raise ConfigurationError(
            f"no sound timing bound exists for policy {label!r}; "
            "use srrs or half for schedulability claims"
        )

    manager = RedundantKernelManager(gpu, chosen if policy is not None
                                     else label, copies=copies)
    run = manager.run(kernels, tag=task.name)
    observed_ms = gpu.cycles_to_ms(run.makespan)
    bound_ms = gpu.cycles_to_ms(bound_cycles)
    recovery = FaultHandlingTimeline(
        detected_at=bound_ms,              # mismatch seen at pass end
        handled_at=bound_ms + bound_ms,    # one full redundant re-execution
    )
    return TaskSchedule(
        task=task,
        policy=label,
        observed_ms=observed_ms,
        bound_ms=bound_ms,
        utilization=bound_ms / task.period_ms,
        recovery=recovery,
    )


def _k(name: str, grid: int, tpb: int, work: float, mem: float,
       smem: int = 0) -> KernelDescriptor:
    return KernelDescriptor(
        name=name, grid_blocks=grid, threads_per_block=tpb,
        shared_mem_per_block=smem, work_per_block=work, bytes_per_block=mem,
        input_bytes=1 << 20, output_bytes=1 << 16,
    )


#: 30 fps camera object detection/tracking (the paper's motivating load).
CAMERA_PERCEPTION = AdasTask(
    name="camera-perception",
    kernels=(
        _k("camera/preprocess", 24, 256, 1500.0, 4000.0),
        _k("camera/detect", 36, 256, 6000.0, 2500.0, smem=8192),
        _k("camera/track", 12, 128, 2500.0, 1000.0),
    ),
    period_ms=33.3,
    asil=Asil.D,
    ftti=Ftti(100.0),
    policy="half",
)

#: 20 Hz radar constant-false-alarm-rate detection (short, wide kernels).
RADAR_CFAR = AdasTask(
    name="radar-cfar",
    kernels=(
        _k("radar/fft", 32, 256, 500.0, 1500.0),
        _k("radar/cfar", 32, 256, 400.0, 800.0),
    ),
    period_ms=50.0,
    asil=Asil.D,
    ftti=Ftti(150.0),
    policy="srrs",
)

#: 10 Hz lidar ground/object segmentation (friendly, machine-filling).
LIDAR_SEGMENTATION = AdasTask(
    name="lidar-segmentation",
    kernels=(
        _k("lidar/voxelize", 30, 256, 3000.0, 5000.0),
        _k("lidar/segment", 36, 256, 8000.0, 3000.0, smem=16384),
    ),
    period_ms=100.0,
    asil=Asil.D,
    ftti=Ftti(200.0),
    policy="half",
)

#: 10 Hz trajectory candidate scoring (narrow, long — myocyte-like).
TRAJECTORY_SCORING = AdasTask(
    name="trajectory-scoring",
    kernels=(
        _k("plan/score", 3, 128, 30000.0, 2000.0),
    ),
    period_ms=100.0,
    asil=Asil.C,
    ftti=Ftti(250.0),
    policy="half",
)

#: The full task set, in descending criticality order.
ADAS_TASKS: Tuple[AdasTask, ...] = (
    CAMERA_PERCEPTION,
    RADAR_CFAR,
    LIDAR_SEGMENTATION,
    TRAJECTORY_SCORING,
)
