"""Parametric synthetic kernel generators.

Used by tests, property-based checks and the Figure 3 / ablation benches
to produce kernels with *known* category membership, independent of the
Rodinia-shaped suite.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.occupancy import blocks_per_sm

__all__ = [
    "make_short_kernel",
    "make_heavy_kernel",
    "make_friendly_kernel",
    "make_narrow_kernel",
    "random_kernel",
]


def make_short_kernel(gpu: GPUConfig, *, name: str = "synthetic/short",
                      width_fraction: float = 1.0) -> KernelDescriptor:
    """A kernel that finishes before the redundant copy is dispatched.

    Args:
        gpu: target GPU (the dispatch latency bounds the execution time).
        width_fraction: fraction of the GPU's SMs the grid spans (1.0 =
            wider than half, the paper's backprop/bfs case).
    """
    if not (0.0 < width_fraction <= 1.0):
        raise ConfigurationError("width_fraction must be in (0, 1]")
    tpb = 256
    per_sm = blocks_per_sm(
        KernelDescriptor(name=name, grid_blocks=1, threads_per_block=tpb,
                         work_per_block=1.0),
        gpu.sm,
    )
    grid = max(1, int(gpu.num_sms * width_fraction)) * min(per_sm, 2)
    # keep the per-SM drain time safely below the dispatch gap
    waves = max(1, -(-grid // gpu.num_sms))
    work = 0.4 * gpu.dispatch_latency / waves * gpu.sm.issue_throughput
    return KernelDescriptor(
        name=name, grid_blocks=grid, threads_per_block=tpb,
        work_per_block=max(work, 1.0),
    )


def make_heavy_kernel(gpu: GPUConfig, *, name: str = "synthetic/heavy"
                      ) -> KernelDescriptor:
    """A kernel whose single copy fills the whole GPU's block residency.

    The grid equals the GPU's total resident-block capacity and each block
    runs long, so a concurrently-dispatched copy cannot start until the
    first drains — the paper's "heavy" case.
    """
    tpb = 192
    probe = KernelDescriptor(name=name, grid_blocks=1, threads_per_block=tpb,
                             work_per_block=1.0)
    capacity = blocks_per_sm(probe, gpu.sm) * gpu.num_sms
    work = 12.0 * gpu.dispatch_latency * gpu.sm.issue_throughput
    return KernelDescriptor(
        name=name, grid_blocks=capacity, threads_per_block=tpb,
        work_per_block=work,
    )


def make_friendly_kernel(gpu: GPUConfig, *, name: str = "synthetic/friendly",
                         waves: int = 2) -> KernelDescriptor:
    """A long-running kernel that leaves room for a concurrent copy.

    Spans all SMs with modest co-residency (one block per SM per wave) and
    runs well past the dispatch latency, so both copies make progress
    concurrently — the paper's "friendly" case.
    """
    if waves < 1:
        raise ConfigurationError("waves must be >= 1")
    grid = gpu.num_sms * waves
    work = 4.0 * gpu.dispatch_latency * gpu.sm.issue_throughput
    # modest footprint (threads and registers) so a redundant copy finds
    # free co-residency slots — the defining property of "friendly"
    return KernelDescriptor(
        name=name, grid_blocks=grid, threads_per_block=256,
        regs_per_thread=16, work_per_block=work,
    )


def make_narrow_kernel(gpu: GPUConfig, *, name: str = "synthetic/narrow",
                       blocks: Optional[int] = None) -> KernelDescriptor:
    """A kernel using at most half the SMs (myocyte-like when long).

    Args:
        blocks: grid size; defaults to half the SM count (minimum 1).
    """
    grid = blocks if blocks is not None else max(1, gpu.num_sms // 2)
    if grid > gpu.num_sms // 2 and gpu.num_sms > 1:
        raise ConfigurationError(
            f"narrow kernel must use <= half the SMs ({gpu.num_sms // 2})"
        )
    work = 20.0 * gpu.dispatch_latency * gpu.sm.issue_throughput
    return KernelDescriptor(
        name=name, grid_blocks=grid, threads_per_block=128,
        work_per_block=work,
    )


def random_kernel(rng: random.Random, gpu: GPUConfig, *,
                  name: str = "synthetic/random") -> KernelDescriptor:
    """A random valid kernel for property-based testing.

    Guaranteed to fit on the GPU (threads/registers/shared memory within
    a single SM's budget).

    Raises:
        ConfigurationError: when ``rng`` is not a :class:`random.Random`
            instance — in particular when the ``random`` *module* is
            passed, which would silently fall back to the process-global
            RNG and break run-to-run reproducibility.
    """
    if not isinstance(rng, random.Random):
        kind = "the random module" if rng is random else type(rng).__name__
        raise ConfigurationError(
            f"random_kernel needs an explicit seeded random.Random "
            f"instance, got {kind} — the process-global RNG is banned "
            "(repro-lint RL001)"
        )
    tpb = rng.choice([32, 64, 128, 192, 256, 384, 512])
    tpb = min(tpb, gpu.sm.max_threads)
    max_regs = max(1, gpu.sm.registers // tpb)
    regs = rng.randint(1, min(64, max_regs))
    smem = rng.choice([0, 0, 4096, 8192, 16384])
    smem = min(smem, gpu.sm.shared_memory)
    return KernelDescriptor(
        name=name,
        grid_blocks=rng.randint(1, 64),
        threads_per_block=tpb,
        regs_per_thread=regs,
        shared_mem_per_block=smem,
        work_per_block=float(rng.randint(50, 20000)),
        bytes_per_block=float(rng.choice([0, 500, 2000, 8000])),
    )
