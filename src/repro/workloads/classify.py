"""Kernel taxonomy — the paper's Figure 3 categories.

Section IV-B classifies kernels by how a redundant pair can share the GPU:

* **short** — "execute too fast to overlap practically": the first copy
  finishes before the second is even dispatched;
* **heavy** — "coexist in the GPU, but a single kernel uses too many
  resources to allow the other to start": no or marginal overlap;
* **friendly** — "coexist in the GPU and use limited resources so that
  both kernels can make progress concurrently".

Classification is *empirical*, as in the paper's analysis phase: launch a
redundant pair under the unconstrained default policy and measure (a) the
isolated execution time against the dispatch latency and (b) the achieved
co-residency overlap.  The result feeds the policy recommendation of
Section IV-D (SRRS for short/heavy, HALF for friendly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.occupancy import blocks_per_sm
from repro.gpu.scheduler.default import DefaultScheduler
from repro.gpu.simulator import GPUSimulator

__all__ = ["KernelCategory", "ClassificationReport", "classify_kernel",
           "recommend_policy"]

#: Overlap fraction below which co-existing kernels count as non-overlapping.
OVERLAP_THRESHOLD = 0.05


class KernelCategory(enum.Enum):
    """The paper's Figure 3 kernel categories."""

    SHORT = "short"
    HEAVY = "heavy"
    FRIENDLY = "friendly"


@dataclass(frozen=True)
class ClassificationReport:
    """Evidence backing one kernel's classification.

    Attributes:
        kernel_name: the classified kernel.
        category: resulting category.
        isolated_cycles: execution time of one copy alone on the GPU.
        dispatch_latency: the GPU's serial-dispatch gap.
        overlap_fraction: co-residency overlap of a redundant pair under
            the default policy, as a fraction of the shorter copy's
            execution time.
        resident_fraction: fraction of the GPU's block-residency capacity
            a single copy can occupy (resource pressure).
    """

    kernel_name: str
    category: KernelCategory
    isolated_cycles: float
    dispatch_latency: float
    overlap_fraction: float
    resident_fraction: float


def classify_kernel(kernel: KernelDescriptor, gpu: GPUConfig
                    ) -> ClassificationReport:
    """Classify one kernel per the paper's Figure 3 taxonomy.

    Runs two tiny simulations under the default policy: the kernel alone
    (isolated time) and a redundant pair (achievable overlap).

    Returns:
        A :class:`ClassificationReport` with the category and evidence.
    """
    solo = GPUSimulator(gpu, DefaultScheduler()).run(
        [KernelLaunch(kernel=kernel, instance_id=0, copy_id=0, logical_id=0)]
    )
    isolated = solo.trace.span(0).exec_time

    pair = GPUSimulator(gpu, DefaultScheduler()).run(
        [
            KernelLaunch(kernel=kernel, instance_id=0, copy_id=0, logical_id=0),
            KernelLaunch(kernel=kernel, instance_id=1, copy_id=1, logical_id=0),
        ]
    )
    overlap = pair.trace.overlap_cycles(0, 1)
    shorter = min(
        pair.trace.span(0).exec_time, pair.trace.span(1).exec_time
    )
    overlap_fraction = overlap / shorter if shorter > 0 else 0.0

    capacity = blocks_per_sm(kernel, gpu.sm) * gpu.num_sms
    resident_fraction = min(1.0, kernel.grid_blocks / capacity)

    if overlap_fraction < OVERLAP_THRESHOLD:
        if isolated <= gpu.dispatch_latency:
            category = KernelCategory.SHORT
        else:
            category = KernelCategory.HEAVY
    else:
        category = KernelCategory.FRIENDLY

    return ClassificationReport(
        kernel_name=kernel.name,
        category=category,
        isolated_cycles=isolated,
        dispatch_latency=gpu.dispatch_latency,
        overlap_fraction=overlap_fraction,
        resident_fraction=resident_fraction,
    )


def recommend_policy(category: KernelCategory) -> str:
    """The paper's Section IV-D policy recommendation per category.

    SRRS costs nothing for kernels that never overlap anyway (short) or
    barely overlap (heavy); HALF preserves the concurrency that friendly
    kernels would otherwise lose to serialization.
    """
    if category in (KernelCategory.SHORT, KernelCategory.HEAVY):
        return "srrs"
    return "half"
