"""Rodinia-like benchmark descriptors.

The paper evaluates with the Rodinia heterogeneous-computing suite [12],
[13]: eleven benchmarks on GPGPU-Sim (Figure 4) and the full suite on a
GTX 1050 Ti (Figure 5).  The CUDA sources are not available offline, so —
per the substitution rule in DESIGN.md — each benchmark is modelled as a
*kernel chain* (grid sizes, block sizes, resource footprints, abstract
compute/memory demand per block) plus a *COTS profile* (host-side CPU/IO
time, transfer volumes, launch counts, kernel milliseconds).

Shapes are synthesized from the public Rodinia characterisation
literature and the paper's own discussion:

* ``backprop`` / ``bfs`` — very short kernels whose grids need more than
  half of the SMs (the paper's exceptions where HALF hurts and SRRS is
  innocuous);
* ``gaussian`` / ``nn`` / ``nw`` — short or narrow kernels fitting in half
  the machine;
* ``hotspot`` / ``hotspot3D`` / ``dwt2d`` / ``leukocyte`` — friendly,
  machine-saturating kernels;
* ``lud`` — a triangular multi-launch mixture (the paper's 10 % HALF
  worst case);
* ``myocyte`` — almost no thread-level parallelism, so serialization
  doubles its time (the paper's 99 % SRRS worst case);
* ``cfd`` / ``streamcluster`` — kernel-dominated end-to-end times (the
  only two benchmarks whose redundant-serialized COTS execution is
  noticeably slower in Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.kernel import KernelDescriptor

__all__ = [
    "COTSProfile",
    "RodiniaBenchmark",
    "FIG4_BENCHMARKS",
    "FIG5_BENCHMARKS",
    "get_benchmark",
    "all_benchmarks",
]


@dataclass(frozen=True)
class COTSProfile:
    """End-to-end (Figure 5) profile of one benchmark on the COTS box.

    All times in milliseconds, volumes in megabytes; values are
    per-*benchmark-run* totals.

    Attributes:
        cpu_ms: host-side work outside the GPU protocol (file I/O, setup,
            CPU phases) — paid once, never replicated.
        kernel_ms: GPU kernel execution time of the whole chain.
        input_mb / output_mb: H2D / D2H transfer volumes.
        n_launches: CUDA kernel-launch commands issued.
        alloc_buffers: device allocations performed.
    """

    cpu_ms: float
    kernel_ms: float
    input_mb: float
    output_mb: float
    n_launches: int
    alloc_buffers: int = 4

    def __post_init__(self) -> None:
        if min(self.cpu_ms, self.kernel_ms, self.input_mb, self.output_mb) < 0:
            raise ConfigurationError("COTS profile values cannot be negative")
        if self.n_launches <= 0 or self.alloc_buffers <= 0:
            raise ConfigurationError("launch/alloc counts must be positive")


@dataclass(frozen=True)
class RodiniaBenchmark:
    """One benchmark: its kernel chain and COTS profile.

    Attributes:
        name: Rodinia benchmark name.
        kernels: launch chain simulated for Figure 4 (empty for
            benchmarks only present in the COTS Figure 5 evaluation).
        cots: end-to-end profile for Figure 5.
        category: expected Figure 3 category (``"short"``, ``"heavy"``,
            ``"friendly"``) of the dominant kernel — used as a
            cross-check by the classifier tests.
    """

    name: str
    kernels: Tuple[KernelDescriptor, ...]
    cots: COTSProfile
    category: str = "friendly"

    def __post_init__(self) -> None:
        if self.category not in ("short", "heavy", "friendly"):
            raise ConfigurationError(f"unknown category {self.category!r}")

    @property
    def in_fig4(self) -> bool:
        """Whether the benchmark has a simulated kernel chain."""
        return bool(self.kernels)


def _k(name: str, grid: int, tpb: int, work: float, mem: float = 0.0,
       regs: int = 24, smem: int = 0) -> KernelDescriptor:
    """Shorthand kernel constructor used by the suite tables."""
    return KernelDescriptor(
        name=name,
        grid_blocks=grid,
        threads_per_block=tpb,
        regs_per_thread=regs,
        shared_mem_per_block=smem,
        work_per_block=work,
        bytes_per_block=mem,
    )


def _backprop() -> RodiniaBenchmark:
    # two wide, very short kernels: grids need > half the SMs, but each
    # kernel finishes before the redundant copy is even dispatched.
    kernels = (
        _k("backprop/layerforward", grid=32, tpb=256, work=400.0, mem=600.0, smem=8192),
        _k("backprop/adjust_weights", grid=32, tpb=256, work=350.0, mem=800.0),
    )
    return RodiniaBenchmark(
        name="backprop",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=720.0, kernel_ms=14.0, input_mb=72.0,
                         output_mb=36.0, n_launches=2),
        category="short",
    )


def _bfs() -> RodiniaBenchmark:
    # iterative frontier expansion: 8 iterations of two tiny kernels,
    # each wider than half the machine.
    iteration = (
        _k("bfs/kernel1", grid=16, tpb=512, work=250.0, mem=900.0),
        _k("bfs/kernel2", grid=16, tpb=512, work=180.0, mem=500.0),
    )
    return RodiniaBenchmark(
        name="bfs",
        kernels=iteration * 8,
        cots=COTSProfile(cpu_ms=900.0, kernel_ms=16.0, input_mb=120.0,
                         output_mb=8.0, n_launches=16),
        category="short",
    )


def _dwt2d() -> RodiniaBenchmark:
    kernels = (
        _k("dwt2d/fdwt_vertical", grid=30, tpb=192, work=4200.0, mem=2500.0, smem=12288),
        _k("dwt2d/fdwt_horizontal", grid=30, tpb=192, work=3800.0, mem=2200.0, smem=12288),
        _k("dwt2d/fdwt_vertical", grid=24, tpb=192, work=2600.0, mem=1500.0, smem=12288),
        _k("dwt2d/fdwt_horizontal", grid=24, tpb=192, work=2400.0, mem=1400.0, smem=12288),
    )
    return RodiniaBenchmark(
        name="dwt2d",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=480.0, kernel_ms=22.0, input_mb=48.0,
                         output_mb=48.0, n_launches=4),
        category="friendly",
    )


def _gaussian() -> RodiniaBenchmark:
    # elimination loop: many tiny, narrow launches (Fan1 grid 2, Fan2
    # grid 3) that fit comfortably in half the machine.
    iteration = (
        _k("gaussian/fan1", grid=2, tpb=512, work=160.0, mem=250.0),
        _k("gaussian/fan2", grid=3, tpb=512, work=300.0, mem=700.0),
    )
    return RodiniaBenchmark(
        name="gaussian",
        kernels=iteration * 12,
        cots=COTSProfile(cpu_ms=380.0, kernel_ms=18.0, input_mb=16.0,
                         output_mb=16.0, n_launches=24),
        category="short",
    )


def _hotspot() -> RodiniaBenchmark:
    kernels = tuple(
        _k("hotspot/calculate_temp", grid=36, tpb=256, work=4000.0,
           mem=3000.0, smem=12288)
        for _ in range(3)
    )
    return RodiniaBenchmark(
        name="hotspot",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=340.0, kernel_ms=26.0, input_mb=32.0,
                         output_mb=16.0, n_launches=3),
        category="friendly",
    )


def _hotspot3d() -> RodiniaBenchmark:
    kernels = tuple(
        _k("hotspot3D/hotspotOpt1", grid=48, tpb=256, work=3200.0, mem=4200.0)
        for _ in range(4)
    )
    return RodiniaBenchmark(
        name="hotspot3D",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=520.0, kernel_ms=34.0, input_mb=96.0,
                         output_mb=32.0, n_launches=4),
        category="friendly",
    )


def _leukocyte() -> RodiniaBenchmark:
    kernels = (
        _k("leukocyte/GICOV", grid=36, tpb=176, work=22000.0, mem=5200.0),
        _k("leukocyte/dilate", grid=36, tpb=176, work=9000.0, mem=4200.0),
        _k("leukocyte/IMGVF", grid=30, tpb=128, work=26000.0, mem=6000.0, smem=16384),
    )
    return RodiniaBenchmark(
        name="leukocyte",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=7800.0, kernel_ms=280.0, input_mb=220.0,
                         output_mb=24.0, n_launches=600),
        category="friendly",
    )


def _lud() -> RodiniaBenchmark:
    # triangular factorisation: per step a 1-block diagonal, a small
    # perimeter and a shrinking internal grid; internal grids of 4-6
    # blocks are where HALF pays its (mild) price.
    chain: List[KernelDescriptor] = []
    for k in (6, 5, 4, 3, 2):
        chain.append(_k("lud/diagonal", grid=1, tpb=256, work=1200.0, smem=8192))
        chain.append(
            _k("lud/perimeter", grid=k - 1, tpb=256, work=2200.0,
               mem=900.0, smem=16384)
        )
        chain.append(
            _k("lud/internal", grid=(k - 1) * (k - 1), tpb=256, work=3400.0,
               mem=1500.0, smem=8192)
        )
    chain.append(_k("lud/diagonal", grid=1, tpb=256, work=1200.0, smem=8192))
    return RodiniaBenchmark(
        name="lud",
        kernels=tuple(chain),
        cots=COTSProfile(cpu_ms=420.0, kernel_ms=30.0, input_mb=32.0,
                         output_mb=32.0, n_launches=16),
        category="friendly",
    )


def _myocyte() -> RodiniaBenchmark:
    # notoriously serial: a single 2-block grid, long-running kernel —
    # the paper's 99 % SRRS outlier.
    kernels = (
        _k("myocyte/solver", grid=2, tpb=128, work=250000.0, mem=9000.0),
    )
    return RodiniaBenchmark(
        name="myocyte",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=900.0, kernel_ms=360.0, input_mb=2.0,
                         output_mb=2.0, n_launches=1),
        category="friendly",
    )


def _nn() -> RodiniaBenchmark:
    kernels = (_k("nn/euclid", grid=3, tpb=256, work=500.0, mem=1200.0),)
    return RodiniaBenchmark(
        name="nn",
        kernels=kernels,
        cots=COTSProfile(cpu_ms=260.0, kernel_ms=2.0, input_mb=20.0,
                         output_mb=1.0, n_launches=1),
        category="short",
    )


def _nw() -> RodiniaBenchmark:
    # wavefront over the anti-diagonals: grids grow then shrink; the
    # narrow head/tail diagonals underuse the machine, which is where
    # SRRS's serialization costs and HALF stays nearly free.
    chain: List[KernelDescriptor] = []
    for grid in (2, 4, 6, 6, 4, 2):
        chain.append(
            _k("nw/needle", grid=grid, tpb=32, work=6000.0, mem=1100.0,
               smem=8448)
        )
    return RodiniaBenchmark(
        name="nw",
        kernels=tuple(chain),
        cots=COTSProfile(cpu_ms=310.0, kernel_ms=18.0, input_mb=64.0,
                         output_mb=64.0, n_launches=6),
        category="friendly",
    )


# ----------------------------------------------------------------------
# COTS-only profiles (Figure 5 benchmarks without a simulated chain)
# ----------------------------------------------------------------------
def _cots_only(name: str, cpu_ms: float, kernel_ms: float, input_mb: float,
               output_mb: float, n_launches: int,
               category: str = "friendly") -> RodiniaBenchmark:
    return RodiniaBenchmark(
        name=name,
        kernels=(),
        cots=COTSProfile(cpu_ms=cpu_ms, kernel_ms=kernel_ms,
                         input_mb=input_mb, output_mb=output_mb,
                         n_launches=n_launches),
        category=category,
    )


def _suite() -> Dict[str, RodiniaBenchmark]:
    benchmarks = [
        _backprop(),
        _bfs(),
        _dwt2d(),
        _gaussian(),
        _hotspot(),
        _hotspot3d(),
        _leukocyte(),
        _lud(),
        _myocyte(),
        _nn(),
        _nw(),
        # Figure-5-only benchmarks: cfd and streamcluster are the paper's
        # two kernel-dominated outliers; the rest are host-dominated.
        _cots_only("b+tree", cpu_ms=1450.0, kernel_ms=24.0, input_mb=160.0,
                   output_mb=12.0, n_launches=2),
        _cots_only("cfd", cpu_ms=320.0, kernel_ms=3400.0, input_mb=92.0,
                   output_mb=92.0, n_launches=12000),
        _cots_only("heartwall", cpu_ms=1650.0, kernel_ms=180.0,
                   input_mb=280.0, output_mb=8.0, n_launches=104),
        _cots_only("hybridsort", cpu_ms=830.0, kernel_ms=95.0,
                   input_mb=128.0, output_mb=128.0, n_launches=14),
        _cots_only("kmeans", cpu_ms=1240.0, kernel_ms=130.0, input_mb=200.0,
                   output_mb=24.0, n_launches=40),
        _cots_only("lavaMD", cpu_ms=610.0, kernel_ms=210.0, input_mb=48.0,
                   output_mb=48.0, n_launches=1),
        _cots_only("particlefilter", cpu_ms=740.0, kernel_ms=110.0,
                   input_mb=64.0, output_mb=16.0, n_launches=36),
        _cots_only("pathfinder", cpu_ms=450.0, kernel_ms=28.0,
                   input_mb=96.0, output_mb=2.0, n_launches=5),
        _cots_only("srad", cpu_ms=980.0, kernel_ms=150.0, input_mb=96.0,
                   output_mb=96.0, n_launches=8),
        _cots_only("streamcluster", cpu_ms=620.0, kernel_ms=4100.0,
                   input_mb=40.0, output_mb=40.0, n_launches=9000),
    ]
    return {b.name: b for b in benchmarks}


_SUITE: Dict[str, RodiniaBenchmark] = _suite()

#: The eleven benchmarks simulated in the paper's Figure 4, plot order.
FIG4_BENCHMARKS: Tuple[str, ...] = (
    "backprop", "bfs", "dwt2d", "gaussian", "hotspot", "hotspot3D",
    "leukocyte", "lud", "myocyte", "nn", "nw",
)

#: The benchmarks of the paper's Figure 5 (full suite on the COTS GPU).
FIG5_BENCHMARKS: Tuple[str, ...] = tuple(sorted(_SUITE))


def get_benchmark(name: str) -> RodiniaBenchmark:
    """Look up a benchmark by name.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        return _SUITE[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(_SUITE))}"
        ) from None


def all_benchmarks() -> Tuple[RodiniaBenchmark, ...]:
    """Every benchmark in the suite, sorted by name."""
    return tuple(_SUITE[n] for n in sorted(_SUITE))
