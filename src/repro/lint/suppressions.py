"""Inline suppression comments for :mod:`repro.lint`.

A violation is silenced by an inline comment on the offending line::

    value = time.time()  # repro-lint: allow[RL002] wall clock feeds a log, not a digest

A comment on a line of its own applies to the next code line instead —
for offending statements too long to share a line with their reason::

    # repro-lint: allow[RL002] wall clock feeds a log, not a digest
    value = time.time()

The bracket names one or more rule IDs (comma-separated); the free text
after the bracket is the *reason* and is mandatory — an allow without a
reason is itself reported (``RL000``), because an unexplained exemption
is exactly the reviewer-vigilance failure the linter exists to prevent.
Unknown rule IDs and suppressions that silence nothing are reported the
same way, keeping the suppression inventory honest as rules evolve.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lint.reporting import Violation

__all__ = ["Suppression", "FileSuppressions", "collect_suppressions"]

_MARKER_RE = re.compile(r"#\s*repro-lint:\s*(.*)$")
_ALLOW_RE = re.compile(r"^allow\[([^\]]*)\]\s*(.*)$", re.DOTALL)
_RULE_ID_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow[...]`` comment.

    Attributes:
        line: 1-based line the comment sits on (violations on this line
            matching one of ``rules`` are silenced).
        rules: the rule IDs the comment exempts.
        reason: the mandatory justification text.
    """

    line: int
    rules: Tuple[str, ...]
    reason: str


@dataclass
class FileSuppressions:
    """All suppressions of one file, plus use-tracking for hygiene checks.

    Attributes:
        path: the file the suppressions belong to.
        suppressions: parsed, well-formed ``allow`` comments.
        problems: malformed-comment violations found during parsing.
    """

    path: str
    suppressions: List[Suppression] = field(default_factory=list)
    problems: List[Violation] = field(default_factory=list)
    _used: Set[Tuple[int, str]] = field(default_factory=set)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True (and mark the suppression used) when ``rule_id`` at ``line`` is exempt."""
        for supp in self.suppressions:
            if supp.line == line and rule_id in supp.rules:
                self._used.add((supp.line, rule_id))
                return True
        return False

    def unused(self, active_rules: FrozenSet[str]) -> List[Violation]:
        """RL000 violations for suppressions that silenced nothing.

        Args:
            active_rules: rule IDs that actually ran on this file — a
                suppression for a rule outside this set is not judged
                (it may be exercised by a full run or another scope).
        """
        out: List[Violation] = []
        for supp in self.suppressions:
            idle = sorted(
                rule for rule in supp.rules
                if rule in active_rules
                and (supp.line, rule) not in self._used
            )
            for rule in idle:
                out.append(Violation(
                    file=self.path, line=supp.line, col=0, rule="RL000",
                    message=(
                        f"unused suppression: allow[{rule}] matches no "
                        "violation on this line — delete it or fix the scope"
                    ),
                ))
        return out


def _parse_marker(path: str, line: int, body: str,
                  known_rules: FrozenSet[str]) -> FileSuppressions:
    """Parse one ``repro-lint:`` marker body into the accumulator shape."""
    result = FileSuppressions(path=path)
    match = _ALLOW_RE.match(body.strip())
    if not match:
        result.problems.append(Violation(
            file=path, line=line, col=0, rule="RL000",
            message=(
                f"malformed repro-lint comment {body.strip()!r} (expected "
                "'allow[RLnnn] reason')"
            ),
        ))
        return result
    raw_ids, reason = match.group(1), match.group(2).strip()
    rules: List[str] = []
    for raw in raw_ids.split(","):
        rule = raw.strip()
        if not _RULE_ID_RE.match(rule):
            result.problems.append(Violation(
                file=path, line=line, col=0, rule="RL000",
                message=f"suppression names a malformed rule ID {rule!r}",
            ))
        elif rule not in known_rules:
            result.problems.append(Violation(
                file=path, line=line, col=0, rule="RL000",
                message=f"suppression names an unknown rule {rule}",
            ))
        else:
            rules.append(rule)
    if not reason:
        result.problems.append(Violation(
            file=path, line=line, col=0, rule="RL000",
            message=(
                "suppression without a reason — every allow[...] must "
                "say why the exemption is sound"
            ),
        ))
        return result
    if rules:
        result.suppressions.append(
            Suppression(line=line, rules=tuple(rules), reason=reason)
        )
    return result


def _effective_line(lines: List[str], comment_line: int) -> int:
    """The code line a suppression at ``comment_line`` applies to.

    A comment sharing its line with code covers that line; a standalone
    comment covers the next line that holds code (skipping blanks and
    further comment-only lines).
    """
    before = lines[comment_line - 1].split("#", 1)[0]
    if before.strip():
        return comment_line
    for lineno in range(comment_line + 1, len(lines) + 1):
        stripped = lines[lineno - 1].strip()
        if stripped and not stripped.startswith("#"):
            return lineno
    return comment_line


def collect_suppressions(path: str, source: str,
                         known_rules: FrozenSet[str]) -> FileSuppressions:
    """Extract every ``repro-lint:`` comment of ``source``.

    Uses :mod:`tokenize` so markers inside string literals are ignored —
    only real comments can suppress.

    Args:
        path: file label used in produced violations.
        source: the file's text.
        known_rules: valid rule IDs (unknown IDs become RL000 problems).
    """
    result = FileSuppressions(path=path)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments: Dict[int, str] = {}
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # the engine reports the parse failure itself; no comments here
        return result
    lines = source.splitlines()
    for line in sorted(comments):
        marker = _MARKER_RE.search(comments[line])
        if not marker:
            continue
        target = _effective_line(lines, line)
        parsed = _parse_marker(path, target, marker.group(1), known_rules)
        result.suppressions.extend(parsed.suppressions)
        result.problems.extend(parsed.problems)
    return result
