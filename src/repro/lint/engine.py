"""Lint engine: expand targets, parse, run rules, apply suppressions.

:func:`run_lint` is the single entry point used by the CLI, the CI gate
and the tests.  It is itself held to the contract it enforces: target
expansion sorts every directory scan, the produced
:class:`~repro.lint.reporting.LintReport` is canonical (sorted,
deduplicated), and nothing here reads clocks, environment variables or
global randomness — ``repro lint src/repro`` lints its own engine.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import LintError
from repro.lint.config import LintConfig
from repro.lint.reporting import LintReport, Violation
from repro.lint.rules import FileContext, RULE_IDS, rules_by_id
from repro.lint.suppressions import collect_suppressions

__all__ = ["expand_targets", "lint_file", "run_lint"]


def expand_targets(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    Args:
        paths: files (taken verbatim) and directories (recursed).

    Raises:
        LintError: when a target does not exist, or nothing matches.
    """
    files = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.add(path)
        else:
            raise LintError(f"lint target {str(path)!r} does not exist")
    if not files:
        raise LintError("no Python files found under the given targets")
    return sorted(files)


def lint_file(path: Union[str, Path], *, config: LintConfig,
              rule_ids: Optional[Sequence[str]] = None
              ) -> Tuple[List[Violation], int]:
    """Lint one file.

    Suppressed violations are dropped (and counted); malformed or unused
    suppressions come back as ``RL000`` violations, as does a file that
    fails to parse — the engine never crashes on a broken target, CI
    needs the file:line anchor, not a traceback.

    Args:
        path: the file to lint.
        config: per-rule path scoping.
        rule_ids: restrict to these rule IDs (all rules when ``None``).

    Returns:
        ``(violations, suppressed_count)`` for this file.
    """
    label = str(path)
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return ([Violation(file=label, line=1, col=0, rule="RL000",
                           message=f"cannot read file: {exc}")], 0)
    try:
        tree = ast.parse(source, filename=label)
    except SyntaxError as exc:
        return ([Violation(file=label, line=exc.lineno or 1,
                           col=(exc.offset or 1) - 1, rule="RL000",
                           message=f"syntax error: {exc.msg}")], 0)

    ctx = FileContext.build(label, tree)
    suppressions = collect_suppressions(label, source, RULE_IDS)
    kept: List[Violation] = list(suppressions.problems)
    suppressed = 0
    ran: List[str] = []
    for rule in rules_by_id(rule_ids):
        if not config.applies(rule.id, label):
            continue
        ran.append(rule.id)
        for violation in rule.check(ctx):
            if suppressions.is_suppressed(violation.line, rule.id):
                suppressed += 1
            else:
                kept.append(violation)
    kept.extend(suppressions.unused(frozenset(ran)))
    return kept, suppressed


def run_lint(paths: Sequence[Union[str, Path]], *,
             config: Optional[LintConfig] = None,
             rule_ids: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every Python file under ``paths`` into one canonical report.

    Args:
        paths: files and/or directories to lint.
        config: per-rule scoping; defaults to :meth:`LintConfig.default`.
        rule_ids: restrict the run to these rule IDs.

    Returns:
        A :class:`~repro.lint.reporting.LintReport`; ``report.ok`` is
        the CI gate.

    Raises:
        LintError: for unknown rule IDs or unresolvable targets.
    """
    cfg = config if config is not None else LintConfig.default()
    rules_by_id(rule_ids)  # validate the filter before touching files
    files = expand_targets(paths)
    violations: List[Violation] = []
    suppressed = 0
    for path in files:
        file_violations, file_suppressed = lint_file(
            path, config=cfg, rule_ids=rule_ids
        )
        violations.extend(file_violations)
        suppressed += file_suppressed
    return LintReport.build(violations, checked_files=len(files),
                            suppressed=suppressed)
