"""``repro.lint`` — AST-based determinism-contract checker.

Every subsystem in this repository promises bit-identical reports and
digests across worker counts, shard boundaries and declaration order.
This package enforces that promise *statically*: a rule engine walks the
source tree and fails on contract violations — module-global randomness,
wall-clock reads, unordered folds in digest paths, mutable specs, raises
outside the :class:`~repro.errors.ReproError` hierarchy, non-picklable
pool callables, salted ``hash()`` and filesystem-order dependence — so a
regression is caught at lint time instead of (maybe) by an equivalence
test sampling a few configurations.

Entry points::

    from repro.lint import run_lint
    report = run_lint(["src/repro"])
    assert report.ok

or from a shell / CI::

    python -m repro lint [--json] [--rule RLnnn] [paths...]

The rule catalogue, suppression syntax (``# repro-lint: allow[RLnnn]
reason``) and config scoping are documented in ``docs/LINT.md``.
"""

from repro.lint.config import (
    DEFAULT_CONFIG_FILE,
    LintConfig,
    RuleScope,
    load_config,
    parse_config,
)
from repro.lint.engine import expand_targets, lint_file, run_lint
from repro.lint.reporting import JSON_SCHEMA_VERSION, LintReport, Violation
from repro.lint.rules import ALL_RULES, RULE_IDS, Rule, rules_by_id
from repro.lint.suppressions import (
    FileSuppressions,
    Suppression,
    collect_suppressions,
)

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG_FILE",
    "FileSuppressions",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "RULE_IDS",
    "Rule",
    "RuleScope",
    "Suppression",
    "Violation",
    "collect_suppressions",
    "expand_targets",
    "lint_file",
    "load_config",
    "parse_config",
    "rules_by_id",
    "run_lint",
]
