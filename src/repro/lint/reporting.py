"""Violation records and report rendering for :mod:`repro.lint`.

A lint run produces a :class:`LintReport` — an ordered, canonical
collection of :class:`Violation` records plus run-level counters.  Both
render to text (``file:line:col RLnnn message``, the format editors and
CI annotations understand) and to a stable JSON schema (``version`` 1)
so downstream tooling can parse reports without scraping text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

__all__ = ["Violation", "LintReport", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1
"""Version of the ``--json`` report schema; bumped on breaking changes."""


@dataclass(frozen=True)
class Violation:
    """One determinism-contract violation anchored to a source location.

    Attributes:
        file: path of the offending file, as given to the engine.
        line: 1-based line number of the offending node or comment.
        col: 0-based column offset (matches ``ast`` conventions).
        rule: stable rule identifier (``RL001`` … ``RL008``, or ``RL000``
            for engine-level problems such as malformed suppressions).
        message: human-readable description of what violated the contract.
    """

    file: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Canonical ordering: by file, then location, then rule."""
        return (self.file, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping with deterministic key content."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line text form: ``file:line:col RLnnn message``."""
        return f"{self.file}:{self.line}:{self.col} {self.rule} {self.message}"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run over a set of files.

    Attributes:
        violations: canonical (sorted) violation tuple.
        checked_files: number of Python files analysed.
        suppressed: number of violations silenced by inline suppressions.
    """

    violations: Tuple[Violation, ...]
    checked_files: int
    suppressed: int

    @property
    def ok(self) -> bool:
        """True when the run found no violations (CI gate passes)."""
        return not self.violations

    @classmethod
    def build(cls, violations: Sequence[Violation], *, checked_files: int,
              suppressed: int) -> "LintReport":
        """Canonicalise ``violations`` (sorted, deduplicated) into a report."""
        unique = sorted(set(violations), key=Violation.sort_key)
        return cls(violations=tuple(unique), checked_files=checked_files,
                   suppressed=suppressed)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON schema: version, counters, ordered violations."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "checked_files": self.checked_files,
            "suppressed": self.suppressed,
            "violation_count": len(self.violations),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render_text(self) -> str:
        """Multi-line text report ending in a one-line summary."""
        lines = [v.render() for v in self.violations]
        summary = (
            f"repro-lint: checked {self.checked_files} file(s): "
            + ("OK" if self.ok else f"{len(self.violations)} violation(s)")
        )
        if self.suppressed:
            summary += f" ({self.suppressed} suppressed)"
        lines.append(summary)
        return "\n".join(lines)
