"""Per-rule path scoping for :mod:`repro.lint`.

Most rules guard the whole tree, but some only make sense on the
digest-affecting modules (set-iteration folds are harmless in a CLI
helper, fatal in a report canonicaliser).  :class:`LintConfig` maps each
rule ID to include/exclude glob patterns; :func:`parse_config` reads the
same mapping from a deliberately small TOML subset so the repository can
pin its scoping in ``repro-lint.toml`` without a TOML dependency
(``tomllib`` only exists on Python 3.11+ and this tree supports 3.9).

The accepted subset — everything the shipped config needs, nothing more::

    # comment
    [rule.RL003]
    include = ["*/report.py", "*/faults/campaign.py"]
    exclude = ["*/conftest.py"]

Section headers are ``[rule.RLnnn]``; values are double-quoted strings
or single-line arrays of double-quoted strings.  Anything else raises
:class:`~repro.errors.LintError` with a line-anchored message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LintError

__all__ = [
    "RuleScope",
    "LintConfig",
    "parse_config",
    "load_config",
    "DEFAULT_CONFIG_FILE",
]

DEFAULT_CONFIG_FILE = "repro-lint.toml"
"""Config file auto-discovered in the working directory by the CLI."""

_SECTION_RE = re.compile(r"^\[rule\.(RL\d{3})\]$")
_KEY_RE = re.compile(r"^(include|exclude)\s*=\s*(.+)$")
_STRING_RE = re.compile(r'^"([^"]*)"$')


@dataclass(frozen=True)
class RuleScope:
    """Include/exclude glob patterns scoping one rule to a file subset.

    A file is in scope when it matches at least one ``include`` pattern
    (``("*",)`` means everywhere) and no ``exclude`` pattern.  Patterns
    are :mod:`fnmatch` globs applied to the file's POSIX-style path.
    """

    include: Tuple[str, ...] = ("*",)
    exclude: Tuple[str, ...] = ()

    def matches(self, path: Union[str, Path]) -> bool:
        """True when ``path`` is inside this scope."""
        text = Path(path).as_posix()
        if not any(fnmatch(text, pattern) for pattern in self.include):
            return False
        return not any(fnmatch(text, pattern) for pattern in self.exclude)


# Modules whose content folds into a canonical digest or report: the
# unordered-iteration rule only fires here (ISSUE 6 scoping).  The
# statistics layer qualifies because its weighted rates embed in the
# v2 campaign report payloads.
_DIGEST_MODULES: Tuple[str, ...] = (
    "*/report.py",
    "*/faults/campaign.py",
    "*/streams/arrivals.py",
    "*/stats/*.py",
    "*/api/*.py",
)

# The telemetry plane (repro.obs) is the repository's only wall-clock
# quarantine: span timers and heartbeats read time.monotonic there, and
# nothing downstream of a report digest ever reads it back (ISSUE 9 /
# docs/OBSERVABILITY.md).  RL002 therefore runs everywhere *except*
# these paths.
_WALL_CLOCK_QUARANTINE: Tuple[str, ...] = (
    "*/repro/obs/*",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved per-rule scoping used by the engine.

    Attributes:
        scopes: mapping from rule ID to its :class:`RuleScope`.  Rules
            absent from the mapping default to the whole tree.
    """

    scopes: Dict[str, RuleScope] = field(default_factory=dict)

    def scope_for(self, rule_id: str) -> RuleScope:
        """The scope configured for ``rule_id`` (whole tree by default)."""
        return self.scopes.get(rule_id, RuleScope())

    def applies(self, rule_id: str, path: Union[str, Path]) -> bool:
        """True when ``rule_id`` should run on ``path``."""
        return self.scope_for(rule_id).matches(path)

    @classmethod
    def default(cls) -> "LintConfig":
        """The built-in scoping (mirrored by the shipped repro-lint.toml)."""
        return cls(scopes={
            "RL002": RuleScope(exclude=_WALL_CLOCK_QUARANTINE),
            "RL003": RuleScope(include=_DIGEST_MODULES),
            "RL004": RuleScope(include=("*/api/*.py",)),
        })


def _parse_value(raw: str, lineno: int, source: str) -> Tuple[str, ...]:
    """Parse a double-quoted string or a single-line array of them."""
    raw = raw.strip()
    match = _STRING_RE.match(raw)
    if match:
        return (match.group(1),)
    if raw.startswith("[") and raw.endswith("]"):
        body = raw[1:-1].strip()
        if not body:
            return ()
        items: List[str] = []
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            match = _STRING_RE.match(part)
            if not match:
                raise LintError(
                    f"{source}:{lineno}: array items must be double-quoted "
                    f"strings, got {part!r}"
                )
            items.append(match.group(1))
        return tuple(items)
    raise LintError(
        f"{source}:{lineno}: expected a double-quoted string or an array "
        f"of them, got {raw!r}"
    )


def parse_config(text: str, *, source: str = "<config>") -> LintConfig:
    """Parse the TOML-subset config ``text`` into a :class:`LintConfig`.

    Unconfigured rules keep the built-in defaults, so a config file only
    needs to state the scopes it wants to change.

    Args:
        text: the configuration document.
        source: label used in error messages (usually the file path).

    Raises:
        LintError: on any line outside the accepted subset, an unknown
            section, or an unknown key.
    """
    scopes = dict(LintConfig.default().scopes)
    current: Optional[str] = None
    pending: Dict[str, Tuple[str, ...]] = {}

    def _flush() -> None:
        if current is not None:
            scopes[current] = RuleScope(
                include=pending.get("include", ("*",)),
                exclude=pending.get("exclude", ()),
            )

    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        section = _SECTION_RE.match(stripped)
        if section:
            _flush()
            current = section.group(1)
            pending = {}
            continue
        if stripped.startswith("["):
            raise LintError(
                f"{source}:{lineno}: unknown section {stripped!r} "
                "(only [rule.RLnnn] sections are accepted)"
            )
        key = _KEY_RE.match(stripped)
        if not key:
            raise LintError(
                f"{source}:{lineno}: cannot parse {stripped!r} (expected "
                "'include = ...' or 'exclude = ...' inside a [rule.RLnnn] "
                "section)"
            )
        if current is None:
            raise LintError(
                f"{source}:{lineno}: {key.group(1)!r} outside a "
                "[rule.RLnnn] section"
            )
        pending[key.group(1)] = _parse_value(key.group(2), lineno, source)
    _flush()
    return LintConfig(scopes=scopes)


def load_config(path: Optional[Union[str, Path]] = None) -> LintConfig:
    """Load a config file, falling back to the built-in defaults.

    Args:
        path: explicit config path; ``None`` auto-discovers
            :data:`DEFAULT_CONFIG_FILE` in the working directory.

    Raises:
        LintError: when an explicit ``path`` cannot be read, or any
            config file fails to parse.
    """
    if path is None:
        candidate = Path(DEFAULT_CONFIG_FILE)
        if not candidate.is_file():
            return LintConfig.default()
        path = candidate
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read lint config {str(path)!r}: {exc}")
    return parse_config(text, source=str(path))
