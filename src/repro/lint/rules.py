"""The determinism-contract rule catalogue (``RL001`` … ``RL008``).

Each rule is a small AST pass over one file.  The catalogue encodes the
repository's reproducibility promise — reports and digests are
bit-identical across worker counts, shard boundaries and declaration
order — as machine-checkable bans:

========  ==============================================================
RL001     module-global randomness (only seeded ``random.Random`` allowed)
RL002     wall-clock / entropy sources (``time.time``, ``datetime.now``,
          ``os.urandom``, ``uuid.uuid4``, ``secrets``, ``SystemRandom``)
RL003     iteration or ``sum``/``min``/``max`` folds over unordered sets
          in digest-affecting modules
RL004     every ``*Spec`` dataclass in ``repro.api`` must be frozen and
          round-trip via ``to_dict``/``from_dict``
RL005     every ``raise`` must use a ``repro.errors.ReproError`` subclass
          (``NotImplementedError`` is allowed for abstract stubs)
RL006     callables handed to a process pool must be module-level
          (picklable by reference)
RL007     no builtin ``hash()`` — string hashes are salted per process
RL008     no filesystem-order or environment dependence (unsorted
          ``listdir``/``glob``/``iterdir``, ``os.environ``)
========  ==============================================================

Rule detection is purely syntactic (no imports of the linted code are
executed), so mentions inside strings and docstrings never trigger.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import repro.errors as _errors
from repro.lint.reporting import Violation

__all__ = ["FileContext", "Rule", "ALL_RULES", "RULE_IDS", "rules_by_id"]

# exception classes every raise may use: the whole repro.errors hierarchy
# (collected dynamically so new error types are approved automatically)
# plus NotImplementedError, the stdlib idiom for abstract-method stubs
_APPROVED_RAISES: FrozenSet[str] = frozenset(
    [name for name in dir(_errors)
     if isinstance(getattr(_errors, name), type)
     and issubclass(getattr(_errors, name), _errors.ReproError)]
    + ["NotImplementedError"]
)

_WALL_CLOCK_BANNED: FrozenSet[str] = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime", "time.ctime",
    "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

_FS_ORDER_BANNED: FrozenSet[str] = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})

_ENV_BANNED: FrozenSet[str] = frozenset({"os.environ", "os.getenv"})

# order-sensitive folds; sorted()/len()/any()/all() are order-safe
_FOLD_BUILTINS: FrozenSet[str] = frozenset({"sum", "min", "max", "list",
                                            "tuple"})


@dataclass
class FileContext:
    """One parsed file plus the shared analyses every rule needs.

    Attributes:
        path: the file's path label (used in violations).
        tree: the parsed module AST.
        module_aliases: local name → imported module (``import x as y``).
        from_imports: local name → dotted origin (``from m import a``).
        module_level_names: every name bound at module scope.
        sorted_wrapped: ids of call nodes passed directly to ``sorted()``.
        nested_defs: per-function-node names of functions defined inside it.
    """

    path: str
    tree: ast.AST
    module_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, str] = field(default_factory=dict)
    module_level_names: Set[str] = field(default_factory=set)
    sorted_wrapped: Set[int] = field(default_factory=set)
    nested_defs: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, tree: ast.AST) -> "FileContext":
        """Run the shared pre-analyses over ``tree``."""
        ctx = cls(path=path, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    ctx.module_aliases[local] = (
                        alias.name if alias.asname else local
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    ctx.from_imports[local] = f"{node.module}.{alias.name}"
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id == "sorted" and node.args):
                ctx.sorted_wrapped.add(id(node.args[0]))
        for stmt in getattr(tree, "body", []):
            for name in _bound_names(stmt):
                ctx.module_level_names.add(name)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner: Set[str] = set()
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(child,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        inner.add(child.name)
                ctx.nested_defs[id(node)] = inner
        return ctx

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None.

        ``random.Random`` resolves to ``"random.Random"`` even through
        ``import random as rnd``; a name bound by ``from random import
        choice`` resolves to ``"random.choice"``.
        """
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def _bound_names(stmt: ast.stmt) -> List[str]:
    """Names a module-level statement binds (defs, classes, imports, =)."""
    names: List[str] = []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, ast.Import):
        names.extend(a.asname or a.name.split(".")[0] for a in stmt.names)
    elif isinstance(stmt, ast.ImportFrom):
        names.extend(a.asname or a.name for a in stmt.names)
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name):
            names.append(stmt.target.id)
    return names


def _violation(ctx: FileContext, node: ast.AST, rule: str,
               message: str) -> Violation:
    """Anchor ``message`` to ``node``'s location in ``ctx``'s file."""
    return Violation(file=ctx.path, line=getattr(node, "lineno", 1),
                     col=getattr(node, "col_offset", 0), rule=rule,
                     message=message)


class Rule:
    """Base class: one identifiable AST check over a file.

    Attributes:
        id: stable rule identifier (``RLnnn``).
        title: short human-readable rule name for catalogues.
    """

    id: str = "RL000"
    title: str = ""

    def check(self, ctx: FileContext) -> List[Violation]:
        """Violations of this rule in ``ctx``'s tree."""
        raise NotImplementedError


class GlobalRandomnessRule(Rule):
    """RL001 — ban the module-global RNG; require seeded ``random.Random``.

    ``random.random()``, ``random.seed()``, ``random.choice()`` and every
    other module-level helper share one hidden process-global state, so
    results depend on call interleaving across subsystems and workers.
    Only the class ``random.Random`` (an explicit, seedable instance, as
    ``faults/campaign.py`` builds per fault index) may be referenced.
    """

    id = "RL001"
    title = "module-global randomness"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag ``random.X`` references and from-imports for ``X != Random``."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ("Random", "SystemRandom"):
                        out.append(_violation(
                            ctx, node, self.id,
                            f"'from random import {alias.name}' binds the "
                            "module-global RNG — use an explicit "
                            "random.Random(seed) instance",
                        ))
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolve(node)
                if (resolved is not None
                        and resolved.startswith("random.")
                        and resolved.count(".") == 1
                        and resolved not in ("random.Random",
                                             "random.SystemRandom")):
                    out.append(_violation(
                        ctx, node, self.id,
                        f"module-global RNG use {resolved!r} — seed an "
                        "explicit random.Random(seed) instance instead",
                    ))
        return out


class WallClockRule(Rule):
    """RL002 — ban wall-clock and entropy sources.

    Any value derived from the host clock, the OS entropy pool or a
    MAC-address UUID differs between runs and machines; if it reaches a
    report it breaks bit-identical digests, and there is no way to prove
    statically that it will not.  (``random.SystemRandom`` lives here,
    not in RL001, because its problem is entropy, not shared state.)
    """

    id = "RL002"
    title = "wall-clock / entropy source"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag banned time/entropy origins at import and reference sites."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    origin = f"{node.module}.{alias.name}"
                    if (origin in _WALL_CLOCK_BANNED
                            or node.module == "secrets"):
                        out.append(_violation(
                            ctx, node, self.id,
                            f"import of nondeterministic source {origin!r}",
                        ))
            elif isinstance(node, (ast.Import,)):
                for alias in node.names:
                    if alias.name == "secrets":
                        out.append(_violation(
                            ctx, node, self.id,
                            "import of entropy module 'secrets'",
                        ))
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolve(node)
                if resolved is None:
                    continue
                if (resolved in _WALL_CLOCK_BANNED
                        or resolved.startswith("secrets.")):
                    out.append(_violation(
                        ctx, node, self.id,
                        f"nondeterministic source {resolved!r} — results "
                        "must not depend on wall clock or entropy",
                    ))
        return out


def _is_unordered(node: ast.AST) -> bool:
    """True for set displays/comprehensions and ``set()``/``frozenset()``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class UnorderedFoldRule(Rule):
    """RL003 — no iteration or order-sensitive folds over sets.

    Scoped (via config) to digest-affecting modules.  Set iteration
    order follows the per-process string-hash salt, so a ``for`` over a
    set — or a ``sum``/``min``/``max``/``list``/``tuple``/``join`` fed
    one — can change float accumulation order or output order between
    runs.  Wrap the set in ``sorted(...)`` to fix the order first.
    """

    id = "RL003"
    title = "unordered set iteration/fold"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag for-loops, generators and folds consuming unordered sets."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_unordered(node.iter):
                out.append(_violation(
                    ctx, node.iter, self.id,
                    "iterating a set has salt-dependent order — wrap it "
                    "in sorted(...)",
                ))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    if _is_unordered(gen.iter):
                        out.append(_violation(
                            ctx, gen.iter, self.id,
                            "comprehension over a set has salt-dependent "
                            "order — wrap it in sorted(...)",
                        ))
            elif isinstance(node, ast.Call):
                fold = None
                if (isinstance(node.func, ast.Name)
                        and node.func.id in _FOLD_BUILTINS):
                    fold = node.func.id
                elif (isinstance(node.func, ast.Attribute)
                      and node.func.attr == "join"):
                    fold = "join"
                if fold is None:
                    continue
                for arg in node.args:
                    if _is_unordered(arg):
                        out.append(_violation(
                            ctx, arg, self.id,
                            f"{fold}() over a set folds in salt-dependent "
                            "order — sort it first",
                        ))
        return out


class SpecContractRule(Rule):
    """RL004 — every ``*Spec`` dataclass must be frozen and round-trip.

    Scoped (via config) to ``repro.api``.  Specs are hashed into
    ``config_hash`` provenance and shipped across process boundaries;
    a mutable spec or one without a ``to_dict``/``from_dict`` pair
    silently breaks both.
    """

    id = "RL004"
    title = "Spec dataclass contract"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag ``*Spec`` classes missing frozen=True or the dict pair."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Spec"):
                continue
            if not self._is_frozen_dataclass(node):
                out.append(_violation(
                    ctx, node, self.id,
                    f"{node.name} must be a @dataclass(frozen=True) — "
                    "specs are hashed provenance and must be immutable",
                ))
            methods = {child.name for child in node.body
                       if isinstance(child, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))}
            for required in ("to_dict", "from_dict"):
                if required not in methods:
                    out.append(_violation(
                        ctx, node, self.id,
                        f"{node.name} lacks {required}() — every Spec "
                        "must round-trip through plain dicts",
                    ))
        return out

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        """True when a ``@dataclass(frozen=True)`` decorator is present."""
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            name = (deco.func.id if isinstance(deco.func, ast.Name)
                    else deco.func.attr
                    if isinstance(deco.func, ast.Attribute) else None)
            if name != "dataclass":
                continue
            for kw in deco.keywords:
                if (kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    return True
        return False


class RaiseHierarchyRule(Rule):
    """RL005 — every ``raise`` must use the ``ReproError`` hierarchy.

    A single catchable base class is what lets the CLI, the campaign
    runner and the pool workers translate failures uniformly; a stray
    ``ValueError`` escapes those handlers and kills a shard without a
    checkpointed record.  ``NotImplementedError`` (abstract stubs), bare
    re-raises and re-raised local variables are allowed; local exception
    classes count when they derive — transitively, within the module —
    from an approved type.
    """

    id = "RL005"
    title = "raise outside ReproError hierarchy"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag raises whose class cannot be traced to ReproError."""
        local_ok = self._approved_local_classes(ctx)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            else:
                continue
            if name[:1].islower():
                continue  # a re-raised local variable, not a class
            if name in _APPROVED_RAISES or name in local_ok:
                continue
            out.append(_violation(
                ctx, node, self.id,
                f"raise of {name}: every error must derive from "
                "repro.errors.ReproError (or be NotImplementedError)",
            ))
        return out

    @staticmethod
    def _approved_local_classes(ctx: FileContext) -> Set[str]:
        """Module-local classes deriving (transitively) from approved ones."""
        bases: Dict[str, List[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                names = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.append(base.attr)
                bases[node.name] = names
        approved: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(bases):
                if name in approved:
                    continue
                if any(base in _APPROVED_RAISES or base in approved
                       for base in bases[name]):
                    approved.add(name)
                    changed = True
        return approved


class PoolCallableRule(Rule):
    """RL006 — process-pool callables must be module-level.

    ``ProcessPoolExecutor`` pickles the callable by reference; a lambda,
    a nested function or a bound ``self.``-method either fails to pickle
    or drags hidden mutable state across the fork.  Only module-level
    functions are guaranteed to behave identically in every worker.
    """

    id = "RL006"
    title = "non-picklable pool callable"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag lambdas/nested defs/self-methods given to submit()/map()."""
        out: List[Violation] = []
        self._walk_scope(ctx, ctx.tree, (), out)
        return out

    def _walk_scope(self, ctx: FileContext, node: ast.AST,
                    nested: Tuple[FrozenSet[str], ...],
                    out: List[Violation]) -> None:
        """Recurse tracking which names are nested function definitions."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = frozenset(ctx.nested_defs.get(id(child), set()))
                self._walk_scope(ctx, child, nested + (inner,), out)
                continue
            if isinstance(child, ast.Call):
                self._check_call(ctx, child, nested, out)
            self._walk_scope(ctx, child, nested, out)

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    nested: Tuple[FrozenSet[str], ...],
                    out: List[Violation]) -> None:
        """Check one ``X.submit(f, ...)`` / ``X.map(f, ...)`` call site."""
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map") and node.args):
            return
        target = node.args[0]
        if isinstance(target, ast.Lambda):
            out.append(_violation(
                ctx, target, self.id,
                "lambda submitted to a process pool is not picklable — "
                "use a module-level function",
            ))
        elif isinstance(target, ast.Name):
            if any(target.id in scope for scope in nested):
                out.append(_violation(
                    ctx, target, self.id,
                    f"nested function {target.id!r} submitted to a process "
                    "pool is not picklable — move it to module level",
                ))
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self"):
            out.append(_violation(
                ctx, target, self.id,
                f"bound method self.{target.attr} submitted to a process "
                "pool drags instance state across the fork — use a "
                "module-level function",
            ))


class HashBuiltinRule(Rule):
    """RL007 — no builtin ``hash()``.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), so any value
    derived from it differs between workers and runs.  Digest paths must
    use :mod:`hashlib` (as every existing digest already does).
    """

    id = "RL007"
    title = "builtin hash()"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag calls to the bare builtin ``hash``."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                out.append(_violation(
                    ctx, node, self.id,
                    "builtin hash() is salted per process — use "
                    "hashlib for anything that reaches a digest",
                ))
        return out


class FsOrderEnvRule(Rule):
    """RL008 — no filesystem-order or environment dependence.

    Directory listing order is filesystem-specific; reading the
    environment makes results depend on the invoking shell.  Directory
    scans must be wrapped directly in ``sorted(...)`` (the campaign
    store's shard-log replay depends on it), and configuration must
    arrive through specs, never ``os.environ``.
    """

    id = "RL008"
    title = "filesystem-order / environment dependence"

    def check(self, ctx: FileContext) -> List[Violation]:
        """Flag unsorted directory scans and environment reads."""
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if f"{node.module}.{alias.name}" in _ENV_BANNED:
                        out.append(_violation(
                            ctx, node, self.id,
                            f"import of {node.module}.{alias.name}: "
                            "configuration must come from specs, not the "
                            "environment",
                        ))
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolve(node)
                if resolved in _ENV_BANNED:
                    out.append(_violation(
                        ctx, node, self.id,
                        f"{resolved} read: configuration must come from "
                        "specs, not the environment",
                    ))
            elif isinstance(node, ast.Call):
                out.extend(self._check_scan(ctx, node))
        return out

    def _check_scan(self, ctx: FileContext,
                    node: ast.Call) -> List[Violation]:
        """Flag one directory-scan call unless directly sorted-wrapped."""
        if id(node) in ctx.sorted_wrapped:
            return []
        resolved = ctx.resolve(node.func)
        if resolved in _FS_ORDER_BANNED:
            return [_violation(
                ctx, node, self.id,
                f"{resolved}() yields filesystem order — wrap the call "
                "directly in sorted(...)",
            )]
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("iterdir", "glob", "rglob")):
            return [_violation(
                ctx, node, self.id,
                f".{node.func.attr}() yields filesystem order — wrap the "
                "call directly in sorted(...)",
            )]
        return []


ALL_RULES: Tuple[Rule, ...] = (
    GlobalRandomnessRule(),
    WallClockRule(),
    UnorderedFoldRule(),
    SpecContractRule(),
    RaiseHierarchyRule(),
    PoolCallableRule(),
    HashBuiltinRule(),
    FsOrderEnvRule(),
)

RULE_IDS: FrozenSet[str] = frozenset(rule.id for rule in ALL_RULES)


def rules_by_id(selected: Optional[Sequence[str]] = None) -> Tuple[Rule, ...]:
    """The rule objects for ``selected`` IDs (all rules when ``None``).

    Raises:
        repro.errors.LintError: when an unknown rule ID is requested.
    """
    if selected is None:
        return ALL_RULES
    wanted = set(selected)
    unknown = sorted(wanted - RULE_IDS)
    if unknown:
        raise _errors.LintError(
            f"unknown rule ID(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULE_IDS))})"
        )
    return tuple(rule for rule in ALL_RULES if rule.id in wanted)
