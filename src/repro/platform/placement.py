"""Deterministic task placement: binding task streams to devices.

Placement answers one question — *which device executes which task
stream?* — and answers it as a pure function of the
:class:`~repro.api.platform.PlatformSpec`.  No randomness, no wall
clock, no worker count enters the decision:

* the **demand** of a task on a device is its mean per-frame service
  time there (simulated redundant makespan on the device's GPU plus the
  device's COTS protocol overhead) divided by the task's arrival period
  — a utilisation fraction;
* tasks are considered in the spec's canonical ``(label, config_hash)``
  order (declaration order never matters);
* every policy is a deterministic fold over that order, with ties broken
  by device declaration order.

Policies (:data:`repro.api.platform.PLACEMENT_POLICIES`):

* ``first_fit`` — scan devices in declaration order, take the first
  whose utilisation stays within capacity;
* ``worst_fit`` — take the currently least-utilised device with enough
  headroom (spreads load);
* ``balanced`` — longest-demand-first worst-fit: place the hungriest
  tasks first, each onto the least-utilised fitting device (the classic
  LPT makespan-balancing heuristic);
* ``pinned`` — every task must be pinned via
  :attr:`~repro.api.platform.PlacementSpec.pins`.

Pins are hard constraints under *every* policy.  A task that fits
nowhere raises :class:`~repro.errors.PlatformError` naming the task —
the platform's admission verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.api.platform import DeviceSpec, PlatformSpec
from repro.api.spec import RunSpec
from repro.api.stream import StreamSpec
from repro.errors import PlatformError
from repro.gpu.cots import protocol_overhead_ms
from repro.redundancy.manager import RedundantKernelManager

__all__ = ["TaskDemand", "PlatformPlan", "bind_task", "task_demand",
           "plan_placement"]


@dataclass(frozen=True)
class TaskDemand:
    """Load one task stream puts on one device.

    Attributes:
        task: task label.
        device: device name.
        service_ms: mean per-frame simulated service time on the
            device's GPU (over the workload rotation).
        protocol_ms: mean per-frame COTS protocol overhead on the device
            (transfers, launches, barriers, DCLS comparison).
        utilisation: ``(service_ms + protocol_ms) / period_ms`` — the
            long-run fraction of the device this task consumes.
    """

    task: str
    device: str
    service_ms: float
    protocol_ms: float
    utilisation: float


@dataclass(frozen=True)
class PlatformPlan:
    """The placement decision for one platform spec.

    Attributes:
        policy: placement policy used.
        assignments: ``(task label, device name)`` pairs in canonical
            task-label order.
        demands: the per-assignment :class:`TaskDemand`, keyed by task
            label.
        device_utilisation: summed demand per device (every device of
            the platform appears, idle ones at ``0.0``).
    """

    policy: str
    assignments: Tuple[Tuple[str, str], ...]
    demands: Dict[str, TaskDemand]
    device_utilisation: Dict[str, float]

    def device_of(self, task: str) -> str:
        """The device a task was placed on.

        Raises:
            PlatformError: for unknown task labels.
        """
        for label, device in self.assignments:
            if label == task:
                return device
        raise PlatformError(f"task {task!r} is not part of this plan")

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for the ``platform plan`` CLI output."""
        return {
            "policy": self.policy,
            "assignments": {task: device for task, device in self.assignments},
            "demand": {
                label: {
                    "device": d.device,
                    "service_ms": d.service_ms,
                    "protocol_ms": d.protocol_ms,
                    "utilisation": d.utilisation,
                }
                for label, d in sorted(self.demands.items())
            },
            "device_utilisation": dict(sorted(
                self.device_utilisation.items()
            )),
        }


# ----------------------------------------------------------------------
def bind_task(task: StreamSpec, device: DeviceSpec) -> StreamSpec:
    """The task stream as executed on a concrete device.

    The device's simulated GPU replaces the run template's GPU — that is
    the whole heterogeneity mechanism: the same kernel chain simulates
    to different service times on different devices.
    """
    return replace(task, run=replace(task.run, gpu=device.gpu_spec()))


def _simulated_service_ms(run_spec: RunSpec, validate: bool) -> float:
    """Redundant makespan of one frame job in milliseconds."""
    gpu = run_spec.gpu.to_config()
    kernels = run_spec.workload.resolve(gpu)
    if not kernels:
        raise PlatformError(
            f"task workload {run_spec.workload.label!r} resolves to no "
            "kernels — there is no frame job to place"
        )
    manager = RedundantKernelManager(
        gpu, run_spec.policy, copies=run_spec.effective_copies,
        validate=validate,
    )
    run = manager.run(list(kernels), tag=run_spec.tag)
    return gpu.cycles_to_ms(run.makespan)


def task_demand(task: StreamSpec, device: DeviceSpec, *,
                validate: bool = True,
                _cache: Optional[Dict[str, float]] = None) -> TaskDemand:
    """Compute the load ``task`` puts on ``device``.

    Pure and seed-independent: service times come from the clean
    redundant simulation on the device's GPU, protocol overheads from
    the device's :class:`~repro.gpu.cots.COTSDevice` arithmetic; the
    stream's PRNG seed never enters.

    Args:
        task: the task stream.
        device: the candidate device.
        validate: forward the simulator's trace-validation switch.
        _cache: optional memo of ``run-spec config_hash -> service_ms``
            shared across calls (used by :func:`plan_placement` to
            simulate each distinct frame job once per platform).
    """
    cache = _cache if _cache is not None else {}
    gpu_spec = device.gpu_spec()
    gpu = gpu_spec.to_config()
    cots = device.cots_device()
    rotation = list(task.workload_mix) or [task.run.workload]
    service_sum = 0.0
    protocol_sum = 0.0
    for workload in rotation:
        run_spec = replace(task.run, gpu=gpu_spec, workload=workload)
        key = run_spec.config_hash
        if key not in cache:
            cache[key] = _simulated_service_ms(run_spec, validate)
        service_sum += cache[key]
        kernels = workload.resolve(gpu)
        protocol_sum += protocol_overhead_ms(
            cots,
            input_mb=sum(k.input_bytes for k in kernels) / 1e6,
            output_mb=sum(k.output_bytes for k in kernels) / 1e6,
            n_launches=len(kernels),
            copies=task.run.effective_copies,
        )
    service_ms = service_sum / len(rotation)
    protocol_ms = protocol_sum / len(rotation)
    return TaskDemand(
        task=task.label,
        device=device.name,
        service_ms=service_ms,
        protocol_ms=protocol_ms,
        utilisation=(service_ms + protocol_ms) / task.arrival.period_ms,
    )


# ----------------------------------------------------------------------
def plan_placement(spec: PlatformSpec, *,
                   validate: bool = True) -> PlatformPlan:
    """Bind every task stream of the platform to one device.

    A pure function of the spec: same :class:`PlatformSpec` — including
    a task set declared in any order — always yields the identical plan.

    Raises:
        PlatformError: when a task fits on no admissible device (the
            message names the task), when the ``pinned`` policy leaves a
            task unpinned, or when a pin's demand exceeds its device's
            capacity.
    """
    policy = spec.placement.policy
    pins = spec.placement.pin_map
    devices = list(spec.devices)
    by_name = {d.name: d for d in devices}
    order = {d.name: i for i, d in enumerate(devices)}
    cache: Dict[str, float] = {}

    demands: Dict[str, Dict[str, TaskDemand]] = {}
    for task in spec.tasks:
        candidates = (
            [by_name[pins[task.label]]] if task.label in pins else devices
        )
        demands[task.label] = {
            d.name: task_demand(task, d, validate=validate, _cache=cache)
            for d in candidates
        }

    if policy == "pinned":
        unpinned = [t.label for t in spec.tasks if t.label not in pins]
        if unpinned:
            raise PlatformError(
                f"pinned placement leaves task {unpinned[0]!r} unpinned "
                f"({len(unpinned)} task(s) without a pin)"
            )

    tasks = list(spec.tasks)
    if policy == "balanced":
        # longest-demand-first: hungriest tasks placed while bins are
        # empty; demand ranked by its mean across candidate devices
        def mean_demand(task: StreamSpec) -> float:
            per_device = demands[task.label]
            return sum(d.utilisation for d in per_device.values()) / len(
                per_device
            )

        tasks.sort(key=lambda t: (-mean_demand(t), t.label, t.config_hash))

    utilisation = {d.name: 0.0 for d in devices}
    assignment: Dict[str, str] = {}
    for task in tasks:
        label = task.label
        fitting = [
            name for name, demand in demands[label].items()
            if utilisation[name] + demand.utilisation
            <= by_name[name].capacity
        ]
        if not fitting:
            tried = min(
                demands[label].values(),
                key=lambda d: utilisation[d.device] + d.utilisation,
            )
            raise PlatformError(
                f"cannot place task {label!r} under {policy!r}: best "
                f"candidate {tried.device!r} would reach utilisation "
                f"{utilisation[tried.device] + tried.utilisation:.3f} > "
                f"capacity {by_name[tried.device].capacity:g}"
            )
        if policy == "first_fit" or label in pins:
            chosen = min(fitting, key=lambda name: order[name])
        else:  # worst_fit, balanced, (pinned is always in `pins`)
            chosen = min(
                fitting, key=lambda name: (utilisation[name], order[name])
            )
        assignment[label] = chosen
        utilisation[chosen] += demands[label][chosen].utilisation

    assignments = tuple(sorted(assignment.items()))
    return PlatformPlan(
        policy=policy,
        assignments=assignments,
        demands={
            label: demands[label][device] for label, device in assignments
        },
        device_utilisation=utilisation,
    )
