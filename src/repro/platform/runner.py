"""The platform engine: place, execute per device, roll up.

:func:`run_platform` turns a :class:`~repro.api.platform.PlatformSpec`
into a :class:`~repro.platform.report.PlatformReport` in three stages:

1. **placement** (:mod:`repro.platform.placement`) — pure, seed- and
   worker-independent binding of every task stream to one device;
   infeasible platforms raise :class:`~repro.errors.PlatformError`
   naming the unplaceable task before anything executes;
2. **per-device stream execution** — each device's tasks run through
   the virtual-time stream engine (:func:`repro.streams.runner.run_stream`)
   on the device's GPU, with the device's per-frame COTS protocol
   overhead folded into every service time.  With ``workers > 1`` the
   devices fan out over a process pool, one pool task per device — the
   natural parallel grain, since streams on different devices share
   nothing;
3. **rollup** (:mod:`repro.platform.report`) — per-device utilisation,
   global deadline/FTTI accounting and the ISO 26262 worst-task verdict
   fold into one canonical report.

Determinism contract: the report is a pure function of the spec.  Every
stream is deterministic, placement is pure, and the fold always walks
tasks in canonical label order — so ``PlatformReport.digest()`` is
bit-identical across any ``workers`` count and any task-declaration
order (proven by ``tests/platform/test_platform_runner.py`` and soaked
at 8-device scale by ``benchmarks/bench_platform.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api.platform import PlatformSpec
from repro.api.stream import StreamSpec
from repro.errors import WorkerCountError
from repro.iso26262.asil import Asil, as_asil
from repro.obs.session import NULL_TELEMETRY, Telemetry
from repro.obs.worker import (
    close_worker_session,
    merge_sidecars,
    sidecar_dir,
    sidecar_path,
    worker_session,
)
from repro.platform.placement import PlatformPlan, bind_task, plan_placement
from repro.platform.report import PlatformReport, task_verdict
from repro.streams.report import StreamReport
from repro.streams.runner import run_stream

__all__ = ["run_platform"]

#: One pool task: (device name, [(label, stream spec JSON, protocol ms)]),
#: optionally extended with a worker-sidecar telemetry path.
_DeviceItem = Tuple[str, List[Tuple[str, str, float]], bool]


def _run_device(item: _DeviceItem,
                telemetry: Optional[Telemetry] = None) -> List[Dict[str, Any]]:
    """Process-pool entry point: run one device's task streams.

    ``telemetry`` is only threaded through on the in-process path —
    sinks are not picklable.  A pooled item instead carries a
    worker-sidecar path as its fourth element
    (:mod:`repro.obs.worker`): the worker opens its own session there,
    wraps the device in a ``device`` span and instruments its streams
    in full; the orchestrator merges the sidecar back after the pool
    drains.
    """
    name, tasks, validate = item[0], item[1], item[2]
    sidecar = item[3] if len(item) > 3 else None
    wt = worker_session(sidecar) if telemetry is None else NULL_TELEMETRY
    tm = telemetry if telemetry is not None else wt
    try:
        reports = []
        with wt.span("device", device=name, tasks=len(tasks)):
            for _, spec_json, protocol_ms in tasks:
                spec = StreamSpec.from_json(spec_json)
                report = run_stream(
                    spec, service_offset_ms=protocol_ms, validate=validate,
                    telemetry=tm if tm.enabled else None,
                )
                reports.append(report.to_dict())
        return reports
    finally:
        close_worker_session(wt)


def run_platform(spec: PlatformSpec, *, workers: int = 1,
                 validate: bool = True,
                 telemetry: Optional[Telemetry] = None) -> PlatformReport:
    """Execute one vehicle platform and fold its rollup report.

    Args:
        spec: the declarative platform.
        workers: process count for per-device execution (one pool task
            per device; ``1`` executes in-process); never changes the
            report.
        validate: forward the simulator's trace-validation switch.
        telemetry: optional :class:`~repro.obs.session.Telemetry`
            session receiving placement/execute/fold spans and
            per-device lifecycle events; never changes the report.

    Returns:
        The aggregate :class:`~repro.platform.report.PlatformReport` —
        bit-identical (``report.digest()``) for any ``workers`` count
        and any task-declaration order.

    Raises:
        WorkerCountError: for ``workers < 1``.
        PlatformError: for infeasible placements (the message names the
            unplaceable task).
    """
    if workers < 1:
        raise WorkerCountError("workers must be >= 1")
    tm = telemetry if telemetry is not None else NULL_TELEMETRY
    with tm.span("placement"):
        plan = plan_placement(spec, validate=validate)

        by_label = {task.label: task for task in spec.tasks}
        per_device: Dict[str, List[Tuple[str, str, float]]] = {}
        for label, device_name in plan.assignments:
            bound = bind_task(by_label[label], spec.device(device_name))
            per_device.setdefault(device_name, []).append(
                (label, bound.to_json(), plan.demands[label].protocol_ms)
            )

        # canonical device order (declaration order) for the execution fold
        items: List[_DeviceItem] = [
            (d.name, per_device[d.name], validate)
            for d in spec.devices if d.name in per_device
        ]
    tm.emit("run_start", kind="platform", label=spec.label,
            spec_hash=spec.config_hash, devices=len(items),
            tasks=len(plan.assignments), workers=workers)

    def _observe_device(name: str, payloads: List[Dict[str, Any]],
                        done_count: int) -> None:
        # orchestrator-side lifecycle accounting (pool-path safe)
        tm.metrics.add("devices")
        tm.emit("device_end", device=name, tasks=len(payloads),
                completed=sum(p["completed"] for p in payloads),
                dropped=sum(p["dropped"] for p in payloads))
        tm.beat("platform", done_count, len(items),
                rate_counter="devices", unit="devices/s")

    with tm.span("execute", devices=len(items), workers=workers):
        results = []
        if workers == 1 or len(items) <= 1:
            for item in items:
                tm.emit("device_start", device=item[0], tasks=len(item[1]),
                        pooled=False)
                with tm.span("device", device=item[0]):
                    payloads = _run_device(
                        item, telemetry=tm if tm.enabled else None
                    )
                results.append(payloads)
                if tm.enabled:
                    _observe_device(item[0], payloads, len(results))
        else:
            pool_size = min(workers, len(items))
            if tm.enabled:
                tm.metrics.set_gauge(
                    "pool_utilisation", len(items) / pool_size
                )
            wdir = sidecar_dir(tm) if tm.sink.enabled else None
            keys = [f"device-{item[0]}" for item in items]
            pool_items: List[Tuple] = list(items)
            if wdir is not None:
                pool_items = [item + (sidecar_path(wdir, key),)
                              for item, key in zip(items, keys)]
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                for item in items:
                    tm.emit("device_start", device=item[0],
                            tasks=len(item[1]), pooled=True)
                # pool.map yields in submission order as devices finish,
                # so device_end events land while later devices still run
                for item, payloads in zip(items, pool.map(_run_device,
                                                          pool_items)):
                    results.append(payloads)
                    if tm.enabled:
                        _observe_device(item[0], payloads, len(results))
            if wdir is not None:
                merge_sidecars(tm, wdir, keys)

    reports: Dict[str, StreamReport] = {}
    for (_, tasks, _), payloads in zip(items, results):
        for (label, _, _), payload in zip(tasks, payloads):
            reports[label] = StreamReport.from_dict(payload)

    with tm.span("fold"):
        report = _fold(spec, plan, reports)
    if tm.enabled:
        tm.beat("platform", len(results), len(items),
                rate_counter="devices", unit="devices/s", force=True)
        tm.emit("run_end", kind="platform", digest=report.digest(),
                verdict=report.asil["verdict"],
                worst_asil=report.asil["worst_asil"])
    return report


# ----------------------------------------------------------------------
def _fold(spec: PlatformSpec, plan: PlatformPlan,
          reports: Dict[str, StreamReport]) -> PlatformReport:
    """Fold per-task stream reports into the canonical platform report."""
    by_label = {task.label: task for task in spec.tasks}
    tasks: Dict[str, Dict[str, Any]] = {}
    for label, device_name in plan.assignments:
        report = reports[label]
        demand = plan.demands[label]
        entry: Dict[str, Any] = {
            "device": device_name,
            "utilisation": demand.utilisation,
            "service_ms": demand.service_ms,
            "protocol_ms": demand.protocol_ms,
            "frames": report.frames,
            "completed": report.completed,
            "dropped": report.dropped,
            "deadline_misses": report.deadline_misses,
            "faults_injected": report.faults_injected,
            "faults_detected": report.faults_detected,
            "faults_sdc": report.faults_sdc,
            "safe_rate": report.safe_rate,
            "throughput_fps": report.throughput_fps,
            "elapsed_ms": report.elapsed_ms,
            "digest": report.digest(),
        }
        entry.update(task_verdict(label, report, asil=by_label[label].asil))
        tasks[label] = entry

    devices: Dict[str, Dict[str, Any]] = {}
    for device in spec.devices:
        placed = [label for label, name in plan.assignments
                  if name == device.name]
        counters = {
            key: float(sum(tasks[label][key] for label in placed))
            for key in ("frames", "completed", "dropped", "deadline_misses",
                        "faults_sdc", "throughput_fps")
        }
        devices[device.name] = {
            "gpu": device.gpu_spec().to_config().name,
            "preset": device.preset,
            "capacity": device.capacity,
            "tasks": placed,
            "utilisation": plan.device_utilisation[device.name],
            **counters,
        }

    totals = {
        key: float(sum(entry[key] for entry in tasks.values()))
        for key in ("frames", "completed", "dropped", "deadline_misses",
                    "faults_injected", "faults_detected", "faults_sdc",
                    "throughput_fps")
    }
    frames = totals["frames"]
    unsafe = (totals["dropped"] + totals["deadline_misses"]
              + totals["faults_sdc"])
    totals["safe_rate"] = (
        max(0.0, (frames - unsafe) / frames) if frames else 0.0
    )
    totals["elapsed_ms"] = max(
        (entry["elapsed_ms"] for entry in tasks.values()), default=0.0
    )

    levels = {label: as_asil(entry["asil"])
              for label, entry in tasks.items()}
    violations = sorted(
        label for label, entry in tasks.items() if not entry["ok"]
    )
    worst_failed = max(
        (levels[label] for label in violations), default=None
    )
    asil = {
        "worst_asil": max(levels.values(), default=Asil.QM).name,
        "violations": violations,
        "worst_failed_asil": (
            worst_failed.name if worst_failed is not None else None
        ),
        "verdict": "fail" if violations else "pass",
    }

    return PlatformReport(
        label=spec.label,
        spec_hash=spec.config_hash,
        policy=plan.policy,
        placement=plan.assignments,
        devices=devices,
        tasks=tasks,
        totals=totals,
        asil=asil,
    )
