"""Vehicle-platform subsystem: many devices, one safety verdict.

Every subsystem below this one models a single GPU —
:mod:`repro.streams` is explicitly a single-server queue.  The paper's
setting, however, is a *vehicle platform*: a heterogeneous fleet of COTS
GPUs running the whole ADAS task set concurrently, each task redundantly
and on time.  :mod:`repro.platform` closes that gap:

* :mod:`repro.platform.placement` — pure, deterministic placement
  policies (``first_fit`` / ``worst_fit`` / ``pinned`` / ``balanced``)
  binding each task stream to a device by simulated utilisation demand,
  with a typed admission verdict (:class:`~repro.errors.PlatformError`
  names any unplaceable task);
* :mod:`repro.platform.runner` — executes the per-device streams
  (reusing :func:`repro.streams.runner.run_stream`, optionally on a
  process pool with one pool task per device) with each device's COTS
  protocol overhead folded into service times;
* :mod:`repro.platform.report` — the canonical
  :class:`PlatformReport`: per-device utilisation, global
  deadline/FTTI accounting and the ISO 26262 rollup (worst per-task
  ASIL verdict), bit-identical (``digest()``) for any worker count and
  any task-declaration order.

Quickstart::

    from repro.api import DeviceSpec, PlatformSpec, StreamSpec
    from repro.platform import run_platform

    spec = PlatformSpec(
        devices=(DeviceSpec(name="gpu0"),
                 DeviceSpec(name="gpu1", preset="pcie4-discrete")),
        tasks=(StreamSpec.for_task("camera-perception", frames=2000),
               StreamSpec.for_task("radar-cfar", frames=2000)),
    )
    report = run_platform(spec, workers=2)
    assert report.all_ok and report.asil["worst_asil"] == "D"
"""

from repro.platform.placement import (
    PlatformPlan,
    TaskDemand,
    bind_task,
    plan_placement,
    task_demand,
)
from repro.platform.report import PlatformReport, task_asil, task_verdict
from repro.platform.runner import run_platform

__all__ = [
    "TaskDemand",
    "PlatformPlan",
    "bind_task",
    "task_demand",
    "plan_placement",
    "PlatformReport",
    "task_asil",
    "task_verdict",
    "run_platform",
]
