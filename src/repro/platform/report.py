"""The canonical platform outcome: :class:`PlatformReport`.

One report folds the per-device :class:`~repro.streams.report.StreamReport`
results of every placed task into the platform-level verdicts the paper's
deployment story needs:

* **per-device accounting** — planned utilisation vs capacity, frame
  counters and throughput per device;
* **global deadline/FTTI accounting** — totals of frames, drops,
  deadline misses and fault outcomes across the whole task set;
* **ISO 26262 rollup** — each task resolves to the ASIL of its safety
  goal (via the :data:`~repro.workloads.adas.ADAS_TASKS` library; tasks
  outside it are QM) and gets a verdict: on-time delivery (no drops, no
  deadline misses — the FTTI budget is the stream deadline) and fault
  detection coverage at least the SPFM target of its ASIL
  (:data:`~repro.iso26262.metrics.TARGETS`).  The platform rolls up the
  *worst* per-task verdict: one failing ASIL-D task fails the platform.

Like :class:`~repro.streams.report.StreamReport` the report is O(1) in
the frame count, offers a canonical :meth:`PlatformReport.to_dict` and a
:meth:`PlatformReport.digest` over it, and the platform determinism
contract (``docs/PLATFORM.md``) is stated over that digest: same
:class:`~repro.api.platform.PlatformSpec` ⇒ bit-identical digest, for
any worker count and any task-declaration order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import PlatformError
from repro.iso26262.asil import Asil, as_asil
from repro.iso26262.metrics import TARGETS
from repro.streams.report import StreamReport

__all__ = ["PlatformReport", "task_asil", "task_verdict"]


def task_asil(label: str) -> Asil:
    """The ASIL of one task label (QM outside the ADAS library)."""
    from repro.workloads.adas import ADAS_TASKS

    for task in ADAS_TASKS:
        if task.name == label:
            return task.asil
    return Asil.QM


def task_verdict(label: str, report: StreamReport,
                 asil: Any = None) -> Dict[str, Any]:
    """The ISO 26262 verdict of one task's stream outcome.

    A safety-related task passes when (a) every frame was delivered on
    time — no drops and no deadline misses, the stream deadline being
    the task's FTTI budget — and (b) its observed fault-detection
    coverage meets the SPFM target of its ASIL (vacuously true without
    dangerous faults).  QM tasks always pass.

    Args:
        label: the task's label (used for the library fallback).
        report: the task's stream outcome.
        asil: explicit integrity level — normally
            :attr:`repro.api.stream.StreamSpec.asil`, so tagged replicas
            of a safety task keep its level; ``None`` falls back to
            :func:`task_asil`.
    """
    asil = as_asil(asil) if asil is not None else task_asil(label)
    dangerous = report.faults_detected + report.faults_sdc
    coverage = 1.0 if dangerous == 0 else report.faults_detected / dangerous
    target = TARGETS[asil].spfm
    coverage_ok = target is None or coverage >= target
    ftti_ok = report.deadline_misses == 0 and report.dropped == 0
    ok = (not asil.is_safety_related) or (ftti_ok and coverage_ok)
    return {
        "asil": asil.name,
        "coverage": coverage,
        "coverage_ok": coverage_ok,
        "ftti_ok": ftti_ok,
        "sdc_free": report.faults_sdc == 0,
        "ok": ok,
    }


@dataclass(frozen=True)
class PlatformReport:
    """Aggregated outcome of one platform execution (O(1) size).

    Attributes:
        label: the platform's human-readable identity.
        spec_hash: :attr:`~repro.api.platform.PlatformSpec.config_hash`
            of the executed spec (provenance).
        policy: placement policy used.
        placement: ``(task label, device name)`` pairs in canonical
            task-label order.
        devices: per-device accounting, keyed by device name — planned
            ``utilisation`` vs ``capacity``, the ``tasks`` placed there,
            and frame counters summed over them.
        tasks: per-task outcome, keyed by task label — the assigned
            ``device``, planned demand, stream headline counters, the
            stream report ``digest`` and the ISO 26262 verdict fields of
            :func:`task_verdict`.
        totals: platform-wide counters (frames, completed, dropped,
            deadline misses, fault outcomes, summed throughput, frame-
            weighted safe rate, longest stream makespan).
        asil: the rollup — ``worst_asil`` across the task set,
            ``violations`` (labels of failing tasks),
            ``worst_failed_asil`` and the overall ``verdict``
            (``"pass"``/``"fail"``).
    """

    label: str
    spec_hash: str
    policy: str
    placement: Tuple[Tuple[str, str], ...]
    devices: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)
    asil: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def feasible(self) -> bool:
        """Always True for an executed platform (infeasible specs raise)."""
        return True

    @property
    def all_ok(self) -> bool:
        """True when every task's ISO 26262 verdict passed."""
        return self.asil.get("verdict") == "pass"

    def summary(self) -> str:
        """One-line platform summary for reports."""
        return (
            f"{self.label} [{self.policy}]: devices={len(self.devices)} "
            f"tasks={len(self.tasks)} frames={self.totals.get('frames', 0):g} "
            f"dropped={self.totals.get('dropped', 0):g} "
            f"misses={self.totals.get('deadline_misses', 0):g} "
            f"sdc={self.totals.get('faults_sdc', 0):g} "
            f"asil={self.asil.get('worst_asil', '-')} "
            f"verdict={self.asil.get('verdict', '-')}"
        )

    # ------------------------------------------------------------------
    # canonical plain-data form (bit-identity comparisons, CLI --json)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form of the aggregate outcome.

        Two executions of the same spec produce *equal* dictionaries
        regardless of worker counts or task declaration order — the
        object the platform determinism guarantee is stated over (see
        ``docs/PLATFORM.md``).  Per-frame records are structurally
        absent.
        """
        return {
            "label": self.label,
            "spec_hash": self.spec_hash,
            "policy": self.policy,
            "feasible": self.feasible,
            "placement": {task: device for task, device in self.placement},
            "devices": {
                name: dict(sorted(entry.items()))
                for name, entry in sorted(self.devices.items())
            },
            "tasks": {
                label: dict(sorted(entry.items()))
                for label, entry in sorted(self.tasks.items())
            },
            "totals": dict(sorted(self.totals.items())),
            "asil": dict(sorted(self.asil.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformReport":
        """Rebuild a report from its :meth:`to_dict` form.

        Raises:
            PlatformError: when required keys are missing (the signature
                of loading something that is not a platform report).
        """
        if not isinstance(data, Mapping):
            raise PlatformError(
                f"PlatformReport expects a mapping, got {data!r}"
            )
        required = ("label", "spec_hash", "policy", "placement", "devices",
                    "tasks", "totals", "asil")
        missing = sorted(set(required) - set(data))
        if missing:
            raise PlatformError(
                f"not a PlatformReport payload; missing: "
                f"{', '.join(missing)}"
            )
        placement = data["placement"]
        if not isinstance(placement, Mapping):
            raise PlatformError(
                "not a PlatformReport payload; 'placement' must map "
                "task labels to device names"
            )
        return cls(
            label=data["label"],
            spec_hash=data["spec_hash"],
            policy=data["policy"],
            placement=tuple(sorted(placement.items())),
            devices={k: dict(v) for k, v in data["devices"].items()},
            tasks={k: dict(v) for k, v in data["tasks"].items()},
            totals=dict(data["totals"]),
            asil=dict(data["asil"]),
        )

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON form (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def digest(self) -> str:
        """Hex digest of the canonical form (aggregate provenance key)."""
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
