"""Hardware fault descriptors and their effect model.

Faults are applied *post hoc* to an execution trace: because the simulator
is deterministic and faults (in this coarse model) do not change timing,
one simulation per policy supports arbitrarily many injected faults — the
campaign machinery exploits this heavily.

The effect model encodes the paper's common-cause-fault reasoning:

* a **transient CCF** (voltage droop, clock glitch) disturbs *all* affected
  SMs at one instant; the corruption a computation suffers depends on what
  it was executing, so two redundant copies of the same block are corrupted
  *identically* — and thus undetectably — exactly when they are phase-
  aligned at the fault instant.  The fault signature therefore quantises
  the block's work position at the fault time; equal signatures on both
  copies defeat the DCLS comparison.
* a **permanent SM fault** deterministically corrupts every computation on
  that SM; redundant copies are corrupted identically exactly when both
  run on the faulty SM.
* a **local transient (SEU)** hits a single physical location, corrupting
  at most one resident block with an injection-unique signature, so the
  comparison always catches it (or it is masked).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import FaultInjectionError
from repro.gpu.trace import TBRecord

__all__ = ["FaultDescriptor", "TransientCCF", "PermanentSMFault", "SEUFault"]

#: Work-position quantum for transient-CCF alignment (one "instruction").
PHASE_QUANTUM = 1.0


class FaultDescriptor:
    """Base class of all injectable hardware faults.

    Subclasses implement :meth:`effect_on`, returning the corruption
    *signature* a thread-block record suffers from this fault (or ``None``
    when unaffected).  Two records receiving equal signatures produce
    identical erroneous outputs — the comparison-defeating case.
    """

    def effect_on(self, record: TBRecord) -> Optional[Tuple]:
        """Corruption signature of ``record`` under this fault, or None."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable label for campaign reports."""
        return type(self).__name__


@dataclass(frozen=True)
class TransientCCF(FaultDescriptor):
    """Chip-wide (or SM-subset) transient disturbance at one instant.

    Attributes:
        time: fault instant in cycles.
        fault_id: campaign-unique identifier (part of the signature —
            distinct faults never produce colliding signatures).
        sms: affected SMs; ``None`` means the whole chip (voltage droop).
        work_per_block: work units of the affected kernels, used to map
            execution phase to a work position.
        phase_quantum: work-position quantisation; copies within the same
            quantum at the fault instant are corrupted identically.
    """

    time: float
    fault_id: int
    sms: Optional[Tuple[int, ...]] = None
    work_per_block: float = 1000.0
    phase_quantum: float = PHASE_QUANTUM

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultInjectionError("fault time cannot be negative")
        if self.work_per_block <= 0 or self.phase_quantum <= 0:
            raise FaultInjectionError("work/quantum must be positive")

    def effect_on(self, record: TBRecord) -> Optional[Tuple]:
        """Quantised-phase signature for blocks active at the fault time."""
        if self.sms is not None and record.sm not in self.sms:
            return None
        phase = record.phase_at(self.time)
        if phase is None:
            return None
        work_position = phase * self.work_per_block
        bucket = math.floor(work_position / self.phase_quantum)
        return ("ccf", self.fault_id, record.tb_index, bucket)

    def describe(self) -> str:
        scope = "chip-wide" if self.sms is None else f"SMs {self.sms}"
        return f"TransientCCF@{self.time:.0f}cy ({scope})"


@dataclass(frozen=True)
class PermanentSMFault(FaultDescriptor):
    """Permanent defect in one SM's execution units.

    Every block executing (any part of its work) on the SM after the fault
    manifests is corrupted deterministically: the erroneous output depends
    only on the computation, so redundant copies that both visit the
    faulty SM agree on the wrong answer.

    Attributes:
        sm: the defective SM.
        fault_id: campaign-unique identifier.
        since: cycle from which the defect is active (0 = from power-on).
    """

    sm: int
    fault_id: int
    since: float = 0.0

    def __post_init__(self) -> None:
        if self.sm < 0:
            raise FaultInjectionError("SM id cannot be negative")
        if self.since < 0:
            raise FaultInjectionError("fault onset cannot be negative")

    def effect_on(self, record: TBRecord) -> Optional[Tuple]:
        """Deterministic corruption for blocks touching the faulty SM."""
        if record.sm != self.sm or record.end <= self.since:
            return None
        return ("perm", self.fault_id, record.tb_index)

    def describe(self) -> str:
        return f"PermanentSMFault(sm={self.sm}, since={self.since:.0f}cy)"


@dataclass(frozen=True)
class SEUFault(FaultDescriptor):
    """Single-event upset: one particle strike in one SM at one instant.

    A strike flips state belonging to at most one resident block; the
    corruption is injection-unique (the flipped bit depends on the strike
    location), so it can never match a corruption of the redundant copy.
    The struck block is chosen deterministically as the lowest-index
    active block on the SM (the model only needs *one* victim).

    Attributes:
        sm: struck SM.
        time: strike instant in cycles.
        fault_id: campaign-unique identifier.
    """

    sm: int
    time: float
    fault_id: int

    def __post_init__(self) -> None:
        if self.sm < 0:
            raise FaultInjectionError("SM id cannot be negative")
        if self.time < 0:
            raise FaultInjectionError("fault time cannot be negative")

    def effect_on(self, record: TBRecord) -> Optional[Tuple]:
        """Unique-signature corruption for the struck block.

        Victim selection (lowest ``(instance_id, tb_index)`` among active
        blocks on the SM) is resolved by the injector, which calls this
        for candidate records; the signature embeds the victim identity so
        an accidental double application still cannot collide across
        copies.
        """
        if record.sm != self.sm or not record.active_at(self.time):
            return None
        return ("seu", self.fault_id, record.instance_id, record.tb_index)

    def describe(self) -> str:
        return f"SEU(sm={self.sm}, t={self.time:.0f}cy)"
