"""Application of fault descriptors to execution traces.

The injector converts a :class:`~repro.faults.types.FaultDescriptor` plus
an :class:`~repro.gpu.trace.ExecutionTrace` into a *corruption map*
``(instance_id, tb_index) -> signature`` that the output-signature builder
(:func:`repro.redundancy.comparison.build_signature`) consumes.  SEU
faults additionally restrict the effect to a single victim block.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import FaultInjectionError
from repro.faults.types import FaultDescriptor, SEUFault
from repro.gpu.trace import ExecutionTrace

__all__ = ["apply_fault", "CorruptionMap"]

#: Corruption map type: (instance_id, tb_index) -> fault signature.
CorruptionMap = Dict[Tuple[int, int], Tuple]


def apply_fault(fault: FaultDescriptor, trace: ExecutionTrace) -> CorruptionMap:
    """Compute the corruption a fault inflicts on a trace.

    Args:
        fault: the fault descriptor.
        trace: the (deterministic) execution trace to corrupt.

    Returns:
        Mapping from affected ``(instance_id, tb_index)`` to the fault's
        corruption signature.  Empty when the fault hits no active block
        (a masked fault).

    Raises:
        FaultInjectionError: when the fault references an SM the trace's
            GPU does not have.
    """
    sm_attr = getattr(fault, "sm", None)
    if sm_attr is not None and sm_attr >= trace.num_sms:
        raise FaultInjectionError(
            f"fault targets SM {sm_attr}, trace has {trace.num_sms} SMs"
        )
    sms_attr = getattr(fault, "sms", None)
    if sms_attr is not None:
        bad = [sm for sm in sms_attr if not (0 <= sm < trace.num_sms)]
        if bad:
            raise FaultInjectionError(
                f"fault targets unknown SMs {bad} (trace has "
                f"{trace.num_sms})"
            )

    corruption: CorruptionMap = {}
    for record in trace.tb_records:
        signature = fault.effect_on(record)
        if signature is not None:
            corruption[(record.instance_id, record.tb_index)] = signature

    if isinstance(fault, SEUFault) and len(corruption) > 1:
        # a single strike has a single victim: lowest (instance, tb) active
        victim = min(corruption)
        corruption = {victim: corruption[victim]}
    return corruption
