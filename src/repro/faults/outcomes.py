"""Fault-outcome classification.

Given the corruption a fault inflicted and the DCLS comparisons of the
redundant run, each injection is classified as:

* **MASKED** — the fault hit no active computation; outputs are correct.
* **DETECTED** — at least one comparison mismatched: the safety mechanism
  (redundant execution + DCLS comparison) caught the error, and recovery
  (re-execution within the FTTI) proceeds.
* **SDC** — silent data corruption: every corrupted block carries the
  *same* corruption in *all* copies, so the comparison passes while the
  output is wrong.  This is the ISO 26262 single-point-of-failure the
  paper's scheduling policies are designed to exclude.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.faults.injector import CorruptionMap
from repro.redundancy.comparison import ComparisonResult

__all__ = ["FaultOutcome", "InjectionResult", "classify_outcome"]


class FaultOutcome(enum.Enum):
    """Terminal classification of one fault injection."""

    MASKED = "masked"
    DETECTED = "detected"
    SDC = "silent-data-corruption"


@dataclass(frozen=True)
class InjectionResult:
    """Record of one injection: the fault, its reach and its outcome.

    Attributes:
        fault_label: human-readable fault description.
        outcome: terminal classification.
        corrupted_blocks: number of (instance, block) pairs corrupted.
        affected_logicals: logical kernels with at least one corrupted
            block.
    """

    fault_label: str
    outcome: FaultOutcome
    corrupted_blocks: int
    affected_logicals: Tuple[int, ...]


def classify_outcome(corruption: CorruptionMap,
                     comparisons: Sequence[ComparisonResult]
                     ) -> FaultOutcome:
    """Classify one injection from its corruption and the comparisons.

    ``comparisons`` must be the DCLS comparisons computed *with* the
    corruption applied (see
    :meth:`repro.faults.campaign.FaultCampaign.run`).

    The classification is conservative in the safety direction: an
    injection that produces any detectable mismatch is DETECTED even if it
    *also* produced an agreeing corruption elsewhere — ISO 26262 requires
    the fault to be detected, after which recovery re-executes everything.
    An injection whose only effects agree across all copies is SDC.
    """
    if not corruption:
        return FaultOutcome.MASKED
    if any(c.error_detected for c in comparisons):
        return FaultOutcome.DETECTED
    if any(c.silent_corruption for c in comparisons):
        return FaultOutcome.SDC
    # corruption existed but no comparison saw it: can only happen when
    # corrupted launches were not part of any comparison group — treat as
    # silent corruption (worst case) rather than hiding it.
    return FaultOutcome.SDC
