"""Fault-injection campaigns over redundant executions.

A campaign takes one *clean* redundant run (trace + comparisons are
deterministic), samples a population of hardware faults, applies each to
the trace, re-derives the affected output comparisons and classifies the
outcome.  Because faults do not perturb timing in this coarse model, a
single simulation per scheduling policy supports the whole campaign —
thousands of injections cost milliseconds.

This is experiment E5 (DESIGN.md): the paper *claims* SRRS and HALF
achieve diverse redundancy by construction; the campaign measures the
silent-corruption rate of each policy under transient CCFs (voltage
droops), permanent SM defects and local SEUs.  Expected result: the
default scheduler exhibits SDC (redundant copies corrupted identically),
SRRS and HALF do not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError, SafetyViolation
from repro.faults.injector import CorruptionMap, apply_fault
from repro.faults.outcomes import FaultOutcome, InjectionResult, classify_outcome
from repro.faults.types import (
    FaultDescriptor,
    PermanentSMFault,
    SEUFault,
    TransientCCF,
)
from repro.iso26262.metrics import HardwareMetrics, coverage_from_campaign
from repro.redundancy.comparison import build_signature, compare_signatures
from repro.redundancy.manager import RedundantRunResult

__all__ = ["CampaignConfig", "CampaignReport", "FaultCampaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Sampling plan of a fault-injection campaign.

    Attributes:
        transient_ccf: number of chip-wide transient CCFs (voltage droops)
            with uniformly random fault instants.
        permanent_sm: number of permanent SM defects, uniform over SMs
            with uniformly random onset times.
        seu: number of local single-event upsets, uniform over (SM, time).
        seed: PRNG seed (campaigns are reproducible).
        phase_quantum: transient-CCF alignment quantum in work units.
    """

    transient_ccf: int = 200
    permanent_sm: int = 50
    seu: int = 100
    seed: int = 2019
    phase_quantum: float = 1.0

    def __post_init__(self) -> None:
        if min(self.transient_ccf, self.permanent_sm, self.seu) < 0:
            raise FaultInjectionError("injection counts cannot be negative")
        if self.transient_ccf + self.permanent_sm + self.seu == 0:
            raise FaultInjectionError("campaign must inject at least one fault")
        if self.phase_quantum <= 0:
            raise FaultInjectionError("phase quantum must be positive")


@dataclass
class CampaignReport:
    """Aggregated campaign outcome.

    Attributes:
        policy: scheduler label of the underlying run.
        injections: per-injection records.
        by_kind: ``fault-kind -> outcome -> count`` breakdown.
    """

    policy: str
    injections: List[InjectionResult] = field(default_factory=list)
    by_kind: Dict[str, Dict[FaultOutcome, int]] = field(default_factory=dict)
    # incremental outcome tally: ``injections`` is append-only, so counts
    # fold in lazily up to ``_counted_upto`` instead of rescanning the
    # whole campaign on every ``masked``/``detected``/``sdc`` access
    _outcome_counts: Dict[FaultOutcome, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _counted_upto: int = field(default=0, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def record(self, result: InjectionResult, fault_kind: str) -> None:
        """Append one injection outcome, maintaining all tallies."""
        self.injections.append(result)
        bucket = self.by_kind.setdefault(fault_kind, {})
        bucket[result.outcome] = bucket.get(result.outcome, 0) + 1

    def _counts(self) -> Dict[FaultOutcome, int]:
        """Outcome tally, folding in any records appended since last use."""
        injections = self.injections
        counts = self._outcome_counts
        while self._counted_upto < len(injections):
            outcome = injections[self._counted_upto].outcome
            counts[outcome] = counts.get(outcome, 0) + 1
            self._counted_upto += 1
        return counts

    def count(self, outcome: FaultOutcome) -> int:
        """Total injections with the given outcome (amortised O(1))."""
        return self._counts().get(outcome, 0)

    @property
    def total(self) -> int:
        """Campaign size."""
        return len(self.injections)

    @property
    def masked(self) -> int:
        """Injections that hit no active computation."""
        return self.count(FaultOutcome.MASKED)

    @property
    def detected(self) -> int:
        """Injections caught by the DCLS comparison."""
        return self.count(FaultOutcome.DETECTED)

    @property
    def sdc(self) -> int:
        """Silent data corruptions (the ASIL-D killer)."""
        return self.count(FaultOutcome.SDC)

    @property
    def detection_coverage(self) -> float:
        """Detected / (detected + SDC); 1.0 when nothing was dangerous."""
        dangerous = self.detected + self.sdc
        return 1.0 if dangerous == 0 else self.detected / dangerous

    def sdc_injections(self) -> List[InjectionResult]:
        """The silent-corruption records (useful for debugging policies)."""
        return [r for r in self.injections if r.outcome is FaultOutcome.SDC]

    def assert_no_sdc(self) -> None:
        """Raise when any injection escaped detection.

        Raises:
            SafetyViolation: listing up to five offending injections.
        """
        offenders = self.sdc_injections()
        if offenders:
            sample = "; ".join(r.fault_label for r in offenders[:5])
            raise SafetyViolation(
                f"{self.policy}: {len(offenders)} silent corruption(s) "
                f"escaped the DCLS comparison, e.g. {sample}"
            )

    def hardware_metrics(self, raw_failure_rate_per_hour: float = 1e-6
                         ) -> HardwareMetrics:
        """Map campaign statistics onto ISO 26262 architectural metrics."""
        return coverage_from_campaign(
            total_injections=self.total,
            detected=self.detected,
            masked=self.masked,
            undetected=self.sdc,
            raw_failure_rate_per_hour=raw_failure_rate_per_hour,
        )

    def summary(self) -> str:
        """One-line campaign summary for reports."""
        return (
            f"{self.policy}: n={self.total} masked={self.masked} "
            f"detected={self.detected} SDC={self.sdc} "
            f"coverage={self.detection_coverage:.4f}"
        )


class FaultCampaign:
    """Runs fault-injection campaigns against a redundant execution.

    Args:
        run: the clean redundant run to attack (one per policy).
    """

    def __init__(self, run: RedundantRunResult) -> None:
        if run.error_detected or run.silent_corruption:
            raise FaultInjectionError(
                "campaign baseline must be a clean (fault-free) run"
            )
        self._run = run
        self._trace = run.sim.trace
        # instance ids per logical, in copy order, for quick re-comparison
        self._groups: Dict[int, Tuple[int, ...]] = {}
        for logical in self._trace.logical_ids():
            copies = self._trace.copies_of(logical)
            self._groups[logical] = tuple(
                copies[c].instance_id for c in sorted(copies)
            )

    # ------------------------------------------------------------------
    def classify(self, fault: FaultDescriptor) -> InjectionResult:
        """Inject one fault and classify its outcome."""
        corruption = apply_fault(fault, self._trace)
        outcome = self._classify_corruption(corruption)
        affected = tuple(
            sorted(
                {
                    self._trace.span(iid).logical_id
                    for (iid, _tb) in corruption
                }
            )
        )
        return InjectionResult(
            fault_label=fault.describe(),
            outcome=outcome,
            corrupted_blocks=len(corruption),
            affected_logicals=affected,
        )

    def _classify_corruption(self, corruption: CorruptionMap) -> FaultOutcome:
        if not corruption:
            return FaultOutcome.MASKED
        affected_logicals = {
            self._trace.span(iid).logical_id for (iid, _tb) in corruption
        }
        comparisons = []
        for logical in affected_logicals:
            signatures = [
                build_signature(self._trace, iid, corruption)
                for iid in self._groups[logical]
            ]
            comparisons.append(compare_signatures(signatures))
        return classify_outcome(corruption, comparisons)

    # ------------------------------------------------------------------
    def sample_faults(self, config: CampaignConfig) -> List[FaultDescriptor]:
        """Draw the campaign's fault population (reproducibly)."""
        rng = random.Random(config.seed)
        makespan = self._trace.makespan
        num_sms = self._trace.num_sms
        work_hint = max(
            (r.duration for r in self._trace.tb_records), default=1000.0
        )
        faults: List[FaultDescriptor] = []
        fid = 0
        for _ in range(config.transient_ccf):
            faults.append(
                TransientCCF(
                    time=rng.uniform(0.0, makespan),
                    fault_id=fid,
                    sms=None,
                    work_per_block=work_hint,
                    phase_quantum=config.phase_quantum,
                )
            )
            fid += 1
        for _ in range(config.permanent_sm):
            faults.append(
                PermanentSMFault(
                    sm=rng.randrange(num_sms),
                    fault_id=fid,
                    since=rng.uniform(0.0, makespan * 0.5),
                )
            )
            fid += 1
        for _ in range(config.seu):
            faults.append(
                SEUFault(
                    sm=rng.randrange(num_sms),
                    time=rng.uniform(0.0, makespan),
                    fault_id=fid,
                )
            )
            fid += 1
        return faults

    def run(self, config: Optional[CampaignConfig] = None,
            faults: Optional[Sequence[FaultDescriptor]] = None
            ) -> CampaignReport:
        """Run the campaign.

        Args:
            config: sampling plan (ignored when ``faults`` is given).
            faults: explicit fault population (overrides sampling).

        Returns:
            The aggregated :class:`CampaignReport`.
        """
        if faults is None:
            faults = self.sample_faults(config or CampaignConfig())
        report = CampaignReport(policy=self._run.sim.scheduler_name)
        for fault in faults:
            report.record(self.classify(fault), type(fault).__name__)
        return report
