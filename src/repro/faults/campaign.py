"""Fault-injection campaigns over redundant executions.

A campaign takes one *clean* redundant run (trace + comparisons are
deterministic), samples a population of hardware faults, applies each to
the trace, re-derives the affected output comparisons and classifies the
outcome.  Because faults do not perturb timing in this coarse model, a
single simulation per scheduling policy supports the whole campaign —
thousands of injections cost milliseconds.

This is experiment E5 (DESIGN.md): the paper *claims* SRRS and HALF
achieve diverse redundancy by construction; the campaign measures the
silent-corruption rate of each policy under transient CCFs (voltage
droops), permanent SM defects and local SEUs.  Expected result: the
default scheduler exhibits SDC (redundant copies corrupted identically),
SRRS and HALF do not.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError, SafetyViolation, StatsError
from repro.faults.injector import CorruptionMap, apply_fault
from repro.faults.outcomes import FaultOutcome, InjectionResult, classify_outcome
from repro.faults.types import (
    FaultDescriptor,
    PermanentSMFault,
    SEUFault,
    TransientCCF,
)
from repro.iso26262.metrics import HardwareMetrics, coverage_from_campaign
from repro.redundancy.comparison import build_signature, compare_signatures
from repro.redundancy.manager import RedundantRunResult
from repro.stats.estimators import ImportanceRate, StratifiedRate, UniformRate
from repro.stats.intervals import RateEstimate

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FaultCampaign",
    "SamplingConfig",
    "SDC_SAMPLE_LIMIT",
    "fault_substream",
    "sampling_metadata",
]

#: Canonical short fault kinds, in layout order.
CANONICAL_KINDS: Tuple[str, ...] = ("ccf", "perm", "seu")

#: Short fault kind -> fault class name (the ``by_kind`` report keys).
KIND_CLASS_NAMES: Dict[str, str] = {
    "ccf": "TransientCCF",
    "perm": "PermanentSMFault",
    "seu": "SEUFault",
}

#: Inverse of :data:`KIND_CLASS_NAMES`.
CLASS_NAME_KINDS: Dict[str, str] = {v: k for k, v in KIND_CLASS_NAMES.items()}

#: Version tag of the sampling metadata block in report payloads.
SAMPLING_SCHEMA = 2

#: How many SDC fault labels a report retains as diagnostic examples when
#: it aggregates counts instead of full records (see
#: :meth:`CampaignReport.merge_counts`).
SDC_SAMPLE_LIMIT = 5


def fault_substream(seed: int, index: int) -> random.Random:
    """PRNG substream of fault ``index`` within a campaign's seed schedule.

    The campaign's randomness is an *indexed* stream: fault ``index`` draws
    from a PRNG seeded with ``SHA-256(seed, index)``, so any contiguous
    shard of the index space can regenerate exactly its own faults without
    consuming (or even knowing about) the draws of other shards.  This is
    what makes the sharded campaign population independent of the shard
    count — see ``docs/CAMPAIGNS.md``.
    """
    digest = hashlib.sha256(f"{seed}:{index}".encode("ascii")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class CampaignConfig:
    """Sampling plan of a fault-injection campaign.

    Attributes:
        transient_ccf: number of chip-wide transient CCFs (voltage droops)
            with uniformly random fault instants.
        permanent_sm: number of permanent SM defects, uniform over SMs
            with uniformly random onset times.
        seu: number of local single-event upsets, uniform over (SM, time).
        seed: PRNG seed (campaigns are reproducible).
        phase_quantum: transient-CCF alignment quantum in work units.
    """

    transient_ccf: int = 200
    permanent_sm: int = 50
    seu: int = 100
    seed: int = 2019
    phase_quantum: float = 1.0

    def __post_init__(self) -> None:
        if min(self.transient_ccf, self.permanent_sm, self.seu) < 0:
            raise FaultInjectionError("injection counts cannot be negative")
        if self.transient_ccf + self.permanent_sm + self.seu == 0:
            raise FaultInjectionError("campaign must inject at least one fault")
        if self.phase_quantum <= 0:
            raise FaultInjectionError("phase quantum must be positive")

    @property
    def total_injections(self) -> int:
        """Campaign size: the number of faults the plan injects."""
        return self.transient_ccf + self.permanent_sm + self.seu


@dataclass(frozen=True)
class SamplingConfig:
    """Fault-space sampling design — the v2, prefix-stable layouts.

    The legacy (v1) indexed population segments the index space by kind
    (``[0, ccf)`` CCFs, then permanents, then SEUs), which is *not*
    prefix-extendable: growing the population changes the kind of
    existing indices.  The two v2 layouts are prefix-stable — the fault
    at index ``i`` never depends on the population size — which is what
    lets the repeat-until-confidence runner keep extending a campaign
    while staying bit-reproducible and resumable:

    * ``stratified`` — the kind of index ``i`` is
      ``block[i % len(block)]``, where ``block`` expands the integer
      allocation weights in canonical kind order.  Per-kind sample
      counts of any prefix are fixed (to within one block).
    * ``importance`` — the kind of index ``i`` is drawn from the
      index's own PRNG substream with probability proportional to the
      allocation weights (the proposal distribution ``q``); estimates
      reweight events by ``p_k / q_k`` (Horvitz–Thompson).

    Attributes:
        method: ``"stratified"`` or ``"importance"``.
        transient_ccf / permanent_sm / seu: relative integer allocation
            weights over the kinds (how the injection budget is spent —
            the *nominal* population mix stays in
            :class:`CampaignConfig`).
    """

    method: str
    transient_ccf: int = 1
    permanent_sm: int = 1
    seu: int = 1

    def __post_init__(self) -> None:
        if self.method not in ("stratified", "importance"):
            raise FaultInjectionError(
                f"unknown sampling method {self.method!r} "
                "(expected stratified or importance)"
            )
        if min(self.transient_ccf, self.permanent_sm, self.seu) < 0:
            raise FaultInjectionError(
                "sampling allocation weights cannot be negative"
            )
        if self.transient_ccf + self.permanent_sm + self.seu == 0:
            raise FaultInjectionError(
                "at least one sampling allocation weight must be positive"
            )

    # ------------------------------------------------------------------
    @property
    def allocation(self) -> Dict[str, int]:
        """Allocation weights keyed by canonical short kind."""
        return {
            "ccf": self.transient_ccf,
            "perm": self.permanent_sm,
            "seu": self.seu,
        }

    def block(self) -> Tuple[str, ...]:
        """The stratified layout's kind block, in canonical kind order."""
        allocation = self.allocation
        return tuple(
            kind for kind in CANONICAL_KINDS
            for _ in range(allocation[kind])
        )

    def kind_at(self, index: int) -> str:
        """Stratified kind of fault ``index`` (deterministic layout)."""
        block = self.block()
        return block[index % len(block)]

    def draw_kind(self, rng: random.Random) -> str:
        """Importance-sampled kind (consumes one draw from ``rng``)."""
        total = self.transient_ccf + self.permanent_sm + self.seu
        pick = rng.randrange(total)
        if pick < self.transient_ccf:
            return "ccf"
        if pick < self.transient_ccf + self.permanent_sm:
            return "perm"
        return "seu"

    def validate_support(self, config: CampaignConfig) -> None:
        """Check the unbiasedness support condition against a plan.

        Every kind with positive *nominal* population share must have a
        positive allocation weight — otherwise part of the population
        could never be sampled and the reweighted estimate would be
        biased.

        Raises:
            FaultInjectionError: naming the unsupported kind.
        """
        nominal = {
            "ccf": config.transient_ccf,
            "perm": config.permanent_sm,
            "seu": config.seu,
        }
        allocation = self.allocation
        for kind in CANONICAL_KINDS:
            if nominal[kind] > 0 and allocation[kind] == 0:
                raise FaultInjectionError(
                    f"sampling allocation gives no weight to kind "
                    f"{kind!r}, which has nominal population share "
                    f"{nominal[kind]} — the reweighted estimate would "
                    "be biased"
                )


def sampling_metadata(config: CampaignConfig,
                      sampling: SamplingConfig) -> Dict[str, object]:
    """The report-level sampling block (pure integers, digest-safe).

    Carried by :attr:`CampaignReport.sampling` and emitted under the
    versioned ``"sampling"`` key of :meth:`CampaignReport.to_dict`.
    Only integer counts are stored; the estimators derive population
    probabilities and importance weights from them at estimation time,
    so report digests never depend on float summation order.
    """
    sampling.validate_support(config)
    return {
        "schema": SAMPLING_SCHEMA,
        "method": sampling.method,
        "nominal": {
            "ccf": config.transient_ccf,
            "perm": config.permanent_sm,
            "seu": config.seu,
        },
        "allocation": dict(sampling.allocation),
    }


@dataclass
class CampaignReport:
    """Aggregated campaign outcome.

    A report accumulates through two complementary channels:

    * :meth:`record` appends full :class:`InjectionResult` records (the
      classic in-memory campaign path);
    * :meth:`merge_counts` folds in pre-aggregated outcome counts (the
      sharded campaign path — see :mod:`repro.campaigns` — which never
      materialises the per-injection records of a whole campaign).

    Attributes:
        policy: scheduler label of the underlying run.
        injections: per-injection records (empty for counts-only reports).
        by_kind: ``fault-kind -> outcome -> count`` breakdown.
        sdc_samples: up to :data:`SDC_SAMPLE_LIMIT` fault labels of silent
            corruptions, kept as diagnostic examples even when the full
            records are not.
        sampling: the versioned sampling-metadata block
            (:func:`sampling_metadata`) when the campaign used a v2
            sampler, ``None`` for the legacy uniform population.  With
            it set, rate estimates are reweighted to the nominal fault
            mix and :meth:`to_dict` gains the ``"sampling"`` /
            ``"weighted_rates"`` keys (v1 payloads are bit-unchanged).
    """

    policy: str
    injections: List[InjectionResult] = field(default_factory=list)
    by_kind: Dict[str, Dict[FaultOutcome, int]] = field(default_factory=dict)
    sdc_samples: List[str] = field(default_factory=list)
    sampling: Optional[Dict[str, object]] = None
    # incremental outcome tally: ``injections`` is append-only, so counts
    # fold in lazily up to ``_counted_upto`` instead of rescanning the
    # whole campaign on every ``masked``/``detected``/``sdc`` access
    _outcome_counts: Dict[FaultOutcome, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _counted_upto: int = field(default=0, init=False, repr=False, compare=False)
    # counts folded in via merge_counts (no per-injection records behind them)
    _merged_counts: Dict[FaultOutcome, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _merged_total: int = field(default=0, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def record(self, result: InjectionResult, fault_kind: str) -> None:
        """Append one injection outcome, maintaining all tallies."""
        self.injections.append(result)
        bucket = self.by_kind.setdefault(fault_kind, {})
        bucket[result.outcome] = bucket.get(result.outcome, 0) + 1
        if (result.outcome is FaultOutcome.SDC
                and len(self.sdc_samples) < SDC_SAMPLE_LIMIT):
            self.sdc_samples.append(result.fault_label)

    def merge_counts(self, by_kind: Mapping[str, Mapping[FaultOutcome, int]],
                     *, sdc_samples: Iterable[str] = (),
                     sampling: Optional[Mapping[str, object]] = None) -> None:
        """Fold pre-aggregated outcome counts into the report.

        This is the streaming-aggregation entry point of the sharded
        campaign runner: each completed shard contributes only its
        ``fault-kind -> outcome -> count`` table (plus a bounded sample of
        SDC labels), so aggregating a multi-million-injection campaign
        costs O(shards), not O(injections).

        Args:
            by_kind: outcome counts per fault kind (all counts >= 0).
            sdc_samples: SDC fault labels; retained up to
                :data:`SDC_SAMPLE_LIMIT` across the whole report.
            sampling: sampling-metadata block of the contributing counts
                (:func:`sampling_metadata`).  The first merge installs
                it; later merges must agree — per-stratum reweighting is
                only meaningful when every folded shard was drawn under
                the same design.

        Raises:
            FaultInjectionError: on negative counts or disagreeing
                sampling metadata.
        """
        # validate everything before mutating anything: a rejected merge
        # must not leave the report holding a half-applied shard
        for kind, outcomes in by_kind.items():
            for outcome, count in outcomes.items():
                if count < 0:
                    raise FaultInjectionError(
                        f"negative outcome count for {kind}/{outcome}"
                    )
        if sampling is not None:
            incoming = dict(sampling)
            if self.sampling is None:
                self.sampling = incoming
            elif self.sampling != incoming:
                raise FaultInjectionError(
                    "cannot fold counts sampled under a different design: "
                    f"report carries {self.sampling!r}, shard carries "
                    f"{incoming!r}"
                )
        for kind, outcomes in by_kind.items():
            bucket = self.by_kind.setdefault(kind, {})
            for outcome, count in outcomes.items():
                bucket[outcome] = bucket.get(outcome, 0) + count
                self._merged_counts[outcome] = (
                    self._merged_counts.get(outcome, 0) + count
                )
                self._merged_total += count
        for label in sdc_samples:
            if len(self.sdc_samples) >= SDC_SAMPLE_LIMIT:
                break
            self.sdc_samples.append(label)

    def _counts(self) -> Dict[FaultOutcome, int]:
        """Outcome tally, folding in any records appended since last use."""
        injections = self.injections
        counts = self._outcome_counts
        while self._counted_upto < len(injections):
            outcome = injections[self._counted_upto].outcome
            counts[outcome] = counts.get(outcome, 0) + 1
            self._counted_upto += 1
        return counts

    def count(self, outcome: FaultOutcome) -> int:
        """Total injections with the given outcome (amortised O(1))."""
        return (self._counts().get(outcome, 0)
                + self._merged_counts.get(outcome, 0))

    @property
    def total(self) -> int:
        """Campaign size (records plus merged counts)."""
        return len(self.injections) + self._merged_total

    @property
    def masked(self) -> int:
        """Injections that hit no active computation."""
        return self.count(FaultOutcome.MASKED)

    @property
    def detected(self) -> int:
        """Injections caught by the DCLS comparison."""
        return self.count(FaultOutcome.DETECTED)

    @property
    def sdc(self) -> int:
        """Silent data corruptions (the ASIL-D killer)."""
        return self.count(FaultOutcome.SDC)

    @property
    def detection_coverage(self) -> float:
        """Detected / (detected + SDC); 1.0 when nothing was dangerous."""
        dangerous = self.detected + self.sdc
        return 1.0 if dangerous == 0 else self.detected / dangerous

    # ------------------------------------------------------------------
    # statistical estimation (repro.stats)
    # ------------------------------------------------------------------
    def _strata_counts(self, outcome: FaultOutcome) -> Dict[str, Tuple[int, int]]:
        """``kind -> (events, trials)`` over the report's by-kind table."""
        strata: Dict[str, Tuple[int, int]] = {}
        for class_name, outcomes in self.by_kind.items():
            kind = CLASS_NAME_KINDS.get(class_name, class_name)
            events, trials = strata.get(kind, (0, 0))
            strata[kind] = (
                events + outcomes.get(outcome, 0),
                trials + sum(outcomes.values()),
            )
        return strata

    def rate_estimator(self, metric: str = "sdc"):
        """The estimator matching this report's sampling design.

        Uniform (legacy) reports get a plain binomial proportion;
        reports carrying v2 :attr:`sampling` metadata get the matching
        stratified or Horvitz–Thompson importance estimator, reweighted
        to the nominal fault mix.  ``metric`` is ``"masked"``,
        ``"detected"`` or ``"sdc"``.

        Raises:
            FaultInjectionError: on an empty report or unknown metric.
            StatsError: when the sampling metadata cannot support an
                unbiased estimate (e.g. a nominal stratum was never
                sampled).
        """
        self._require_injections(f"rate_estimator({metric!r})")
        try:
            outcome = FaultOutcome[metric.upper()]
        except KeyError:
            raise FaultInjectionError(
                f"unknown campaign metric {metric!r}; expected one of "
                + ", ".join(o.name.lower() for o in FaultOutcome)
            ) from None
        if self.sampling is None:
            return UniformRate(self.count(outcome), self.total,
                               metric=metric)
        strata = self._strata_counts(outcome)
        nominal = {str(k): int(v)
                   for k, v in dict(self.sampling["nominal"]).items()}
        allocation = {str(k): int(v)
                      for k, v in dict(self.sampling["allocation"]).items()}
        nominal_total = sum(nominal.values())
        population = {kind: count / nominal_total
                      for kind, count in nominal.items()}
        if self.sampling["method"] == "stratified":
            return StratifiedRate(strata, population, metric=metric)
        allocation_total = sum(allocation.values())
        weights = {
            kind: (population[kind]
                   / (allocation[kind] / allocation_total))
            for kind in allocation if allocation[kind] > 0
        }
        return ImportanceRate(strata, weights, metric=metric)

    def rate_interval(self, metric: str = "sdc", *,
                      confidence: float = 0.95, method: str = "auto",
                      resamples: int = 1000, seed: int = 0) -> RateEstimate:
        """Confidence interval on one outcome rate.

        A pure function of the report's integer counts (and, for the
        bootstrap, the explicit ``seed``) — computing it never perturbs
        the report's canonical form or digest.

        Raises:
            FaultInjectionError: on an empty report or unknown metric.
            StatsError: on an unsupported interval method for the
                report's sampling design.
        """
        return self.rate_estimator(metric).interval(
            confidence=confidence, method=method,
            resamples=resamples, seed=seed,
        )

    def coverage_interval(self, *, confidence: float = 0.95,
                          method: str = "auto", resamples: int = 1000,
                          seed: int = 0) -> RateEstimate:
        """Confidence interval on the detection coverage.

        Coverage is the conditional proportion detected / (detected +
        SDC), a plain binomial in the dangerous-outcome subsample, so it
        gets the uniform (Wilson-capable) treatment under every sampling
        design.

        Raises:
            FaultInjectionError: when the report has no dangerous
                outcomes (the conditional rate is undefined).
        """
        dangerous = self.detected + self.sdc
        if dangerous == 0:
            raise FaultInjectionError(
                f"campaign report for policy {self.policy!r} has no "
                "dangerous outcomes: the coverage interval is undefined"
            )
        return UniformRate(self.detected, dangerous,
                           metric="coverage").interval(
            confidence=confidence, method=method,
            resamples=resamples, seed=seed,
        )

    def metric_intervals(self, *, confidence: float = 0.95,
                         method: str = "auto", resamples: int = 1000,
                         seed: int = 0) -> Dict[str, RateEstimate]:
        """Intervals on every campaign rate, keyed by metric name.

        Covers the three outcome rates plus ``"coverage"`` when the
        report saw any dangerous outcome.

        Raises:
            FaultInjectionError: on an empty report.
        """
        self._require_injections("metric_intervals()")
        intervals = {
            metric: self.rate_interval(metric, confidence=confidence,
                                       method=method, resamples=resamples,
                                       seed=seed)
            for metric in ("masked", "detected", "sdc")
        }
        if self.detected + self.sdc > 0:
            intervals["coverage"] = self.coverage_interval(
                confidence=confidence, method=method,
                resamples=resamples, seed=seed,
            )
        return intervals

    def sdc_injections(self) -> List[InjectionResult]:
        """The silent-corruption records (useful for debugging policies).

        Counts-only reports (built via :meth:`merge_counts`) have no
        per-injection records; use :attr:`sdc_samples` for examples there.
        """
        return [r for r in self.injections if r.outcome is FaultOutcome.SDC]

    def assert_no_sdc(self) -> None:
        """Raise when any injection escaped detection.

        Raises:
            SafetyViolation: listing up to five offending injections.
        """
        if self.sdc:
            # record-built reports mirror their SDC labels into
            # sdc_samples, so prefer the records and fall back to the
            # samples only for counts-only reports (no duplicate listing)
            labels = [r.fault_label for r in self.sdc_injections()]
            if not labels:
                labels = list(self.sdc_samples)
            sample = "; ".join(labels[:SDC_SAMPLE_LIMIT])
            raise SafetyViolation(
                f"{self.policy}: {self.sdc} silent corruption(s) "
                f"escaped the DCLS comparison, e.g. {sample}"
            )

    def _require_injections(self, what: str) -> None:
        """Guard derived statistics against an empty report.

        Raises:
            FaultInjectionError: when no injection has been recorded or
                merged — the derived quantity would silently divide by
                zero (or fabricate a 100% coverage no campaign measured).
        """
        if self.total == 0:
            raise FaultInjectionError(
                f"empty campaign report for policy {self.policy!r}: "
                f"{what} is undefined before any injection is recorded "
                "(run the campaign, or check shard aggregation)"
            )

    def hardware_metrics(self, raw_failure_rate_per_hour: float = 1e-6
                         ) -> HardwareMetrics:
        """Map campaign statistics onto ISO 26262 architectural metrics.

        Raises:
            FaultInjectionError: on an empty report (the Monte-Carlo
                coverage estimate is undefined without injections).
        """
        self._require_injections("hardware_metrics()")
        return coverage_from_campaign(
            total_injections=self.total,
            detected=self.detected,
            masked=self.masked,
            undetected=self.sdc,
            raw_failure_rate_per_hour=raw_failure_rate_per_hour,
        )

    def hardware_metrics_intervals(self, *, confidence: float = 0.95,
                                   method: str = "auto",
                                   resamples: int = 1000,
                                   seed: int = 0) -> Dict[str, RateEstimate]:
        """Error bars on the rates behind :meth:`hardware_metrics`.

        ``"residual"`` is the SDC rate (the residual-fault fraction that
        scales PMHF) and ``"coverage"`` the detection coverage (LFM), so
        the ISO 26262 architectural metrics inherit these intervals
        directly.

        Raises:
            FaultInjectionError: on an empty report.
        """
        self._require_injections("hardware_metrics_intervals()")
        intervals = {
            "residual": self.rate_interval(
                "sdc", confidence=confidence, method=method,
                resamples=resamples, seed=seed,
            )
        }
        if self.detected + self.sdc > 0:
            intervals["coverage"] = self.coverage_interval(
                confidence=confidence, method=method,
                resamples=resamples, seed=seed,
            )
        return intervals

    def summary(self) -> str:
        """One-line campaign summary, with an error bar on the SDC rate.

        Raises:
            FaultInjectionError: on an empty report.
        """
        self._require_injections("summary()")
        try:
            tail = f" sdc_rate={self.rate_interval('sdc').describe()}"
        except StatsError:
            # e.g. a partial v2 fold that has not yet sampled every
            # nominal stratum — the point counts are still reportable
            tail = ""
        return (
            f"{self.policy}: n={self.total} masked={self.masked} "
            f"detected={self.detected} SDC={self.sdc} "
            f"coverage={self.detection_coverage:.4f}"
            + tail
        )

    # ------------------------------------------------------------------
    # canonical plain-data form (bit-identity comparisons, CLI --json)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical plain-data form of the aggregate outcome.

        Two campaigns over the same fault population produce *equal*
        dictionaries regardless of shard boundaries, worker counts or
        resume history — this is the object the sharded runner's
        bit-identity guarantee is stated over (see ``docs/CAMPAIGNS.md``).
        Per-injection records are deliberately excluded.

        Versioning: reports of the legacy uniform population emit
        exactly the historical (v1) key set, so their digests are
        bit-identical to earlier releases.  Only reports carrying v2
        :attr:`sampling` metadata add the ``"sampling"`` block and the
        reweighted ``"weighted_rates"`` — floats, but pure functions of
        the integer counts, so still shard-order-independent.
        """
        data: Dict[str, object] = {
            "policy": self.policy,
            "total": self.total,
            "masked": self.masked,
            "detected": self.detected,
            "sdc": self.sdc,
            "detection_coverage": self.detection_coverage,
            "by_kind": {
                kind: {
                    outcome.name.lower(): count
                    for outcome, count in sorted(
                        outcomes.items(), key=lambda kv: kv[0].name
                    )
                }
                for kind, outcomes in sorted(self.by_kind.items())
            },
            "sdc_samples": list(self.sdc_samples),
        }
        if self.sampling is not None:
            data["sampling"] = {
                key: (dict(value) if isinstance(value, Mapping) else value)
                for key, value in sorted(self.sampling.items())
            }
            try:
                data["weighted_rates"] = {
                    metric: self.rate_estimator(metric).rate()
                    for metric in ("masked", "detected", "sdc")
                }
            except StatsError:
                # a partial fold that has not sampled every nominal
                # stratum yet — deterministic for a given count table
                data["weighted_rates"] = None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignReport":
        """Rebuild a counts-only report from its :meth:`to_dict` form.

        Accepts both generations: legacy (v1) payloads without a
        ``"sampling"`` block and v2 payloads with one.  Declared totals
        are verified against the by-kind table, so a tampered or
        truncated artifact fails loudly instead of feeding bad counts
        into a safety argument.

        Raises:
            FaultInjectionError: on malformed payloads, unknown outcome
                keys, or totals disagreeing with the by-kind table.
        """
        if not isinstance(data, Mapping):
            raise FaultInjectionError(
                f"CampaignReport expects a mapping, got {data!r}"
            )
        missing = sorted({"policy", "by_kind"} - set(data))
        if missing:
            raise FaultInjectionError(
                "not a CampaignReport payload; missing: "
                + ", ".join(missing)
            )
        outcomes_by_key = {o.name.lower(): o for o in FaultOutcome}
        by_kind: Dict[str, Dict[FaultOutcome, int]] = {}
        raw_by_kind = data["by_kind"]
        if not isinstance(raw_by_kind, Mapping):
            raise FaultInjectionError("'by_kind' must be an object")
        for kind, bucket in raw_by_kind.items():
            if not isinstance(bucket, Mapping):
                raise FaultInjectionError(
                    f"by_kind[{kind!r}] must be an object"
                )
            parsed: Dict[FaultOutcome, int] = {}
            for key, count in bucket.items():
                outcome = outcomes_by_key.get(str(key))
                if outcome is None:
                    raise FaultInjectionError(
                        f"by_kind[{kind!r}]: unknown outcome key {key!r}"
                    )
                if not isinstance(count, int) or isinstance(count, bool):
                    raise FaultInjectionError(
                        f"by_kind[{kind!r}][{key!r}] must be an integer "
                        f"count, got {count!r}"
                    )
                parsed[outcome] = count
            by_kind[str(kind)] = parsed
        sampling = data.get("sampling")
        if sampling is not None:
            if not isinstance(sampling, Mapping):
                raise FaultInjectionError("'sampling' must be an object")
            required = {"schema", "method", "nominal", "allocation"}
            missing = sorted(required - set(sampling))
            if missing:
                raise FaultInjectionError(
                    "sampling block missing: " + ", ".join(missing)
                )
            sampling = {
                key: (dict(value) if isinstance(value, Mapping) else value)
                for key, value in sampling.items()
            }
        report = cls(policy=str(data["policy"]))
        report.merge_counts(
            by_kind,
            sdc_samples=tuple(str(s) for s in data.get("sdc_samples", ())),
            sampling=sampling,
        )
        for key, declared in (("total", report.total),
                              ("masked", report.masked),
                              ("detected", report.detected),
                              ("sdc", report.sdc)):
            if key in data and data[key] != declared:
                raise FaultInjectionError(
                    f"campaign payload declares {key}={data[key]!r} but "
                    f"its by_kind table sums to {declared} — artifact "
                    "inconsistent"
                )
        return report

    def digest(self) -> str:
        """Hex digest of the canonical form (aggregate provenance key)."""
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class FaultCampaign:
    """Runs fault-injection campaigns against a redundant execution.

    Args:
        run: the clean redundant run to attack (one per policy).
    """

    def __init__(self, run: RedundantRunResult) -> None:
        if run.error_detected or run.silent_corruption:
            raise FaultInjectionError(
                "campaign baseline must be a clean (fault-free) run"
            )
        self._run = run
        self._trace = run.sim.trace
        # instance ids per logical, in copy order, for quick re-comparison
        self._groups: Dict[int, Tuple[int, ...]] = {}
        for logical in self._trace.logical_ids():
            copies = self._trace.copies_of(logical)
            self._groups[logical] = tuple(
                copies[c].instance_id for c in sorted(copies)
            )
        # sampling-domain parameters, shared by the sequential and the
        # indexed (shardable) samplers
        self._makespan = self._trace.makespan
        self._num_sms = self._trace.num_sms
        self._work_hint = max(
            (r.duration for r in self._trace.tb_records), default=1000.0
        )

    @property
    def policy(self) -> str:
        """Scheduler label of the underlying clean run."""
        return self._run.sim.scheduler_name

    # ------------------------------------------------------------------
    def classify(self, fault: FaultDescriptor) -> InjectionResult:
        """Inject one fault and classify its outcome."""
        corruption = apply_fault(fault, self._trace)
        outcome = self._classify_corruption(corruption)
        affected = tuple(
            sorted(
                {
                    self._trace.span(iid).logical_id
                    for (iid, _tb) in corruption
                }
            )
        )
        return InjectionResult(
            fault_label=fault.describe(),
            outcome=outcome,
            corrupted_blocks=len(corruption),
            affected_logicals=affected,
        )

    def _classify_corruption(self, corruption: CorruptionMap) -> FaultOutcome:
        if not corruption:
            return FaultOutcome.MASKED
        affected_logicals = {
            self._trace.span(iid).logical_id for (iid, _tb) in corruption
        }
        comparisons = []
        for logical in affected_logicals:
            signatures = [
                build_signature(self._trace, iid, corruption)
                for iid in self._groups[logical]
            ]
            comparisons.append(compare_signatures(signatures))
        return classify_outcome(corruption, comparisons)

    # ------------------------------------------------------------------
    def _build_fault(self, kind: str, rng: random.Random, fault_id: int,
                     phase_quantum: float) -> FaultDescriptor:
        """Construct one fault of ``kind`` over this campaign's domain.

        The single source of truth for fault parameterisation: every
        sampler (sequential, indexed, stream-overlay) draws through this
        builder, so the per-kind draw order — and therefore every
        population's bit-stability — can never diverge between them.
        ``kind`` is ``"ccf"``, ``"perm"`` or ``"seu"``.
        """
        if kind == "ccf":
            return TransientCCF(
                time=rng.uniform(0.0, self._makespan),
                fault_id=fault_id,
                sms=None,
                work_per_block=self._work_hint,
                phase_quantum=phase_quantum,
            )
        if kind == "perm":
            return PermanentSMFault(
                sm=rng.randrange(self._num_sms),
                fault_id=fault_id,
                since=rng.uniform(0.0, self._makespan * 0.5),
            )
        return SEUFault(
            sm=rng.randrange(self._num_sms),
            time=rng.uniform(0.0, self._makespan),
            fault_id=fault_id,
        )

    def sample_faults(self, config: CampaignConfig) -> List[FaultDescriptor]:
        """Draw the campaign's fault population (reproducibly).

        This is the classic *sequential* sampler: one PRNG stream seeded
        with ``config.seed`` drawn front to back.  It is kept bit-stable
        for the paper-figure experiments; sharded campaigns use the
        indexed sampler (:meth:`fault_at` / :meth:`sample_range`), whose
        population is a different — equally distributed — draw.
        """
        rng = random.Random(config.seed)
        faults: List[FaultDescriptor] = []
        fid = 0
        for kind, count in (("ccf", config.transient_ccf),
                            ("perm", config.permanent_sm),
                            ("seu", config.seu)):
            for _ in range(count):
                faults.append(
                    self._build_fault(kind, rng, fid, config.phase_quantum)
                )
                fid += 1
        return faults

    # ------------------------------------------------------------------
    # indexed (shardable) sampling
    # ------------------------------------------------------------------
    def fault_at(self, config: CampaignConfig, index: int, *,
                 sampling: Optional[SamplingConfig] = None
                 ) -> FaultDescriptor:
        """The ``index``-th fault of the campaign's *indexed* population.

        Fault ``index`` draws exclusively from its own PRNG substream
        (:func:`fault_substream`), so the fault returned for a given
        ``(config, index)`` never depends on which other indices have
        been (or will be) sampled — the determinism contract sharded
        campaigns are built on.  The kind layout depends on the sampling
        generation:

        * legacy (``sampling=None``, v1): the index space is segmented
          by kind — ``[0, transient_ccf)`` transient CCFs, the next
          ``permanent_sm`` permanent SM defects, the remainder SEUs.
          Bit-stable, but bounded by ``config.total_injections``.
        * v2 (:class:`SamplingConfig`): the kind of index ``i`` comes
          from the stratified block layout or the importance proposal
          draw.  Both are *prefix-stable* — valid for every ``i >= 0``
          regardless of campaign size — which is what lets the
          repeat-until-confidence runner extend a campaign in place.

        Raises:
            FaultInjectionError: when ``index`` is outside the legacy
                population, negative, or the sampling design does not
                support the plan's nominal mix.
        """
        if sampling is not None:
            if index < 0:
                raise FaultInjectionError(
                    f"fault index {index} cannot be negative"
                )
            sampling.validate_support(config)
            rng = fault_substream(config.seed, index)
            if sampling.method == "stratified":
                kind = sampling.kind_at(index)
            else:
                kind = sampling.draw_kind(rng)
            return self._build_fault(kind, rng, index, config.phase_quantum)
        total = config.total_injections
        if not 0 <= index < total:
            raise FaultInjectionError(
                f"fault index {index} outside campaign population "
                f"[0, {total})"
            )
        rng = fault_substream(config.seed, index)
        if index < config.transient_ccf:
            kind = "ccf"
        elif index < config.transient_ccf + config.permanent_sm:
            kind = "perm"
        else:
            kind = "seu"
        return self._build_fault(kind, rng, index, config.phase_quantum)

    def random_fault(self, rng: random.Random, *, transient_ccf: int = 1,
                     permanent_sm: int = 1, seu: int = 1,
                     phase_quantum: float = 1.0,
                     fault_id: int = 0) -> FaultDescriptor:
        """Draw one fault from an externally supplied PRNG.

        This is the *overlay* hook used by :mod:`repro.streams`: callers
        that manage their own substream schedule (e.g. one substream per
        frame of a stream) draw faults over this campaign's sampling
        domain — same kind weights and parameter distributions as the
        indexed sampler (:meth:`fault_at`), but with the caller's ``rng``
        and ``fault_id``.

        Args:
            rng: the PRNG to consume (the caller owns its seeding).
            transient_ccf: relative weight of transient CCFs.
            permanent_sm: relative weight of permanent SM defects.
            seu: relative weight of SEUs.
            phase_quantum: transient-CCF alignment quantum (work units).
            fault_id: identifier stamped into the fault (labels stay
                unique when the caller passes unique ids).

        Raises:
            FaultInjectionError: when no weight is positive.
        """
        if min(transient_ccf, permanent_sm, seu) < 0:
            raise FaultInjectionError("fault-kind weights cannot be negative")
        total = transient_ccf + permanent_sm + seu
        if total == 0:
            raise FaultInjectionError(
                "at least one fault-kind weight must be positive"
            )
        pick = rng.randrange(total)
        if pick < transient_ccf:
            kind = "ccf"
        elif pick < transient_ccf + permanent_sm:
            kind = "perm"
        else:
            kind = "seu"
        return self._build_fault(kind, rng, fault_id, phase_quantum)

    def sample_range(self, config: CampaignConfig, start: int, stop: int, *,
                     sampling: Optional[SamplingConfig] = None
                     ) -> List[FaultDescriptor]:
        """One contiguous shard ``[start, stop)`` of the indexed population.

        ``sample_range(c, 0, c.total_injections)`` is the whole (legacy)
        population; any partition of ``[0, total)`` into contiguous
        ranges regenerates exactly the same faults shard by shard.  With
        a v2 ``sampling`` design the population is prefix-stable and
        unbounded, so only ``0 <= start <= stop`` is required.

        Raises:
            FaultInjectionError: on an invalid or out-of-bounds range.
        """
        upper = None if sampling is not None else config.total_injections
        if start < 0 or start > stop or (upper is not None and stop > upper):
            raise FaultInjectionError(
                f"invalid fault range [{start}, {stop}) for a campaign of "
                f"{config.total_injections} injections"
            )
        return [self.fault_at(config, index, sampling=sampling)
                for index in range(start, stop)]

    def run_sampled(self, config: CampaignConfig, sampling: SamplingConfig,
                    total: int) -> CampaignReport:
        """Run ``total`` injections under a v2 sampling design, in memory.

        The counterpart of :meth:`run` for the prefix-stable samplers:
        indices ``[0, total)`` of the v2 population are injected and
        recorded, and the report carries the :func:`sampling_metadata`
        block so its rate estimates reweight to the nominal mix.  The
        sharded equivalent lives in :mod:`repro.campaigns`.

        Raises:
            FaultInjectionError: on a non-positive total or an
                unsupported sampling design.
        """
        if total < 1:
            raise FaultInjectionError(
                f"sampled campaign must inject at least one fault, "
                f"got {total}"
            )
        metadata = sampling_metadata(config, sampling)
        report = CampaignReport(policy=self._run.sim.scheduler_name,
                                sampling=metadata)
        for index in range(total):
            fault = self.fault_at(config, index, sampling=sampling)
            report.record(self.classify(fault), type(fault).__name__)
        return report

    def run(self, config: Optional[CampaignConfig] = None,
            faults: Optional[Sequence[FaultDescriptor]] = None
            ) -> CampaignReport:
        """Run the campaign.

        Args:
            config: sampling plan (ignored when ``faults`` is given).
            faults: explicit fault population (overrides sampling).

        Returns:
            The aggregated :class:`CampaignReport`.
        """
        if faults is None:
            faults = self.sample_faults(config or CampaignConfig())
        report = CampaignReport(policy=self._run.sim.scheduler_name)
        for fault in faults:
            report.record(self.classify(fault), type(fault).__name__)
        return report
