"""Fault-injection campaigns over redundant executions.

A campaign takes one *clean* redundant run (trace + comparisons are
deterministic), samples a population of hardware faults, applies each to
the trace, re-derives the affected output comparisons and classifies the
outcome.  Because faults do not perturb timing in this coarse model, a
single simulation per scheduling policy supports the whole campaign —
thousands of injections cost milliseconds.

This is experiment E5 (DESIGN.md): the paper *claims* SRRS and HALF
achieve diverse redundancy by construction; the campaign measures the
silent-corruption rate of each policy under transient CCFs (voltage
droops), permanent SM defects and local SEUs.  Expected result: the
default scheduler exhibits SDC (redundant copies corrupted identically),
SRRS and HALF do not.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError, SafetyViolation
from repro.faults.injector import CorruptionMap, apply_fault
from repro.faults.outcomes import FaultOutcome, InjectionResult, classify_outcome
from repro.faults.types import (
    FaultDescriptor,
    PermanentSMFault,
    SEUFault,
    TransientCCF,
)
from repro.iso26262.metrics import HardwareMetrics, coverage_from_campaign
from repro.redundancy.comparison import build_signature, compare_signatures
from repro.redundancy.manager import RedundantRunResult

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "FaultCampaign",
    "SDC_SAMPLE_LIMIT",
    "fault_substream",
]

#: How many SDC fault labels a report retains as diagnostic examples when
#: it aggregates counts instead of full records (see
#: :meth:`CampaignReport.merge_counts`).
SDC_SAMPLE_LIMIT = 5


def fault_substream(seed: int, index: int) -> random.Random:
    """PRNG substream of fault ``index`` within a campaign's seed schedule.

    The campaign's randomness is an *indexed* stream: fault ``index`` draws
    from a PRNG seeded with ``SHA-256(seed, index)``, so any contiguous
    shard of the index space can regenerate exactly its own faults without
    consuming (or even knowing about) the draws of other shards.  This is
    what makes the sharded campaign population independent of the shard
    count — see ``docs/CAMPAIGNS.md``.
    """
    digest = hashlib.sha256(f"{seed}:{index}".encode("ascii")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class CampaignConfig:
    """Sampling plan of a fault-injection campaign.

    Attributes:
        transient_ccf: number of chip-wide transient CCFs (voltage droops)
            with uniformly random fault instants.
        permanent_sm: number of permanent SM defects, uniform over SMs
            with uniformly random onset times.
        seu: number of local single-event upsets, uniform over (SM, time).
        seed: PRNG seed (campaigns are reproducible).
        phase_quantum: transient-CCF alignment quantum in work units.
    """

    transient_ccf: int = 200
    permanent_sm: int = 50
    seu: int = 100
    seed: int = 2019
    phase_quantum: float = 1.0

    def __post_init__(self) -> None:
        if min(self.transient_ccf, self.permanent_sm, self.seu) < 0:
            raise FaultInjectionError("injection counts cannot be negative")
        if self.transient_ccf + self.permanent_sm + self.seu == 0:
            raise FaultInjectionError("campaign must inject at least one fault")
        if self.phase_quantum <= 0:
            raise FaultInjectionError("phase quantum must be positive")

    @property
    def total_injections(self) -> int:
        """Campaign size: the number of faults the plan injects."""
        return self.transient_ccf + self.permanent_sm + self.seu


@dataclass
class CampaignReport:
    """Aggregated campaign outcome.

    A report accumulates through two complementary channels:

    * :meth:`record` appends full :class:`InjectionResult` records (the
      classic in-memory campaign path);
    * :meth:`merge_counts` folds in pre-aggregated outcome counts (the
      sharded campaign path — see :mod:`repro.campaigns` — which never
      materialises the per-injection records of a whole campaign).

    Attributes:
        policy: scheduler label of the underlying run.
        injections: per-injection records (empty for counts-only reports).
        by_kind: ``fault-kind -> outcome -> count`` breakdown.
        sdc_samples: up to :data:`SDC_SAMPLE_LIMIT` fault labels of silent
            corruptions, kept as diagnostic examples even when the full
            records are not.
    """

    policy: str
    injections: List[InjectionResult] = field(default_factory=list)
    by_kind: Dict[str, Dict[FaultOutcome, int]] = field(default_factory=dict)
    sdc_samples: List[str] = field(default_factory=list)
    # incremental outcome tally: ``injections`` is append-only, so counts
    # fold in lazily up to ``_counted_upto`` instead of rescanning the
    # whole campaign on every ``masked``/``detected``/``sdc`` access
    _outcome_counts: Dict[FaultOutcome, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _counted_upto: int = field(default=0, init=False, repr=False, compare=False)
    # counts folded in via merge_counts (no per-injection records behind them)
    _merged_counts: Dict[FaultOutcome, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _merged_total: int = field(default=0, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def record(self, result: InjectionResult, fault_kind: str) -> None:
        """Append one injection outcome, maintaining all tallies."""
        self.injections.append(result)
        bucket = self.by_kind.setdefault(fault_kind, {})
        bucket[result.outcome] = bucket.get(result.outcome, 0) + 1
        if (result.outcome is FaultOutcome.SDC
                and len(self.sdc_samples) < SDC_SAMPLE_LIMIT):
            self.sdc_samples.append(result.fault_label)

    def merge_counts(self, by_kind: Mapping[str, Mapping[FaultOutcome, int]],
                     *, sdc_samples: Iterable[str] = ()) -> None:
        """Fold pre-aggregated outcome counts into the report.

        This is the streaming-aggregation entry point of the sharded
        campaign runner: each completed shard contributes only its
        ``fault-kind -> outcome -> count`` table (plus a bounded sample of
        SDC labels), so aggregating a multi-million-injection campaign
        costs O(shards), not O(injections).

        Args:
            by_kind: outcome counts per fault kind (all counts >= 0).
            sdc_samples: SDC fault labels; retained up to
                :data:`SDC_SAMPLE_LIMIT` across the whole report.
        """
        # validate everything before mutating anything: a rejected merge
        # must not leave the report holding a half-applied shard
        for kind, outcomes in by_kind.items():
            for outcome, count in outcomes.items():
                if count < 0:
                    raise FaultInjectionError(
                        f"negative outcome count for {kind}/{outcome}"
                    )
        for kind, outcomes in by_kind.items():
            bucket = self.by_kind.setdefault(kind, {})
            for outcome, count in outcomes.items():
                bucket[outcome] = bucket.get(outcome, 0) + count
                self._merged_counts[outcome] = (
                    self._merged_counts.get(outcome, 0) + count
                )
                self._merged_total += count
        for label in sdc_samples:
            if len(self.sdc_samples) >= SDC_SAMPLE_LIMIT:
                break
            self.sdc_samples.append(label)

    def _counts(self) -> Dict[FaultOutcome, int]:
        """Outcome tally, folding in any records appended since last use."""
        injections = self.injections
        counts = self._outcome_counts
        while self._counted_upto < len(injections):
            outcome = injections[self._counted_upto].outcome
            counts[outcome] = counts.get(outcome, 0) + 1
            self._counted_upto += 1
        return counts

    def count(self, outcome: FaultOutcome) -> int:
        """Total injections with the given outcome (amortised O(1))."""
        return (self._counts().get(outcome, 0)
                + self._merged_counts.get(outcome, 0))

    @property
    def total(self) -> int:
        """Campaign size (records plus merged counts)."""
        return len(self.injections) + self._merged_total

    @property
    def masked(self) -> int:
        """Injections that hit no active computation."""
        return self.count(FaultOutcome.MASKED)

    @property
    def detected(self) -> int:
        """Injections caught by the DCLS comparison."""
        return self.count(FaultOutcome.DETECTED)

    @property
    def sdc(self) -> int:
        """Silent data corruptions (the ASIL-D killer)."""
        return self.count(FaultOutcome.SDC)

    @property
    def detection_coverage(self) -> float:
        """Detected / (detected + SDC); 1.0 when nothing was dangerous."""
        dangerous = self.detected + self.sdc
        return 1.0 if dangerous == 0 else self.detected / dangerous

    def sdc_injections(self) -> List[InjectionResult]:
        """The silent-corruption records (useful for debugging policies).

        Counts-only reports (built via :meth:`merge_counts`) have no
        per-injection records; use :attr:`sdc_samples` for examples there.
        """
        return [r for r in self.injections if r.outcome is FaultOutcome.SDC]

    def assert_no_sdc(self) -> None:
        """Raise when any injection escaped detection.

        Raises:
            SafetyViolation: listing up to five offending injections.
        """
        if self.sdc:
            # record-built reports mirror their SDC labels into
            # sdc_samples, so prefer the records and fall back to the
            # samples only for counts-only reports (no duplicate listing)
            labels = [r.fault_label for r in self.sdc_injections()]
            if not labels:
                labels = list(self.sdc_samples)
            sample = "; ".join(labels[:SDC_SAMPLE_LIMIT])
            raise SafetyViolation(
                f"{self.policy}: {self.sdc} silent corruption(s) "
                f"escaped the DCLS comparison, e.g. {sample}"
            )

    def _require_injections(self, what: str) -> None:
        """Guard derived statistics against an empty report.

        Raises:
            FaultInjectionError: when no injection has been recorded or
                merged — the derived quantity would silently divide by
                zero (or fabricate a 100% coverage no campaign measured).
        """
        if self.total == 0:
            raise FaultInjectionError(
                f"empty campaign report for policy {self.policy!r}: "
                f"{what} is undefined before any injection is recorded "
                "(run the campaign, or check shard aggregation)"
            )

    def hardware_metrics(self, raw_failure_rate_per_hour: float = 1e-6
                         ) -> HardwareMetrics:
        """Map campaign statistics onto ISO 26262 architectural metrics.

        Raises:
            FaultInjectionError: on an empty report (the Monte-Carlo
                coverage estimate is undefined without injections).
        """
        self._require_injections("hardware_metrics()")
        return coverage_from_campaign(
            total_injections=self.total,
            detected=self.detected,
            masked=self.masked,
            undetected=self.sdc,
            raw_failure_rate_per_hour=raw_failure_rate_per_hour,
        )

    def summary(self) -> str:
        """One-line campaign summary for reports.

        Raises:
            FaultInjectionError: on an empty report.
        """
        self._require_injections("summary()")
        return (
            f"{self.policy}: n={self.total} masked={self.masked} "
            f"detected={self.detected} SDC={self.sdc} "
            f"coverage={self.detection_coverage:.4f}"
        )

    # ------------------------------------------------------------------
    # canonical plain-data form (bit-identity comparisons, CLI --json)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical plain-data form of the aggregate outcome.

        Two campaigns over the same fault population produce *equal*
        dictionaries regardless of shard boundaries, worker counts or
        resume history — this is the object the sharded runner's
        bit-identity guarantee is stated over (see ``docs/CAMPAIGNS.md``).
        Per-injection records are deliberately excluded.
        """
        return {
            "policy": self.policy,
            "total": self.total,
            "masked": self.masked,
            "detected": self.detected,
            "sdc": self.sdc,
            "detection_coverage": self.detection_coverage,
            "by_kind": {
                kind: {
                    outcome.name.lower(): count
                    for outcome, count in sorted(
                        outcomes.items(), key=lambda kv: kv[0].name
                    )
                }
                for kind, outcomes in sorted(self.by_kind.items())
            },
            "sdc_samples": list(self.sdc_samples),
        }

    def digest(self) -> str:
        """Hex digest of the canonical form (aggregate provenance key)."""
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class FaultCampaign:
    """Runs fault-injection campaigns against a redundant execution.

    Args:
        run: the clean redundant run to attack (one per policy).
    """

    def __init__(self, run: RedundantRunResult) -> None:
        if run.error_detected or run.silent_corruption:
            raise FaultInjectionError(
                "campaign baseline must be a clean (fault-free) run"
            )
        self._run = run
        self._trace = run.sim.trace
        # instance ids per logical, in copy order, for quick re-comparison
        self._groups: Dict[int, Tuple[int, ...]] = {}
        for logical in self._trace.logical_ids():
            copies = self._trace.copies_of(logical)
            self._groups[logical] = tuple(
                copies[c].instance_id for c in sorted(copies)
            )
        # sampling-domain parameters, shared by the sequential and the
        # indexed (shardable) samplers
        self._makespan = self._trace.makespan
        self._num_sms = self._trace.num_sms
        self._work_hint = max(
            (r.duration for r in self._trace.tb_records), default=1000.0
        )

    @property
    def policy(self) -> str:
        """Scheduler label of the underlying clean run."""
        return self._run.sim.scheduler_name

    # ------------------------------------------------------------------
    def classify(self, fault: FaultDescriptor) -> InjectionResult:
        """Inject one fault and classify its outcome."""
        corruption = apply_fault(fault, self._trace)
        outcome = self._classify_corruption(corruption)
        affected = tuple(
            sorted(
                {
                    self._trace.span(iid).logical_id
                    for (iid, _tb) in corruption
                }
            )
        )
        return InjectionResult(
            fault_label=fault.describe(),
            outcome=outcome,
            corrupted_blocks=len(corruption),
            affected_logicals=affected,
        )

    def _classify_corruption(self, corruption: CorruptionMap) -> FaultOutcome:
        if not corruption:
            return FaultOutcome.MASKED
        affected_logicals = {
            self._trace.span(iid).logical_id for (iid, _tb) in corruption
        }
        comparisons = []
        for logical in affected_logicals:
            signatures = [
                build_signature(self._trace, iid, corruption)
                for iid in self._groups[logical]
            ]
            comparisons.append(compare_signatures(signatures))
        return classify_outcome(corruption, comparisons)

    # ------------------------------------------------------------------
    def _build_fault(self, kind: str, rng: random.Random, fault_id: int,
                     phase_quantum: float) -> FaultDescriptor:
        """Construct one fault of ``kind`` over this campaign's domain.

        The single source of truth for fault parameterisation: every
        sampler (sequential, indexed, stream-overlay) draws through this
        builder, so the per-kind draw order — and therefore every
        population's bit-stability — can never diverge between them.
        ``kind`` is ``"ccf"``, ``"perm"`` or ``"seu"``.
        """
        if kind == "ccf":
            return TransientCCF(
                time=rng.uniform(0.0, self._makespan),
                fault_id=fault_id,
                sms=None,
                work_per_block=self._work_hint,
                phase_quantum=phase_quantum,
            )
        if kind == "perm":
            return PermanentSMFault(
                sm=rng.randrange(self._num_sms),
                fault_id=fault_id,
                since=rng.uniform(0.0, self._makespan * 0.5),
            )
        return SEUFault(
            sm=rng.randrange(self._num_sms),
            time=rng.uniform(0.0, self._makespan),
            fault_id=fault_id,
        )

    def sample_faults(self, config: CampaignConfig) -> List[FaultDescriptor]:
        """Draw the campaign's fault population (reproducibly).

        This is the classic *sequential* sampler: one PRNG stream seeded
        with ``config.seed`` drawn front to back.  It is kept bit-stable
        for the paper-figure experiments; sharded campaigns use the
        indexed sampler (:meth:`fault_at` / :meth:`sample_range`), whose
        population is a different — equally distributed — draw.
        """
        rng = random.Random(config.seed)
        faults: List[FaultDescriptor] = []
        fid = 0
        for kind, count in (("ccf", config.transient_ccf),
                            ("perm", config.permanent_sm),
                            ("seu", config.seu)):
            for _ in range(count):
                faults.append(
                    self._build_fault(kind, rng, fid, config.phase_quantum)
                )
                fid += 1
        return faults

    # ------------------------------------------------------------------
    # indexed (shardable) sampling
    # ------------------------------------------------------------------
    def fault_at(self, config: CampaignConfig, index: int) -> FaultDescriptor:
        """The ``index``-th fault of the campaign's *indexed* population.

        The population is laid out deterministically by kind — indices
        ``[0, transient_ccf)`` are transient CCFs, the next
        ``permanent_sm`` are permanent SM defects, the remainder SEUs —
        and fault ``index`` draws exclusively from its own PRNG substream
        (:func:`fault_substream`).  The fault returned for a given
        ``(config, index)`` therefore never depends on which other indices
        have been (or will be) sampled, which is the determinism contract
        sharded campaigns are built on.

        Raises:
            FaultInjectionError: when ``index`` is outside
                ``[0, config.total_injections)``.
        """
        total = config.total_injections
        if not 0 <= index < total:
            raise FaultInjectionError(
                f"fault index {index} outside campaign population "
                f"[0, {total})"
            )
        rng = fault_substream(config.seed, index)
        if index < config.transient_ccf:
            kind = "ccf"
        elif index < config.transient_ccf + config.permanent_sm:
            kind = "perm"
        else:
            kind = "seu"
        return self._build_fault(kind, rng, index, config.phase_quantum)

    def random_fault(self, rng: random.Random, *, transient_ccf: int = 1,
                     permanent_sm: int = 1, seu: int = 1,
                     phase_quantum: float = 1.0,
                     fault_id: int = 0) -> FaultDescriptor:
        """Draw one fault from an externally supplied PRNG.

        This is the *overlay* hook used by :mod:`repro.streams`: callers
        that manage their own substream schedule (e.g. one substream per
        frame of a stream) draw faults over this campaign's sampling
        domain — same kind weights and parameter distributions as the
        indexed sampler (:meth:`fault_at`), but with the caller's ``rng``
        and ``fault_id``.

        Args:
            rng: the PRNG to consume (the caller owns its seeding).
            transient_ccf: relative weight of transient CCFs.
            permanent_sm: relative weight of permanent SM defects.
            seu: relative weight of SEUs.
            phase_quantum: transient-CCF alignment quantum (work units).
            fault_id: identifier stamped into the fault (labels stay
                unique when the caller passes unique ids).

        Raises:
            FaultInjectionError: when no weight is positive.
        """
        if min(transient_ccf, permanent_sm, seu) < 0:
            raise FaultInjectionError("fault-kind weights cannot be negative")
        total = transient_ccf + permanent_sm + seu
        if total == 0:
            raise FaultInjectionError(
                "at least one fault-kind weight must be positive"
            )
        pick = rng.randrange(total)
        if pick < transient_ccf:
            kind = "ccf"
        elif pick < transient_ccf + permanent_sm:
            kind = "perm"
        else:
            kind = "seu"
        return self._build_fault(kind, rng, fault_id, phase_quantum)

    def sample_range(self, config: CampaignConfig, start: int,
                     stop: int) -> List[FaultDescriptor]:
        """One contiguous shard ``[start, stop)`` of the indexed population.

        ``sample_range(c, 0, c.total_injections)`` is the whole population;
        any partition of ``[0, total)`` into contiguous ranges regenerates
        exactly the same faults shard by shard.

        Raises:
            FaultInjectionError: on an invalid or out-of-bounds range.
        """
        if start < 0 or stop > config.total_injections or start > stop:
            raise FaultInjectionError(
                f"invalid fault range [{start}, {stop}) for a campaign of "
                f"{config.total_injections} injections"
            )
        return [self.fault_at(config, index) for index in range(start, stop)]

    def run(self, config: Optional[CampaignConfig] = None,
            faults: Optional[Sequence[FaultDescriptor]] = None
            ) -> CampaignReport:
        """Run the campaign.

        Args:
            config: sampling plan (ignored when ``faults`` is given).
            faults: explicit fault population (overrides sampling).

        Returns:
            The aggregated :class:`CampaignReport`.
        """
        if faults is None:
            faults = self.sample_faults(config or CampaignConfig())
        report = CampaignReport(policy=self._run.sim.scheduler_name)
        for fault in faults:
            report.record(self.classify(fault), type(fault).__name__)
        return report
