"""Fault-injection framework (experiments E5 and E8).

Hardware faults (:mod:`~repro.faults.types`) are applied to execution
traces (:mod:`~repro.faults.injector`), classified
(:mod:`~repro.faults.outcomes`) and aggregated into campaigns
(:mod:`~repro.faults.campaign`); kernel-scheduler misbehaviour is injected
and audited separately (:mod:`~repro.faults.scheduler_faults`).
"""

from repro.faults.campaign import CampaignConfig, CampaignReport, FaultCampaign
from repro.faults.injector import CorruptionMap, apply_fault
from repro.faults.outcomes import FaultOutcome, InjectionResult, classify_outcome
from repro.faults.scheduler_faults import (
    FaultySchedulerWrapper,
    PlacementDeviation,
    SchedulerFault,
    SchedulerFaultKind,
    SchedulerFaultOutcome,
    audit_placement,
    classify_scheduler_fault,
)
from repro.faults.types import (
    FaultDescriptor,
    PermanentSMFault,
    SEUFault,
    TransientCCF,
)

__all__ = [
    "FaultDescriptor",
    "TransientCCF",
    "PermanentSMFault",
    "SEUFault",
    "apply_fault",
    "CorruptionMap",
    "FaultOutcome",
    "InjectionResult",
    "classify_outcome",
    "CampaignConfig",
    "CampaignReport",
    "FaultCampaign",
    "SchedulerFault",
    "SchedulerFaultKind",
    "FaultySchedulerWrapper",
    "SchedulerFaultOutcome",
    "classify_scheduler_fault",
    "PlacementDeviation",
    "audit_placement",
]
