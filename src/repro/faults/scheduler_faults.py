"""Kernel-scheduler fault injection (paper Section IV-C).

The global kernel scheduler has no redundancy, so the paper analyses what
happens when *it* misbehaves, enumerating three consequences:

1. execution lands on unintended SMs but remains functionally correct
   **and diverse** — no failure;
2. execution is functionally correct but **diversity is lost** (e.g. both
   copies of a block on the same SM) — harmless for this run (single-fault
   hypothesis: the remaining hardware is fault-free), but the scheduler
   fault must not become *latent*, hence periodic scheduler tests;
3. execution does not terminate or loses work (e.g. a skipped thread
   block) — the copies behave differently, so the error is detected.

This module provides:

* :class:`FaultySchedulerWrapper` — wraps a policy and perturbs its SM
  selections (mis-placement faults);
* :func:`classify_scheduler_fault` — maps a perturbed run onto the paper's
  outcome classes 1/2/3;
* :func:`audit_placement` — the *periodic scheduler test*: re-derives the
  expected placement with a healthy policy instance and reports
  deviations, which is what keeps class-2 faults from becoming latent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import KernelLaunch
from repro.gpu.scheduler.base import KernelScheduler, SchedulerView
from repro.gpu.simulator import GPUSimulator
from repro.gpu.trace import ExecutionTrace
from repro.redundancy.diversity import analyze_diversity
from repro.redundancy.manager import RedundantRunResult

__all__ = [
    "SchedulerFaultKind",
    "SchedulerFault",
    "FaultySchedulerWrapper",
    "SchedulerFaultOutcome",
    "classify_scheduler_fault",
    "audit_placement",
]


class SchedulerFaultKind(enum.Enum):
    """Modelled scheduler misbehaviours."""

    #: pick a different candidate SM than the policy intended.
    MISPLACE = "misplace"
    #: stick every selection of the target launch to one SM.
    PIN_TO_SM = "pin-to-sm"


@dataclass(frozen=True)
class SchedulerFault:
    """One scheduler fault to inject.

    Attributes:
        kind: misbehaviour type.
        target_instance: launch whose placement decisions are perturbed
            (``None`` = every launch).
        from_decision: first decision index (per launch) to perturb.
        pin_sm: for PIN_TO_SM, the SM every decision is steered to (when
            it has capacity; otherwise the policy's choice stands).
    """

    kind: SchedulerFaultKind
    target_instance: Optional[int] = None
    from_decision: int = 0
    pin_sm: int = 0

    def __post_init__(self) -> None:
        if self.from_decision < 0:
            raise FaultInjectionError("decision index cannot be negative")
        if self.pin_sm < 0:
            raise FaultInjectionError("pin SM cannot be negative")


class FaultySchedulerWrapper(KernelScheduler):
    """Wraps a policy, perturbing its ``select_sm`` answers.

    The wrapper only ever returns *candidate* SMs, so the simulator's
    resource invariants hold; what breaks is the *policy intent*
    (diversity), exactly like a real placement-logic fault.
    """

    def __init__(self, inner: KernelScheduler, fault: SchedulerFault) -> None:
        super().__init__()
        self._inner = inner
        self._fault = fault
        self._decisions: Dict[int, int] = {}
        self.name = f"faulty({inner.name})"
        self.strict_fifo = inner.strict_fifo

    # -- delegate lifecycle -------------------------------------------
    def reset(self, gpu: GPUConfig) -> None:
        """Reset both wrapper bookkeeping and the wrapped policy."""
        super().reset(gpu)
        self._inner.reset(gpu)
        self._decisions = {}

    def may_start(self, launch: KernelLaunch, view: SchedulerView) -> bool:
        """Delegate admission to the wrapped policy."""
        return self._inner.may_start(launch, view)

    def allowed_sms(self, launch: KernelLaunch) -> Tuple[int, ...]:
        """A faulty scheduler is not bound by the policy's mask.

        Placement faults can escape the intended partition (that is the
        point), so the wrapper widens the mask to the whole GPU while the
        *selection* still starts from the healthy policy's answer.
        """
        return tuple(self.gpu.sm_ids)

    def on_kernel_start(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Delegate to the wrapped policy."""
        self._inner.on_kernel_start(launch, view)

    def on_kernel_complete(self, launch: KernelLaunch, view: SchedulerView) -> None:
        """Delegate to the wrapped policy."""
        self._inner.on_kernel_complete(launch, view)

    # -- the fault ------------------------------------------------------
    def _targets(self, launch: KernelLaunch) -> bool:
        fault = self._fault
        if fault.target_instance is not None and launch.instance_id != fault.target_instance:
            return False
        count = self._decisions.get(launch.instance_id, 0)
        return count >= fault.from_decision

    def select_sm(self, launch: KernelLaunch, candidates: Sequence[int],
                  view: SchedulerView) -> Optional[int]:
        """Perturb the healthy policy's selection per the fault model."""
        self._decisions[launch.instance_id] = (
            self._decisions.get(launch.instance_id, 0) + 1
        )
        healthy_candidates = [
            sm for sm in candidates if sm in set(self._inner.allowed_sms(launch))
        ]
        healthy = (
            self._inner.select_sm(launch, healthy_candidates, view)
            if healthy_candidates
            else None
        )
        if not self._targets(launch):
            return healthy if healthy is not None else candidates[0]

        if self._fault.kind is SchedulerFaultKind.PIN_TO_SM:
            if self._fault.pin_sm in candidates:
                return self._fault.pin_sm
            return healthy if healthy is not None else candidates[0]

        # MISPLACE: rotate away from the healthy answer
        if healthy is None:
            return candidates[0]
        others = [sm for sm in candidates if sm != healthy]
        return others[0] if others else healthy

    def describe(self) -> str:
        """Label including the injected fault."""
        return f"{self._inner.describe()}+{self._fault.kind.value}"


class SchedulerFaultOutcome(enum.Enum):
    """The paper's three consequences of a kernel-scheduler fault."""

    #: (1) functionally correct, diversity preserved — no failure.
    CORRECT_DIVERSE = "correct-and-diverse"
    #: (2) functionally correct, diversity lost — needs the periodic test.
    CORRECT_NOT_DIVERSE = "correct-but-not-diverse"
    #: (3) functional misbehaviour — detected via differing outputs.
    FUNCTIONAL_ERROR = "functional-error-detected"


def classify_scheduler_fault(run: RedundantRunResult) -> SchedulerFaultOutcome:
    """Map a perturbed redundant run onto the paper's outcome classes.

    Functional misbehaviour (class 3) shows as a comparison mismatch or
    missing results; otherwise the diversity report distinguishes classes
    1 and 2.
    """
    if run.error_detected or run.silent_corruption:
        return SchedulerFaultOutcome.FUNCTIONAL_ERROR
    if run.diversity.fully_diverse:
        return SchedulerFaultOutcome.CORRECT_DIVERSE
    return SchedulerFaultOutcome.CORRECT_NOT_DIVERSE


@dataclass(frozen=True)
class PlacementDeviation:
    """One divergence between observed and expected placement."""

    instance_id: int
    tb_index: int
    expected_sm: int
    observed_sm: int


def audit_placement(observed: ExecutionTrace, gpu: GPUConfig,
                    healthy_policy: KernelScheduler,
                    launches: Sequence[KernelLaunch]
                    ) -> List[PlacementDeviation]:
    """The periodic scheduler self-test (Section IV-C).

    Re-executes the workload with a healthy policy instance and compares
    block-to-SM assignments.  Any deviation reveals a (possibly latent)
    scheduler fault; ISO 26262 requires this check to run periodically so
    that a class-2 fault (diversity silently lost) is repaired before a
    second, independent fault can exploit it.

    Returns:
        All placement deviations (empty = scheduler healthy).
    """
    expected = GPUSimulator(gpu, healthy_policy).run(launches).trace
    deviations: List[PlacementDeviation] = []
    for iid in expected.instance_ids:
        expected_blocks = expected.blocks_of(iid)
        observed_blocks = observed.blocks_of(iid)
        for eb, ob in zip(expected_blocks, observed_blocks):
            if eb.sm != ob.sm:
                deviations.append(
                    PlacementDeviation(
                        instance_id=iid,
                        tb_index=eb.tb_index,
                        expected_sm=eb.sm,
                        observed_sm=ob.sm,
                    )
                )
    return deviations
