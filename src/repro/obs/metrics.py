"""The metrics registry: O(1) counters, gauges and histograms.

Counters accumulate monotonically (injections, frames, shards), gauges
hold the latest value (queue depth, pending shards, resume hit-rate),
histograms bucket observations against fixed bounds (per-shard
injection counts, per-window completions).  Every operation is O(1) —
a dict probe plus an add — so instrumented runners can update metrics
once per window/shard without touching their perf budget.

The registry never reads a clock; rates (injections/s, frames/s) are
derived by the owning :class:`~repro.obs.session.Telemetry` from
counter deltas between heartbeats, keeping every clock read inside the
session.  :meth:`MetricsRegistry.snapshot` returns a plain sorted-key
dict that embeds directly in ``heartbeat`` event payloads.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple, Union

__all__ = ["DEFAULT_BOUNDS", "MetricsRegistry"]

Number = Union[int, float]

#: Default histogram bucket upper bounds (the last bucket is open).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)


class MetricsRegistry:
    """Named counters, gauges and histograms for one telemetry session."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Tuple[Tuple[float, ...], List[int],
                                          List[float]]] = {}

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: Number, *,
                bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        """Record ``value`` into histogram ``name``.

        Args:
            name: histogram name.
            value: the observation.
            bounds: bucket upper bounds, ascending; fixed at the
                histogram's first observation (later calls ignore it).
        """
        entry = self._histograms.get(name)
        if entry is None:
            bound_tuple = tuple(float(b) for b in bounds)
            # counts has one extra slot for the open top bucket;
            # the trailing list is [count, sum] running moments
            entry = (bound_tuple, [0] * (len(bound_tuple) + 1), [0.0, 0.0])
            self._histograms[name] = entry
        bound_tuple, counts, moments = entry
        counts[bisect_right(bound_tuple, float(value))] += 1
        moments[0] += 1
        moments[1] += float(value)

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every metric, with sorted names.

        The shape embeds directly in ``heartbeat`` payloads::

            {"counters": {...}, "gauges": {...},
             "histograms": {name: {"bounds": [...], "counts": [...],
                                   "count": n, "sum": s}}}
        """
        histograms = {}
        for name in sorted(self._histograms):
            bound_tuple, counts, moments = self._histograms[name]
            histograms[name] = {
                "bounds": list(bound_tuple),
                "counts": list(counts),
                "count": int(moments[0]),
                "sum": moments[1],
            }
        return {
            "counters": {k: self._counters[k]
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": histograms,
        }
