"""Read-side telemetry analysis: span trees, hotspots, run summaries.

``repro obs report`` renders a telemetry file through two stages:

* :func:`summarize` folds parsed events (any number of appended
  sessions) into one plain-data summary with a stable
  ``repro-obs-report/v1`` shape — event counts, paired run durations,
  the span tree aggregated by path, self-time hotspots, worker errors
  and the last heartbeat snapshot;
* :func:`render_report` turns that summary into the human-readable
  text the CLI prints (the span tree indented by nesting, hotspots
  ranked by self time).

Everything here is a pure function of the event list — no clock, no
filesystem — so the module stays inside the determinism contract even
though it lives off the runners' execution path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["OBS_REPORT_SCHEMA", "build_spans", "render_report", "summarize"]

#: Schema tag of the ``repro obs report --json`` payload.
OBS_REPORT_SCHEMA = "repro-obs-report/v1"


class SpanNode:
    """One reconstructed span: name, duration, children.

    Attributes:
        name: the span's phase label.
        dur_ms: measured duration; ``None`` when the span never closed
            (the writer was killed inside it).
        children: nested spans in open order.
        error: the ``span_end`` error payload, if the span failed.
    """

    __slots__ = ("name", "dur_ms", "children", "error")

    def __init__(self, name: str) -> None:
        self.name = name
        self.dur_ms: Optional[float] = None
        self.children: List["SpanNode"] = []
        self.error: Optional[str] = None


def build_spans(events: List[Dict[str, Any]]) -> List[SpanNode]:
    """Rebuild the span forest from ``span_start``/``span_end`` events.

    Span ids restart at every session header, so the forest is built
    per session and concatenated in file order.  Ids are integers for
    orchestrator spans and ``"<worker>:<id>"`` strings for merged
    worker-sidecar spans (:mod:`repro.obs.worker`) — any int or str id
    nests.  Unmatched starts stay in the tree with ``dur_ms=None``;
    unmatched ends are dropped.
    """
    forest: List[SpanNode] = []
    open_nodes: Dict[Any, SpanNode] = {}
    for event in events:
        etype = event.get("type")
        data = event.get("data", {})
        if etype == "telemetry_start":
            open_nodes = {}
            continue
        if etype == "span_start":
            node = SpanNode(str(data.get("name", "?")))
            parent = data.get("parent")
            if isinstance(parent, (int, str)) and parent in open_nodes:
                open_nodes[parent].children.append(node)
            else:
                forest.append(node)
            if isinstance(data.get("span"), (int, str)):
                open_nodes[data["span"]] = node
        elif etype == "span_end":
            span_id = data.get("span")
            node = (open_nodes.pop(span_id, None)
                    if isinstance(span_id, (int, str)) else None)
            if node is not None:
                dur = data.get("dur_ms")
                node.dur_ms = float(dur) if isinstance(
                    dur, (int, float)) else None
                if "error" in data:
                    node.error = str(data["error"])
    return forest


def _fold_tree(forest: List[SpanNode]
               ) -> List[Tuple[Tuple[str, ...], int, float, float, int]]:
    """Aggregate the forest by path: (path, count, total, max, open)."""
    table: Dict[Tuple[str, ...], List[float]] = {}
    order: List[Tuple[str, ...]] = []

    def visit(node: SpanNode, prefix: Tuple[str, ...]) -> None:
        path = prefix + (node.name,)
        row = table.get(path)
        if row is None:
            row = [0, 0.0, 0.0, 0]  # count, total, max, still-open
            table[path] = row
            order.append(path)
        if node.dur_ms is None:
            row[3] += 1
        else:
            row[0] += 1
            row[1] += node.dur_ms
            row[2] = max(row[2], node.dur_ms)
        for child in node.children:
            visit(child, path)

    for node in forest:
        visit(node, ())
    return [(path, int(table[path][0]), table[path][1], table[path][2],
             int(table[path][3])) for path in order]


def _hotspots(forest: List[SpanNode]) -> List[Dict[str, Any]]:
    """Per-name self time (total minus closed children), sorted desc."""
    self_ms: Dict[str, float] = {}
    total_ms: Dict[str, float] = {}
    counts: Dict[str, int] = {}

    def visit(node: SpanNode) -> None:
        if node.dur_ms is not None:
            child_ms = sum(c.dur_ms for c in node.children
                           if c.dur_ms is not None)
            self_ms[node.name] = self_ms.get(node.name, 0.0) + max(
                0.0, node.dur_ms - child_ms)
            total_ms[node.name] = total_ms.get(node.name, 0.0) + node.dur_ms
            counts[node.name] = counts.get(node.name, 0) + 1
        for child in node.children:
            visit(child)

    for node in forest:
        visit(node)
    names = sorted(self_ms, key=lambda n: (-self_ms[n], n))
    return [
        {"name": name, "self_ms": round(self_ms[name], 3),
         "total_ms": round(total_ms[name], 3), "count": counts[name]}
        for name in names
    ]


def _paired_runs(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Pair ``run_start``/``run_end`` events into run summary rows."""
    open_runs: List[Dict[str, Any]] = []
    runs: List[Dict[str, Any]] = []

    def close_open() -> None:
        # runs still open when their session ends were killed mid-run
        for row in open_runs:
            row.pop("t_ms", None)
            row["dur_ms"] = None
        del open_runs[:]

    for event in events:
        etype = event.get("type")
        data = event.get("data", {})
        if etype == "telemetry_start":
            close_open()
        elif etype == "run_start":
            open_runs.append({
                "kind": data.get("kind"),
                "label": data.get("label"),
                "t_ms": event.get("t_ms", 0.0),
            })
            runs.append(open_runs[-1])
        elif etype == "run_end" and open_runs:
            # match the innermost open run of the same kind (runs nest:
            # platform wraps its devices' streams)
            index = len(open_runs) - 1
            while index > 0 and open_runs[index]["kind"] != data.get("kind"):
                index -= 1
            row = open_runs.pop(index)
            row["dur_ms"] = round(
                float(event.get("t_ms", 0.0)) - float(row.pop("t_ms")), 3
            )
            if "digest" in data:
                row["digest"] = data["digest"]
    close_open()
    return runs


def summarize(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold parsed telemetry events into the ``repro-obs-report/v1`` dict.

    Args:
        events: parsed events in file order
            (:func:`repro.obs.sink.read_telemetry`).
    """
    counts: Dict[str, int] = {}
    errors: List[Dict[str, Any]] = []
    last_heartbeat: Optional[Dict[str, Any]] = None
    sessions = 0
    for event in events:
        etype = str(event.get("type"))
        counts[etype] = counts.get(etype, 0) + 1
        if etype == "telemetry_start":
            sessions += 1
        elif etype == "worker_error":
            errors.append(event.get("data", {}))
        elif etype == "heartbeat":
            last_heartbeat = event.get("data", {})
    forest = build_spans(events)
    spans = [
        {"path": "/".join(path), "depth": len(path) - 1, "count": count,
         "total_ms": round(total, 3), "max_ms": round(peak, 3),
         "open": open_count}
        for path, count, total, peak, open_count in _fold_tree(forest)
    ]
    return {
        "schema": OBS_REPORT_SCHEMA,
        "sessions": sessions,
        "events": {name: counts[name] for name in sorted(counts)},
        "runs": _paired_runs(events),
        "spans": spans,
        "hotspots": _hotspots(forest),
        "errors": errors,
        "last_heartbeat": last_heartbeat,
    }


def render_report(summary: Dict[str, Any], *, top: int = 10) -> str:
    """Human-readable rendering of a :func:`summarize` payload.

    Args:
        summary: the ``repro-obs-report/v1`` dict.
        top: hotspot rows to print.
    """
    lines: List[str] = []
    total_events = sum(summary["events"].values())
    lines.append(
        f"Telemetry report — {summary['sessions']} session(s), "
        f"{total_events} event(s)"
    )
    lines.append("events: " + " ".join(
        f"{name}={count}" for name, count in summary["events"].items()
    ))
    if summary["runs"]:
        lines.append("runs:")
        for run in summary["runs"]:
            dur = (f"{run['dur_ms']:.1f} ms" if run.get("dur_ms") is not None
                   else "(unfinished)")
            digest = run.get("digest")
            suffix = f"  digest={digest}" if digest else ""
            lines.append(
                f"  {run.get('kind', '?'):<10} "
                f"{str(run.get('label', '?')):<28} {dur:>12}{suffix}"
            )
    if summary["spans"]:
        lines.append("span tree (summed over sessions):")
        for row in summary["spans"]:
            name = row["path"].rsplit("/", 1)[-1]
            indent = "  " * (row["depth"] + 1)
            note = f" ({row['open']} unclosed)" if row["open"] else ""
            lines.append(
                f"{indent}{name:<24} {row['total_ms']:>12.1f} ms "
                f"x{row['count']}{note}"
            )
    hotspots = summary["hotspots"][:max(0, top)]
    if hotspots:
        lines.append(f"hotspots (self time, top {len(hotspots)}):")
        for row in hotspots:
            lines.append(
                f"  {row['name']:<24} {row['self_ms']:>12.1f} ms "
                f"(total {row['total_ms']:.1f} ms, x{row['count']})"
            )
    if summary["errors"]:
        lines.append(f"worker errors ({len(summary['errors'])}):")
        for data in summary["errors"]:
            lines.append(f"  {data}")
    beat = summary.get("last_heartbeat")
    if beat:
        counters = beat.get("metrics", {}).get("counters", {})
        gauges = beat.get("metrics", {}).get("gauges", {})
        parts = [f"{name}={counters[name]:g}" for name in counters]
        parts.extend(f"{name}={gauges[name]:g}" for name in gauges)
        rendered = " ".join(parts)
        lines.append(
            f"last heartbeat: {beat.get('done')}/{beat.get('total')}"
            + (f" — {rendered}" if rendered else "")
        )
    return "\n".join(lines)
