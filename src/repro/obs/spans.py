"""Tracing spans: nested wall-clock phase timers as telemetry events.

A span brackets one phase of a run (``plan``, ``execute``, ``fold``,
…) with a ``span_start``/``span_end`` event pair.  Spans nest: the
tracer keeps an open-span stack, so each ``span_start`` carries its
parent's span id and the reader can rebuild the trace tree
(:func:`repro.obs.report.build_spans`).  Durations are monotonic-clock
milliseconds measured here — wall time never leaves :mod:`repro.obs`.

When the owning telemetry session is disabled, :meth:`Tracer.span`
returns a shared no-op context manager: no allocation, no clock read,
no event — the only cost on the disabled path is one ``enabled`` check.
"""

from __future__ import annotations

from typing import Callable, List, Optional

__all__ = ["Span", "Tracer"]


class _NullSpan:
    """Shared no-op context manager for disabled tracers."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One open span; a context manager emitting its own end event.

    Attributes:
        name: phase label (e.g. ``"execute"``).
        span_id: session-unique integer id.
        parent: id of the enclosing span, ``None`` at the root.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent", "_start_ms")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent: Optional[int], start_ms: float) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self._start_ms = start_ms

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._end(self, error=exc)
        return False


class Tracer:
    """Allocates span ids, tracks nesting, emits the span event pair.

    The tracer is owned by one :class:`~repro.obs.session.Telemetry`;
    it is handed the session's emit callable and millisecond clock so
    spans share the session's sequence numbers and epoch.

    Args:
        emit: callable ``emit(type, **data)`` writing one event.
        now_ms: session clock, milliseconds since the session epoch.
        enabled: when ``False``, :meth:`span` is a shared no-op.
    """

    def __init__(self, emit: Callable[..., None],
                 now_ms: Callable[[], float], *,
                 enabled: bool = True) -> None:
        self._emit = emit
        self._now_ms = now_ms
        self.enabled = enabled
        self._next_id = 0
        self._stack: List[int] = []

    @property
    def current(self) -> Optional[int]:
        """Id of the innermost open span (``None`` at the root)."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **data: object):
        """Open a span named ``name``; use as a context manager.

        Extra keyword arguments land in the ``span_start`` payload
        (e.g. ``tracer.span("execute", shards=12)``).
        """
        if not self.enabled:
            return _NULL_SPAN
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        start_ms = self._now_ms()
        self._emit("span_start", span=span_id, parent=parent, name=name,
                   **data)
        self._stack.append(span_id)
        return Span(self, name, span_id, parent, start_ms)

    def _end(self, span: Span, *, error: Optional[BaseException]) -> None:
        """Close ``span``: pop the stack, emit ``span_end``."""
        # tolerate out-of-order exits (an inner span leaked open): pop
        # back to this span so nesting stays consistent for the reader
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        data = {
            "span": span.span_id,
            "name": span.name,
            "dur_ms": self._now_ms() - span._start_ms,
        }
        if error is not None:
            data["error"] = repr(error)
        self._emit("span_end", **data)
