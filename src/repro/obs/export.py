"""Telemetry exporters: Chrome traces, flamegraph stacks, metric CSV.

``repro obs export`` turns a ``repro-telemetry/v1`` stream into the
three interchange formats the wider tooling ecosystem already speaks:

* :func:`to_chrome_trace` — Trace Event JSON (``--chrome``) loadable
  by ``chrome://tracing`` and Perfetto.  Each telemetry session
  becomes one process; the orchestrator is thread 0 and every merged
  worker sidecar (:mod:`repro.obs.worker`) gets its own named thread,
  so pooled shard/device timelines render side by side;
* :func:`to_folded` — collapsed stacks (``--folded``), one
  ``path;to;span <self-µs>`` line per span path, the input format of
  ``flamegraph.pl`` and speedscope;
* :func:`heartbeat_csv` — the heartbeat metric series (``--csv``) with
  one column per counter/gauge, for spreadsheets and pandas.

All three are pure functions of the parsed event list — no clock, no
filesystem — and timestamps stay session-relative monotonic
milliseconds, so exports leak no absolute wall-clock time.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Tuple

from repro.obs.report import _fold_tree, build_spans

__all__ = [
    "heartbeat_csv",
    "render_chrome_trace",
    "to_chrome_trace",
    "to_folded",
]


def _event_ts_us(event: Dict[str, Any]) -> int:
    """Trace-event timestamp in µs (worker-local epoch when merged)."""
    data = event.get("data", {})
    t_ms = data.get("worker_t_ms")
    if not isinstance(t_ms, (int, float)) or isinstance(t_ms, bool):
        t_ms = event.get("t_ms", 0.0)
    if not isinstance(t_ms, (int, float)) or isinstance(t_ms, bool):
        t_ms = 0.0
    return int(round(float(t_ms) * 1000.0))


def to_chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert parsed telemetry into a Trace Event JSON payload.

    Spans become ``B``/``E`` duration events (a span the writer died
    inside stays an unmatched ``B``, which the viewers render as
    running to the end); heartbeat counters become ``C`` counter
    tracks.  Timestamps are microseconds since each emitter's session
    epoch — merged worker events keep their worker-local clock, so a
    worker's spans are internally consistent.

    Args:
        events: parsed events in file order
            (:func:`repro.obs.sink.read_telemetry`).

    Returns:
        The ``{"traceEvents": [...]}`` dict, ready for ``json.dump``.
    """
    trace: List[Dict[str, Any]] = []
    pid = 0
    threads: Dict[Tuple[int, str], int] = {}

    def thread_id(worker: str) -> int:
        key = (pid, worker)
        tid = threads.get(key)
        if tid is None:
            tid = len([k for k in threads if k[0] == pid])
            threads[key] = tid
            trace.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": worker or "orchestrator"},
            })
        return tid

    for event in events:
        etype = event.get("type")
        data = event.get("data", {})
        if etype == "telemetry_start":
            pid += 1
            trace.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"session {pid}"},
            })
            thread_id("")
            continue
        if pid == 0:
            pid = 1  # headerless stream fragment: synthesize a session
        worker = data.get("worker")
        tid = thread_id(worker if isinstance(worker, str) else "")
        ts = _event_ts_us(event)
        if etype == "span_start":
            args = {k: v for k, v in data.items()
                    if k not in ("span", "parent", "name")}
            trace.append({
                "ph": "B", "name": str(data.get("name", "?")),
                "pid": pid, "tid": tid, "ts": ts, "args": args,
            })
        elif etype == "span_end":
            trace.append({
                "ph": "E", "name": str(data.get("name", "?")),
                "pid": pid, "tid": tid, "ts": ts,
            })
        elif etype == "heartbeat":
            counters = data.get("metrics", {}).get("counters", {})
            if isinstance(counters, dict) and counters:
                trace.append({
                    "ph": "C", "name": "counters", "pid": pid, "tid": tid,
                    "ts": ts,
                    "args": {str(k): counters[k] for k in sorted(counters)},
                })
    return {"traceEvents": trace}


def render_chrome_trace(events: List[Dict[str, Any]]) -> str:
    """The :func:`to_chrome_trace` payload as a JSON string."""
    return json.dumps(to_chrome_trace(events), sort_keys=True)


def to_folded(events: List[Dict[str, Any]]) -> str:
    """Collapsed-stack (flamegraph) rendering of the span forest.

    One line per span path in first-open order:
    ``root;child;leaf <self-time-µs>``.  Self time is a path's total
    duration minus its closed children's totals, clamped at zero, so
    the folded weights sum to the closed spans' wall time exactly as
    ``flamegraph.pl`` expects.

    Args:
        events: parsed events in file order.

    Returns:
        The folded-stack text (trailing newline included when any
        span closed; empty string otherwise).
    """
    rows = _fold_tree(build_spans(events))
    totals = {path: total for path, _, total, _, _ in rows}
    lines: List[str] = []
    for path, count, total, _, _ in rows:
        if count == 0:
            continue  # never closed: no measured time to attribute
        child_ms = sum(t for p, t in totals.items()
                       if len(p) == len(path) + 1 and p[:-1] == path)
        self_us = int(round(max(0.0, total - child_ms) * 1000.0))
        lines.append(f"{';'.join(path)} {self_us}")
    return "".join(line + "\n" for line in lines)


def heartbeat_csv(events: List[Dict[str, Any]]) -> str:
    """The heartbeat metric series as CSV text.

    Fixed columns ``session,seq,t_ms,label,done,total`` are followed by
    one ``counter.<name>`` column per counter and one ``gauge.<name>``
    per gauge (sorted union over the whole stream; beats missing a
    metric leave the cell empty).

    Args:
        events: parsed events in file order.

    Returns:
        CSV text with a header row; header-only when the stream
        carries no heartbeats.
    """
    beats: List[Tuple[int, Dict[str, Any]]] = []
    counters: List[str] = []
    gauges: List[str] = []
    session = 0
    for event in events:
        etype = event.get("type")
        if etype == "telemetry_start":
            session += 1
        elif etype == "heartbeat":
            beats.append((max(session, 1), event))
            metrics = event.get("data", {}).get("metrics", {})
            for name in metrics.get("counters", {}):
                if name not in counters:
                    counters.append(name)
            for name in metrics.get("gauges", {}):
                if name not in gauges:
                    gauges.append(name)
    counters.sort()
    gauges.sort()
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        ["session", "seq", "t_ms", "label", "done", "total"]
        + [f"counter.{name}" for name in counters]
        + [f"gauge.{name}" for name in gauges]
    )
    for session_index, event in beats:
        data = event.get("data", {})
        metrics = data.get("metrics", {})
        row: List[Any] = [
            session_index, event.get("seq"), event.get("t_ms"),
            data.get("label", ""), data.get("done", ""),
            data.get("total", ""),
        ]
        row.extend(metrics.get("counters", {}).get(name, "")
                   for name in counters)
        row.extend(metrics.get("gauges", {}).get(name, "")
                   for name in gauges)
        writer.writerow(row)
    return out.getvalue()
