"""The :class:`Telemetry` session — the one object runners are handed.

A session bundles a sink, the monotonic clock, a tracer, a metrics
registry, the heartbeat schedule and an optional progress ticker behind
one facade::

    telemetry = Telemetry.create(path="t.jsonl", progress=True)
    report = run_campaign(spec, telemetry=telemetry)
    telemetry.close()

Runners receive ``telemetry=None`` by default and substitute
:data:`NULL_TELEMETRY`, whose ``enabled`` flag is ``False``: every
emit/beat call returns immediately and :meth:`Telemetry.span` hands out
a shared no-op context manager, so the uninstrumented path costs one
boolean check per window — never per frame (the <2% overhead budget is
gated by ``tools/bench_compare.py``).

This module (with the rest of :mod:`repro.obs`) is the repository's
only wall-clock quarantine zone: ``repro-lint.toml`` scopes RL002 to
permit :func:`time.monotonic` here and nowhere else.  Clock values flow
*out* as telemetry; nothing downstream of a report digest ever reads
them back.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.errors import ObsError
from repro.obs.events import TELEMETRY_SCHEMA
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressTicker, render_progress
from repro.obs.sink import NULL_SINK, JsonlSink, TelemetrySink
from repro.obs.spans import Tracer

__all__ = ["DEFAULT_HEARTBEAT_S", "NULL_TELEMETRY", "Telemetry"]

#: Default seconds between heartbeat events (``--heartbeat`` override).
DEFAULT_HEARTBEAT_S = 1.0


class Telemetry:
    """One observability session: sink + clock + tracer + metrics.

    Args:
        sink: event destination; ``None`` means the shared
            :data:`~repro.obs.sink.NULL_SINK` (telemetry off).
        progress: optional :class:`~repro.obs.progress.ProgressTicker`
            painting a live status line on :meth:`beat`.
        heartbeat_s: minimum seconds between ``heartbeat`` events; the
            first and final beats always emit.

    Attributes:
        sink: the event sink.
        metrics: the session's :class:`~repro.obs.metrics.MetricsRegistry`.
        progress: the ticker, or ``None``.

    Raises:
        ObsError: for a non-positive ``heartbeat_s``.
    """

    def __init__(self, sink: Optional[TelemetrySink] = None, *,
                 progress: Optional[ProgressTicker] = None,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        if heartbeat_s <= 0:
            raise ObsError(
                f"heartbeat interval must be positive, got {heartbeat_s!r}"
            )
        self.sink = sink if sink is not None else NULL_SINK
        self.progress = progress
        self.metrics = MetricsRegistry()
        self._heartbeat_s = heartbeat_s
        self._seq = 0
        self._t0 = time.monotonic() if self.enabled else 0.0
        self._last_beat_ms: Optional[float] = None
        self._beat_counters: Dict[str, float] = {}
        self._closed = False
        self._tracer = Tracer(self.emit, self._now_ms,
                              enabled=self.sink.enabled)
        if self.sink.enabled:
            from repro import __version__

            self.emit("telemetry_start", schema=TELEMETRY_SCHEMA,
                      version=__version__)

    @classmethod
    def create(cls, *, path: Union[str, Path, None] = None,
               progress: bool = False,
               heartbeat_s: float = DEFAULT_HEARTBEAT_S,
               stream: Optional[TextIO] = None) -> "Telemetry":
        """Build a session from CLI-flag-shaped arguments.

        Args:
            path: ``--telemetry`` file (``None`` for no event log).
            progress: ``--progress`` (stderr ticker).
            heartbeat_s: ``--heartbeat`` interval in seconds.
            stream: ticker stream override (tests; default stderr).

        Raises:
            ObsError: for an unopenable path or bad heartbeat interval.
        """
        sink: Optional[TelemetrySink] = (
            JsonlSink(path) if path is not None else None
        )
        ticker = ProgressTicker(stream) if progress else None
        return cls(sink, progress=ticker, heartbeat_s=heartbeat_s)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when any observer (sink or ticker) is attached."""
        return self.sink.enabled or self.progress is not None

    def _now_ms(self) -> float:
        """Milliseconds since the session epoch (monotonic clock)."""
        return (time.monotonic() - self._t0) * 1000.0

    def emit(self, event_type: str, **data: Any) -> None:
        """Emit one event to the sink (no-op when the sink is off)."""
        if not self.sink.enabled or self._closed:
            return
        event = {
            "type": event_type,
            "seq": self._seq,
            "t_ms": round(self._now_ms(), 3),
            "data": data,
        }
        self._seq += 1
        self.sink.emit(event)

    def span(self, name: str, **data: Any):
        """Open a tracing span (shared no-op when the sink is off)."""
        return self._tracer.span(name, **data)

    @property
    def current_span(self) -> Optional[int]:
        """Id of the innermost open span (``None`` at the root).

        Worker-sidecar merging (:mod:`repro.obs.worker`) reparents
        merged root spans under this id so pooled shard/device spans
        nest inside the orchestrator phase that dispatched them.
        """
        return self._tracer.current

    # ------------------------------------------------------------------
    def beat(self, label: str, done: int, total: int, *,
             rate_counter: str = "", unit: str = "items/s",
             force: bool = False) -> None:
        """Progress pulse: tick the ticker, maybe emit a heartbeat.

        Cheap enough to call once per shard/window: when neither a sink
        nor a ticker is attached it returns immediately; otherwise the
        heartbeat throttle keeps event volume bounded regardless of how
        often the runner calls it (the first and ``force``-d beats
        always emit, so even sub-second runs carry one heartbeat).

        Args:
            label: short phase label for the status line.
            done: completed work units.
            total: planned work units (0 when unknown).
            rate_counter: metrics counter to derive the displayed
                rate from (delta per second between beats).
            unit: unit label for that rate.
            force: bypass both throttles (used for the final beat).
        """
        if not self.enabled or self._closed:
            return
        now_ms = self._now_ms()
        rate = 0.0
        if rate_counter:
            value = self.metrics.counter(rate_counter)
            previous = self._beat_counters.get(rate_counter)
            if previous is not None and now_ms > 0:
                elapsed_ms = now_ms - (self._last_beat_ms or 0.0)
                if elapsed_ms > 0:
                    rate = (value - previous) / (elapsed_ms / 1000.0)
            elif now_ms > 0:
                rate = value / (now_ms / 1000.0)
        due = (force or self._last_beat_ms is None
               or now_ms - self._last_beat_ms >= self._heartbeat_s * 1000.0)
        if self.progress is not None:
            self.progress.update(
                render_progress(label, done, total, rate=rate, unit=unit),
                force=force,
            )
        if due and self.sink.enabled:
            data: Dict[str, Any] = {
                "label": label,
                "done": done,
                "total": total,
                "metrics": self.metrics.snapshot(),
            }
            if rate_counter:
                data["rates"] = {rate_counter: round(rate, 3)}
            self.emit("heartbeat", **data)
        if due:
            self._last_beat_ms = now_ms
            if rate_counter:
                self._beat_counters[rate_counter] = self.metrics.counter(
                    rate_counter
                )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """End the session: final header, sink flush, ticker newline."""
        if self._closed:
            return
        self.emit("telemetry_end", events=self._seq)
        self._closed = True
        self.sink.close()
        if self.progress is not None:
            self.progress.close()


#: Shared disabled session — what runners use for ``telemetry=None``.
NULL_TELEMETRY = Telemetry()
