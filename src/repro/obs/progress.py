"""The ``--progress`` stderr ticker: one self-overwriting status line.

The ticker renders at most once per ``min_interval_s`` (monotonic
clock, quarantined here with the rest of :mod:`repro.obs`), writes a
carriage-return-prefixed line padded to erase the previous one, and
finishes with a newline on :meth:`ProgressTicker.close` so the next
shell prompt starts clean.  It writes to stderr by default — stdout
stays reserved for report output, so ``--progress`` composes with
``--json > file``.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressTicker", "render_progress"]


def render_progress(label: str, done: int, total: int, *,
                    rate: float = 0.0, unit: str = "items/s") -> str:
    """Render one progress line (no carriage return, no padding).

    Args:
        label: short phase label (``"campaign"``, ``"stream"``...).
        done: completed work units.
        total: planned work units (``0`` renders without a percentage).
        rate: work units per second, shown when positive.
        unit: label for ``rate``.
    """
    if total > 0:
        percent = 100.0 * done / total
        text = f"[{label}] {done}/{total} ({percent:.1f}%)"
    else:
        text = f"[{label}] {done}"
    if rate > 0.0:
        text += f" {rate:,.0f} {unit}"
    return text


class ProgressTicker:
    """Throttled single-line progress renderer.

    Args:
        stream: output stream (default ``sys.stderr``).
        min_interval_s: minimum seconds between repaints; updates
            arriving faster are dropped (the final :meth:`update` with
            ``force=True`` always paints).
    """

    def __init__(self, stream: Optional[TextIO] = None, *,
                 min_interval_s: float = 0.2) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._last_paint: Optional[float] = None
        self._last_width = 0
        self._dirty = False

    def update(self, text: str, *, force: bool = False) -> bool:
        """Paint ``text`` if the throttle allows; True when painted."""
        now = time.monotonic()
        if (not force and self._last_paint is not None
                and now - self._last_paint < self._min_interval_s):
            return False
        self._last_paint = now
        padded = text.ljust(self._last_width)
        self._last_width = len(text)
        try:
            self._stream.write("\r" + padded)
            self._stream.flush()
        except (OSError, ValueError):
            return False  # closed/broken stream: progress is best-effort
        self._dirty = True
        return True

    def close(self) -> None:
        """Terminate the status line with a newline; idempotent."""
        if self._dirty:
            self._dirty = False
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass
