"""Shared cProfile wiring for every profiling entry point.

``repro stream run --profile`` and ``benchmarks/profile_hotspots.py``
used to each carry their own enable/disable/dump boilerplate; both now
route through :func:`profiled`, a context manager that runs its block
under :mod:`cProfile`, optionally prints the top cumulative rows and
optionally dumps a ``.pstats`` file for ``snakeviz``/:mod:`pstats`.

Profiling complements spans: spans time *phases* with near-zero
overhead and land in the telemetry stream; the profiler attributes a
phase's cost to *functions* at real (2x-ish) overhead and stays local.
Use ``repro obs report`` first, the profiler on the phase it names.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

from repro.errors import ObsError

__all__ = ["profiled"]


@contextmanager
def profiled(*, out: Union[str, Path, None] = None, top: int = 0,
             stream: Optional[TextIO] = None,
             sort: str = "cumulative") -> Iterator[cProfile.Profile]:
    """Run the enclosed block under cProfile.

    Args:
        out: dump raw stats to this ``.pstats`` path (``None`` skips).
        top: print this many top rows after the block (``0`` prints
            nothing).
        stream: destination of the printed rows (default stdout).
        sort: pstats sort key for the printed rows.

    Yields:
        The active profiler (rarely needed by callers).

    Raises:
        ObsError: when ``out`` cannot be written.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
    stats = pstats.Stats(
        profiler, stream=stream if stream is not None else sys.stdout
    )
    if top > 0:
        stats.sort_stats(sort).print_stats(top)
    if out is not None:
        try:
            stats.dump_stats(str(out))
        except OSError as exc:
            raise ObsError(
                f"cannot write profile file {str(out)!r}: {exc}"
            )
