"""Per-worker telemetry capture for process pools, merged after the run.

Telemetry sinks hold open file handles and are not picklable, so
pooled shard/job/device workers historically ran *uninstrumented* —
their spans and retries never reached the session log.  This module
closes the gap with sidecar files:

* the orchestrator derives one sidecar path per work unit next to the
  session log (``t.jsonl.workers/worker-<key>.jsonl``) and ships it
  inside the pickled task;
* each worker opens its own :class:`~repro.obs.session.Telemetry`
  session on that path (best-effort: any I/O failure silently
  disables worker capture — instrumentation must never fail a run);
* after the pool drains, :func:`merge_sidecars` folds every sidecar
  back into the orchestrator session **deterministically**: workers
  are merged in sorted-key order and each file in its own ``seq``
  order, so the merged stream is a pure function of the work, not of
  pool scheduling.

Merged events keep the four-key ``repro-telemetry/v1`` shape — the
orchestrator re-emits them with fresh ``seq``/``t_ms`` and stashes the
worker-local values as ``data.worker_seq`` / ``data.worker_t_ms``.
Span ids are rewritten to ``"<key>:<id>"`` strings (collision-free
against the orchestrator's integer ids) and worker root spans are
reparented under the orchestrator's currently open span, so a pooled
campaign renders ``execute → shard → baseline/classify`` exactly like
an in-process one.  Sidecar files are torn-line-tolerant like every
telemetry stream: a worker killed mid-write loses at most one line and
the merge keeps everything before the tear.

Digest neutrality is untouched: sidecars are written and read only on
the instrumented path, and nothing downstream of a report ever looks
at them (``tests/obs/test_digest_neutrality.py`` proves on/off/torn).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.errors import ObsError
from repro.obs.session import NULL_TELEMETRY, Telemetry
from repro.obs.sink import JsonlSink, read_telemetry

__all__ = [
    "close_worker_session",
    "merge_sidecars",
    "sidecar_dir",
    "sidecar_path",
    "worker_session",
]

_KEY_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def sidecar_dir(telemetry: Telemetry) -> Optional[Path]:
    """The worker-sidecar directory for a session, or ``None``.

    Sidecars only exist for file-backed sessions: the directory sits
    next to the event log (``<log>.workers/``) so the two travel
    together.  Returns ``None`` — disabling worker capture — for
    memory/null sinks or when the directory cannot be created.

    Args:
        telemetry: the orchestrator's session.
    """
    sink = telemetry.sink
    if not isinstance(sink, JsonlSink):
        return None
    directory = sink.path.with_name(sink.path.name + ".workers")
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return directory


def sidecar_path(directory: Union[str, Path], key: str) -> str:
    """The sidecar file for worker ``key`` (filesystem-safe name).

    Args:
        directory: the :func:`sidecar_dir` result.
        key: stable work-unit key (e.g. ``"shard-00003"``); characters
            outside ``[A-Za-z0-9._-]`` are replaced with ``_``.
    """
    safe = _KEY_UNSAFE.sub("_", str(key))
    return str(Path(directory) / f"worker-{safe}.jsonl")


def worker_session(path: Optional[str]) -> Telemetry:
    """Open the worker-side telemetry session writing to ``path``.

    Called inside the pooled worker process.  A fresh session replaces
    any previous attempt's file (a retried shard must not double-count
    its events).  Best-effort by design: for a ``None`` path or any
    I/O failure the shared :data:`~repro.obs.session.NULL_TELEMETRY`
    comes back and the worker runs uninstrumented — capture problems
    never fail the run.

    Args:
        path: the sidecar file from :func:`sidecar_path`, or ``None``.
    """
    if not path:
        return NULL_TELEMETRY
    try:
        Path(path).unlink(missing_ok=True)
        return Telemetry(JsonlSink(path))
    except (ObsError, OSError):
        return NULL_TELEMETRY


def close_worker_session(telemetry: Telemetry) -> None:
    """Close a :func:`worker_session` result (never the shared null)."""
    if telemetry is not NULL_TELEMETRY:
        telemetry.close()


def merge_sidecars(telemetry: Telemetry, directory: Union[str, Path],
                   keys: Iterable[str]) -> int:
    """Fold worker sidecar files into the orchestrator session.

    Deterministic merge order: sorted worker keys, then each file's own
    event order — i.e. ``(worker, seq)`` — independent of pool
    scheduling.  Session bookkeeping events (``telemetry_start`` /
    ``telemetry_end``) are dropped (the orchestrator session already
    has its own); everything else is re-emitted with the worker key,
    worker-local ``seq``/``t_ms``, and remapped span ids attached to
    ``data``.  Unreadable or fully torn sidecars are skipped silently —
    the orchestrator's own events still describe the run.  Merged files
    are deleted; the directory too once empty.

    Args:
        telemetry: the orchestrator's (sink-enabled) session.
        directory: the :func:`sidecar_dir` result.
        keys: the worker keys that were dispatched.

    Returns:
        The number of merged events.
    """
    if not telemetry.sink.enabled:
        return 0
    parent = telemetry.current_span
    merged = 0
    for key in sorted(str(k) for k in keys):
        path = Path(sidecar_path(directory, key))
        try:
            events = read_telemetry(path)
        except ObsError:
            continue  # absent, unreadable, or mid-file corruption
        for event in events:
            etype = event.get("type")
            if etype in ("telemetry_start", "telemetry_end"):
                continue
            if not isinstance(etype, str):
                continue
            data = dict(event.get("data", {}))
            if isinstance(data.get("span"), int):
                data["span"] = f"{key}:{data['span']}"
            if isinstance(data.get("parent"), int):
                data["parent"] = f"{key}:{data['parent']}"
            elif etype == "span_start" and data.get("parent") is None:
                data["parent"] = parent
            data["worker"] = key
            data["worker_seq"] = event.get("seq")
            data["worker_t_ms"] = event.get("t_ms")
            telemetry.emit(etype, **data)
            merged += 1
        try:
            path.unlink()
        except OSError:
            pass
    try:
        Path(directory).rmdir()
    except OSError:
        pass  # leftover sidecars (e.g. a worker that raised) stay put
    return merged
