"""Typed telemetry events and the ``repro-telemetry/v1`` line schema.

A telemetry file is append-only JSONL: one event object per line, in
emission order.  Each event carries exactly four keys::

    {"type": "shard_end", "seq": 17, "t_ms": 412.8, "data": {...}}

* ``type`` — one of :data:`EVENT_TYPES`;
* ``seq`` — session-local sequence number, strictly increasing from 0;
* ``t_ms`` — milliseconds since the session's monotonic epoch (the
  construction of its :class:`~repro.obs.session.Telemetry`), never
  wall-clock time-of-day, so a telemetry file leaks no absolute
  timestamps and diffing two files is meaningful;
* ``data`` — the event's payload object (schema per type, additive).

The first event of every *session* (one writer lifetime) is a
``telemetry_start`` header whose ``data`` carries the schema tag
:data:`TELEMETRY_SCHEMA` and the emitting package version.  A file may
hold several concatenated sessions — ``campaign run`` followed by
``campaign resume`` with the same ``--telemetry`` path appends a second
session, mirroring the append-only campaign store.  ``seq`` and ``t_ms``
restart at each session header.

Digest-neutrality contract: events describe execution, they never feed
back into it.  No report, digest or resume decision may read a
telemetry file — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ObsError

__all__ = [
    "EVENT_TYPES",
    "TELEMETRY_SCHEMA",
    "check_events",
    "classify_events",
    "validate_event",
    "validate_events",
]

#: Schema tag carried by every session header's ``data.schema``.
TELEMETRY_SCHEMA = "repro-telemetry/v1"

#: Every event type of the v1 schema.  Readers must reject unknown
#: types (additions bump the schema tag) but tolerate extra ``data``
#: keys (payloads are additive within a schema generation).
EVENT_TYPES = (
    "telemetry_start",   # session header: schema tag, package version
    "telemetry_end",     # clean session close (absent after a kill)
    "run_start",         # one campaign/stream/platform/engine run begins
    "run_end",           # ... and ends; data carries the report digest
    "shard_start",       # campaign shard dispatched (to pool or inline)
    "shard_end",         # campaign shard folded; data has outcome counts
    "frame_window",      # stream frame-loop progress window
    "device_start",      # platform device execution begins
    "device_end",        # ... and ends
    "checkpoint",        # a shard record was persisted to the store
    "worker_error",      # a worker raised; the run is about to fail
    "retry",             # a shard is re-dispatched after an interrupt
    "heartbeat",         # periodic metrics snapshot
    "span_start",        # tracing span opened
    "span_end",          # ... and closed; data carries the duration
)

_EVENT_TYPE_SET = frozenset(EVENT_TYPES)


def validate_event(payload: Any, *, lineno: int = 0) -> List[str]:
    """Validate one parsed telemetry line against the v1 event shape.

    Args:
        payload: the parsed JSON value of one line.
        lineno: 1-based line number used to anchor problem messages
            (``0`` for synthetic events with no file position).

    Returns:
        Human-readable problem strings; empty when the event is valid.
    """
    where = f"line {lineno}: " if lineno else ""
    if not isinstance(payload, dict):
        return [f"{where}event is not a JSON object"]
    problems: List[str] = []
    etype = payload.get("type")
    if not isinstance(etype, str):
        problems.append(f"{where}missing or non-string 'type'")
    elif etype not in _EVENT_TYPE_SET:
        problems.append(f"{where}unknown event type {etype!r}")
    seq = payload.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append(f"{where}'seq' must be a non-negative integer")
    t_ms = payload.get("t_ms")
    if (not isinstance(t_ms, (int, float)) or isinstance(t_ms, bool)
            or t_ms < 0):
        problems.append(f"{where}'t_ms' must be a non-negative number")
    if not isinstance(payload.get("data"), dict):
        problems.append(f"{where}'data' must be an object")
    extra = sorted(k for k in payload if k not in
                   ("type", "seq", "t_ms", "data"))
    if extra:
        problems.append(f"{where}unexpected top-level keys {extra}")
    if (etype == "telemetry_start" and isinstance(payload.get("data"), dict)
            and payload["data"].get("schema") != TELEMETRY_SCHEMA):
        problems.append(
            f"{where}session header declares schema "
            f"{payload['data'].get('schema')!r}, expected "
            f"{TELEMETRY_SCHEMA!r}"
        )
    return problems


def _classify_rows(events: List[Dict[str, Any]]
                   ) -> List[Tuple[bool, str]]:
    """Walk the stream; yield ``(tolerated, message)`` rows in order.

    ``tolerated`` marks the two problem classes a *forward-compatible*
    reader may choose to demote to warnings: unknown event types (a
    newer writer within the same schema family) and non-monotonic
    per-session ``seq`` (interleaved merges from external tooling).
    Everything else — malformed shapes, schema-tag mismatches, missing
    headers, backwards ``t_ms`` — is always a hard problem.
    """
    rows: List[Tuple[bool, str]] = []
    if not events:
        return [(False, "no events (empty or fully torn telemetry stream)")]
    last_seq = None
    last_t = 0.0
    in_session = False
    for index, event in enumerate(events):
        event_problems = validate_event(event, lineno=0)
        hard = [p for p in event_problems if "unknown event type" not in p]
        soft = [p for p in event_problems if "unknown event type" in p]
        rows.extend((True, f"event {index}: {p}") for p in soft)
        if hard:
            rows.extend((False, f"event {index}: {p}") for p in hard)
            continue
        if event["type"] == "telemetry_start":
            if event["seq"] != 0:
                rows.append((False,
                             f"event {index}: session header has seq "
                             f"{event['seq']}, expected 0"))
            last_seq = event["seq"]
            last_t = event["t_ms"]
            in_session = True
            continue
        if not in_session:
            rows.append((False,
                         f"event {index}: {event['type']!r} before any "
                         "telemetry_start header"))
            in_session = True  # report the structural problem only once
        if last_seq is not None and event["seq"] <= last_seq:
            rows.append((True,
                         f"event {index}: seq {event['seq']} does not "
                         f"increase past {last_seq}"))
        if event["t_ms"] < last_t:
            rows.append((False,
                         f"event {index}: t_ms {event['t_ms']} goes "
                         f"backwards (previous {last_t})"))
        last_seq = event["seq"]
        last_t = event["t_ms"]
    return rows


def classify_events(events: List[Dict[str, Any]]
                    ) -> Tuple[List[str], List[str]]:
    """Split stream validation results into hard problems and warnings.

    Args:
        events: parsed events in file order (e.g. from
            :func:`~repro.obs.sink.read_telemetry`).

    Returns:
        ``(problems, tolerated)`` — hard schema violations, and the
        unknown-type / non-monotonic-``seq`` findings a lenient reader
        (``repro obs validate`` without ``--strict``) reports as
        warnings only.  Both lists keep stream order.
    """
    rows = _classify_rows(events)
    return ([msg for soft, msg in rows if not soft],
            [msg for soft, msg in rows if soft])


def validate_events(events: List[Dict[str, Any]], *,
                    strict: bool = True) -> List[str]:
    """Validate a whole event stream (possibly several sessions).

    Beyond the per-event shape, checks the session structure: the stream
    must open with a ``telemetry_start`` header, and within each session
    ``seq`` must be strictly increasing from 0 and ``t_ms`` monotonic
    non-decreasing.  A new ``telemetry_start`` restarts both (an
    appended resume session).

    Args:
        events: parsed events in file order (e.g. from
            :func:`~repro.obs.sink.read_telemetry`).
        strict: when ``True`` (the default) every finding is a problem;
            when ``False`` the tolerated classes (unknown event types,
            non-monotonic per-session ``seq``) are dropped — see
            :func:`classify_events`.

    Returns:
        Human-readable problem strings; empty when the stream is valid.
    """
    rows = _classify_rows(events)
    if strict:
        return [msg for _, msg in rows]
    return [msg for soft, msg in rows if not soft]


def check_events(events: List[Dict[str, Any]]) -> None:
    """Raise :class:`~repro.errors.ObsError` when the stream is invalid.

    The exception message carries every problem
    :func:`validate_events` found, one per line.
    """
    problems = validate_events(events)
    if problems:
        raise ObsError(
            "invalid telemetry stream:\n  " + "\n  ".join(problems)
        )
