"""Cross-run telemetry diffing: span-tree deltas with significance.

``repro obs diff A B`` aligns two runs' span forests by *path* (the
``/``-joined chain of span names) and compares per-occurrence **self
times** — a span's duration minus its closed children's — so a
regression is attributed to the phase that actually slowed down, not
to every ancestor above it.  Heartbeat counters are compared as final
totals and per-second rates, making throughput drift visible next to
the span deltas.

Statistical guardrail: with at least two occurrences per side, the
delta of mean self times gets a Welch normal interval at the requested
confidence (reusing :func:`repro.stats.intervals.z_value`); a path is
*significant* only when that interval excludes zero **and** the delta
clears the absolute/relative magnitude floors, so one noisy shard
doesn't page anyone.  Single-occurrence paths fall back to the
magnitude floors alone (``method: "threshold"``).

Exit-code contract mirrors ``repro compare``: 0 — no significant
difference, 1 — at least one, 2 — misuse (unreadable input, unknown
run id).  The JSON payload is schema-tagged :data:`OBS_DIFF_SCHEMA`.
This is the span-level attribution layer behind
``tools/bench_compare.py``: when a ``BENCH_*`` gate fails, diff the
two runs' archived telemetry to see *which phase* regressed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.obs.report import SpanNode, build_spans
from repro.stats.intervals import z_value

__all__ = [
    "DEFAULT_MIN_ABS_MS",
    "DEFAULT_MIN_REL",
    "OBS_DIFF_SCHEMA",
    "diff_events",
    "render_diff",
]

#: Schema tag of the ``repro obs diff --json`` payload.
OBS_DIFF_SCHEMA = "repro-obs-diff/v1"

#: Relative self-time change below which a path is never significant.
DEFAULT_MIN_REL = 0.10

#: Absolute self-time change (ms) below which a path is never
#: significant — sub-millisecond jitter is noise on every platform.
DEFAULT_MIN_ABS_MS = 1.0


def _self_samples(events: List[Dict[str, Any]]
                  ) -> Dict[str, List[float]]:
    """Per-path lists of per-occurrence self times, first-open order."""
    samples: Dict[str, List[float]] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        if node.dur_ms is not None:
            child_ms = sum(c.dur_ms for c in node.children
                           if c.dur_ms is not None)
            samples.setdefault(path, []).append(
                max(0.0, node.dur_ms - child_ms)
            )
        for child in node.children:
            visit(child, path)

    for node in build_spans(events):
        visit(node, "")
    return samples


def _stream_stats(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Session count, event count, elapsed ms and final counters."""
    sessions = 0
    elapsed = 0.0
    session_last = 0.0
    counters: Dict[str, float] = {}
    session_counters: Dict[str, float] = {}

    def fold_session() -> None:
        nonlocal elapsed
        elapsed += session_last
        for name, value in session_counters.items():
            counters[name] = counters.get(name, 0.0) + value

    for event in events:
        etype = event.get("type")
        t_ms = event.get("t_ms")
        if isinstance(t_ms, (int, float)) and not isinstance(t_ms, bool):
            session_last = float(t_ms)
        if etype == "telemetry_start":
            if sessions:
                fold_session()
            sessions += 1
            session_last = 0.0
            session_counters = {}
        elif etype == "heartbeat":
            snapshot = event.get("data", {}).get("metrics", {})
            raw = snapshot.get("counters", {})
            if isinstance(raw, dict):
                session_counters = {
                    str(k): float(v) for k, v in raw.items()
                    if isinstance(v, (int, float))
                    and not isinstance(v, bool)
                }
    fold_session()
    return {
        "sessions": sessions,
        "events": len(events),
        "elapsed_ms": round(elapsed, 3),
        "counters": counters,
    }


def _welch_interval(a: List[float], b: List[float],
                    confidence: float) -> Optional[Dict[str, float]]:
    """Normal interval on ``mean(b) - mean(a)``; ``None`` when n < 2."""
    if len(a) < 2 or len(b) < 2:
        return None
    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    var_a = sum((x - mean_a) ** 2 for x in a) / (len(a) - 1)
    var_b = sum((x - mean_b) ** 2 for x in b) / (len(b) - 1)
    se = math.sqrt(var_a / len(a) + var_b / len(b))
    half = z_value(confidence) * se
    delta = mean_b - mean_a
    return {"low": round(delta - half, 6), "high": round(delta + half, 6)}


def _span_rows(samples_a: Dict[str, List[float]],
               samples_b: Dict[str, List[float]], *,
               confidence: float, min_rel: float,
               min_abs_ms: float) -> List[Dict[str, Any]]:
    """One aligned comparison row per span path (A order, then B-only)."""
    paths = list(samples_a)
    paths.extend(p for p in samples_b if p not in samples_a)
    rows: List[Dict[str, Any]] = []
    for path in paths:
        a = samples_a.get(path, [])
        b = samples_b.get(path, [])
        total_a = sum(a)
        total_b = sum(b)
        delta = total_b - total_a
        row: Dict[str, Any] = {
            "path": path,
            "count_a": len(a),
            "count_b": len(b),
            "self_ms_a": round(total_a, 3),
            "self_ms_b": round(total_b, 3),
            "delta_ms": round(delta, 3),
            "relative": (round(delta / total_a, 4) if total_a > 0
                         else None),
        }
        if not a or not b:
            row["method"] = "presence"
            row["verdict"] = "only_b" if not a else "only_a"
            row["significant"] = max(total_a, total_b) >= min_abs_ms
            rows.append(row)
            continue
        interval = _welch_interval(a, b, confidence)
        if interval is None:
            row["method"] = "threshold"
            stat_significant = True
        else:
            row["method"] = "welch-z"
            row["interval"] = dict(interval, confidence=confidence)
            stat_significant = interval["low"] > 0 or interval["high"] < 0
        magnitude = (abs(delta) >= min_abs_ms
                     and (total_a <= 0
                          or abs(delta) / total_a >= min_rel))
        row["significant"] = stat_significant and magnitude
        if not row["significant"]:
            row["verdict"] = "unchanged"
        else:
            row["verdict"] = "regression" if delta > 0 else "improvement"
        rows.append(row)
    return rows


def _counter_rows(stats_a: Dict[str, Any], stats_b: Dict[str, Any]
                  ) -> List[Dict[str, Any]]:
    """Final-value and rate comparison rows for heartbeat counters."""
    counters_a = stats_a["counters"]
    counters_b = stats_b["counters"]
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(counters_a) | set(counters_b)):
        a = counters_a.get(name, 0.0)
        b = counters_b.get(name, 0.0)
        rate_a = (a / (stats_a["elapsed_ms"] / 1000.0)
                  if stats_a["elapsed_ms"] > 0 else 0.0)
        rate_b = (b / (stats_b["elapsed_ms"] / 1000.0)
                  if stats_b["elapsed_ms"] > 0 else 0.0)
        rows.append({
            "name": name,
            "a": a,
            "b": b,
            "delta": b - a,
            "rate_a": round(rate_a, 3),
            "rate_b": round(rate_b, 3),
            "rate_delta": round(rate_b - rate_a, 3),
            "drift": a != b,
        })
    return rows


def diff_events(events_a: List[Dict[str, Any]],
                events_b: List[Dict[str, Any]], *,
                label_a: str = "A", label_b: str = "B",
                confidence: float = 0.95,
                min_rel: float = DEFAULT_MIN_REL,
                min_abs_ms: float = DEFAULT_MIN_ABS_MS) -> Dict[str, Any]:
    """Compare two parsed telemetry streams; return the diff payload.

    Args:
        events_a: baseline stream (e.g. from
            :meth:`repro.obs.store.ObsStore.load_events`).
        events_b: candidate stream.
        label_a: display label for the baseline.
        label_b: display label for the candidate.
        confidence: Welch-interval confidence for per-path mean self
            times (paths with >= 2 occurrences on both sides).
        min_rel: relative self-time floor below which a path is never
            significant.
        min_abs_ms: absolute floor (milliseconds), likewise.

    Returns:
        The :data:`OBS_DIFF_SCHEMA` dict: per-path span rows, counter
        rows, the significant regression paths, and the overall
        ``significant`` verdict (span regressions/improvements, missing
        paths, or deterministic-counter drift).

    Raises:
        StatsError: for a confidence outside ``(0, 1)``.
    """
    stats_a = _stream_stats(events_a)
    stats_b = _stream_stats(events_b)
    spans = _span_rows(
        _self_samples(events_a), _self_samples(events_b),
        confidence=confidence, min_rel=min_rel, min_abs_ms=min_abs_ms,
    )
    counters = _counter_rows(stats_a, stats_b)
    regressions = [row["path"] for row in spans if row["significant"]
                   and row["verdict"] in ("regression", "only_b")]
    significant = (any(row["significant"] for row in spans)
                   or any(row["drift"] for row in counters))
    side_a = {"label": label_a, "sessions": stats_a["sessions"],
              "events": stats_a["events"],
              "elapsed_ms": stats_a["elapsed_ms"]}
    side_b = {"label": label_b, "sessions": stats_b["sessions"],
              "events": stats_b["events"],
              "elapsed_ms": stats_b["elapsed_ms"]}
    return {
        "schema": OBS_DIFF_SCHEMA,
        "a": side_a,
        "b": side_b,
        "params": {"confidence": confidence, "min_rel": min_rel,
                   "min_abs_ms": min_abs_ms},
        "spans": spans,
        "counters": counters,
        "regressions": regressions,
        "significant": significant,
    }


def render_diff(payload: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`diff_events` payload."""
    lines: List[str] = []
    a = payload["a"]
    b = payload["b"]
    lines.append(
        f"Telemetry diff ({payload['schema']}) — "
        f"A: {a['label']} ({a['sessions']} session(s), "
        f"{a['events']} event(s)) vs "
        f"B: {b['label']} ({b['sessions']} session(s), "
        f"{b['events']} event(s))"
    )
    if payload["spans"]:
        lines.append("spans (self time per path):")
        for row in payload["spans"]:
            mark = "*" if row["significant"] else " "
            rel = (f" ({row['relative']:+.1%})"
                   if row.get("relative") is not None else "")
            lines.append(
                f" {mark} {row['path']:<40} "
                f"{row['self_ms_a']:>10.1f} -> {row['self_ms_b']:>10.1f} ms"
                f"  Δ{row['delta_ms']:+.1f} ms{rel}  [{row['verdict']}]"
            )
    drifting = [row for row in payload["counters"] if row["drift"]]
    if payload["counters"]:
        lines.append("heartbeat counters (final value, rate/s):")
        for row in payload["counters"]:
            mark = "*" if row["drift"] else " "
            lines.append(
                f" {mark} {row['name']:<24} "
                f"{row['a']:g} -> {row['b']:g}"
                f"  ({row['rate_a']:g}/s -> {row['rate_b']:g}/s)"
            )
    significant_spans = [r for r in payload["spans"] if r["significant"]]
    if payload["significant"]:
        lines.append(
            f"verdict: {len(significant_spans)} significant span "
            f"path(s), {len(drifting)} drifting counter(s)"
        )
    else:
        lines.append("verdict: no significant difference")
    return "\n".join(lines)
