"""Telemetry sinks: where emitted events go (or cheaply don't).

Three sinks cover every use:

* :class:`NullSink` — the default.  ``enabled`` is ``False``, so the
  instrumented runners skip event construction entirely; the disabled
  path costs one attribute read per *window* (never per frame or per
  injection), which is what keeps telemetry off the hot loops' perf
  budget (gated at <2% by ``tools/bench_compare.py``).
* :class:`MemorySink` — collects event dicts in a list; used by tests
  and by ``benchmarks/profile_hotspots.py`` to render span trees
  without touching the filesystem.
* :class:`JsonlSink` — append-only JSONL writer with line-buffered
  flushing, mirroring the campaign store's crash semantics: a killed
  writer leaves at most one torn trailing line, which
  :func:`read_telemetry` tolerates (and repairs on the next append).

The reader side lives here too: :func:`read_telemetry` parses a
telemetry file into event dicts with the same torn-line tolerance as
:meth:`repro.campaigns.store.CampaignStore.load_records`, extended to
multi-session files — an invalid line is tolerated when it is the last
line of the file *or* immediately precedes the next session's
``telemetry_start`` header (the writer died, then a resume appended a
fresh session); corruption anywhere else raises
:class:`~repro.errors.ObsError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ObsError

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NULL_SINK",
    "NullSink",
    "TelemetrySink",
    "read_telemetry",
    "scan_telemetry",
]


class TelemetrySink:
    """Interface every sink implements.

    Attributes:
        enabled: ``False`` only on :class:`NullSink`; the runners guard
            all event construction behind it.
    """

    enabled: bool = True

    def emit(self, event: Dict[str, Any]) -> None:
        """Persist one event dict (already schema-shaped)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""


class NullSink(TelemetrySink):
    """The disabled sink: drops everything, flags itself off."""

    enabled = False

    def emit(self, event: Dict[str, Any]) -> None:
        """Drop the event."""


#: Shared disabled sink — the default for uninstrumented runs.
NULL_SINK = NullSink()


class MemorySink(TelemetrySink):
    """Collects events in memory (tests, in-process span rendering).

    Attributes:
        events: every emitted event dict, in emission order.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(event)


class JsonlSink(TelemetrySink):
    """Append-only JSONL writer for ``--telemetry PATH``.

    Opens the file in append mode so a resume session lands after the
    interrupted one.  If the existing file does not end with a newline
    (a torn trailing line from a killed writer), one is written first so
    the tear stays confined to its own line — :func:`read_telemetry`
    then skips it as a session-final tear.

    Every event is written as one compact, sorted-key JSON line and
    flushed immediately, so an external tail sees events as they happen
    and a kill loses at most the line being written.

    Raises:
        ObsError: when the path cannot be opened or written.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        try:
            needs_newline = False
            if self._path.is_file() and self._path.stat().st_size > 0:
                with open(self._path, "rb") as probe:
                    probe.seek(-1, 2)
                    needs_newline = probe.read(1) != b"\n"
            self._handle = open(self._path, "a", encoding="utf-8")
            if needs_newline:
                self._handle.write("\n")
                self._handle.flush()
        except OSError as exc:
            raise ObsError(
                f"cannot open telemetry file {str(path)!r}: {exc}"
            )
        self._closed = False

    @property
    def path(self) -> Path:
        """The file this sink appends to."""
        return self._path

    def emit(self, event: Dict[str, Any]) -> None:
        """Write one event line and flush it."""
        if self._closed:
            return
        try:
            self._handle.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._handle.flush()
        except OSError as exc:
            raise ObsError(
                f"cannot write telemetry file {str(self._path)!r}: {exc}"
            )

    def close(self) -> None:
        """Flush and close the file; further emits are dropped."""
        if not self._closed:
            self._closed = True
            try:
                self._handle.close()
            except OSError:
                pass


def _is_session_header(line: str) -> bool:
    """True when ``line`` parses as a ``telemetry_start`` event."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return False
    return (isinstance(payload, dict)
            and payload.get("type") == "telemetry_start")


def scan_telemetry(path: Union[str, Path]
                   ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Read a telemetry file, reporting where torn lines were skipped.

    Torn-line tolerance mirrors the campaign store: an unparseable line
    is skipped when the writer can have died there — i.e. it is the last
    content line of the file (``tear: "file"``), or the next content
    line opens a new session (``telemetry_start``), meaning the tear
    ended one session and a resume appended the next
    (``tear: "session"``).  An unparseable line anywhere else is
    mid-session corruption and raises.

    Args:
        path: the telemetry JSONL file.

    Returns:
        ``(events, tears)`` — one event dict per surviving line, plus
        one ``{"line": lineno, "tear": "file" | "session"}`` record per
        skipped torn line.  No schema validation happens here — pass
        the events to :func:`repro.obs.events.validate_events` (or
        ``repro obs validate``).

    Raises:
        ObsError: when the file cannot be read, or a line is corrupt in
            the middle of a session.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ObsError(f"cannot read telemetry file {str(path)!r}: {exc}")
    lines = text.split("\n")
    content = [
        (lineno, line.strip())
        for lineno, line in enumerate(lines, start=1)
        if line.strip()
    ]
    events: List[Dict[str, Any]] = []
    tears: List[Dict[str, Any]] = []
    for position, (lineno, line) in enumerate(content):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            is_last = position == len(content) - 1
            next_is_header = (
                not is_last and _is_session_header(content[position + 1][1])
            )
            if is_last or next_is_header:
                # torn line where a writer died (end of file, or end of
                # the session a resume later appended after)
                tears.append({
                    "line": lineno,
                    "tear": "file" if is_last else "session",
                })
                continue
            raise ObsError(
                f"{path}:{lineno}: corrupt telemetry line (not valid "
                "JSON) in the middle of a session"
            ) from None
        if not isinstance(payload, dict):
            raise ObsError(
                f"{path}:{lineno}: telemetry line is not a JSON object"
            )
        events.append(payload)
    return events, tears


def read_telemetry(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a telemetry file into parsed event dicts, in file order.

    Thin wrapper over :func:`scan_telemetry` that drops the torn-line
    positions; see there for the tolerance rules.

    Args:
        path: the telemetry JSONL file.

    Returns:
        One dict per surviving line.

    Raises:
        ObsError: when the file cannot be read, or a line is corrupt in
            the middle of a session.
    """
    return scan_telemetry(path)[0]
