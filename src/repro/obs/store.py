"""The telemetry archive: a digest-indexed multi-run history.

One ``--telemetry`` file describes one run; comparing runs needs a
place where many runs accumulate.  :class:`ObsStore` keeps that history
in a ``.repro-obs/`` directory:

* ``manifest.jsonl`` — one append-only index line per archived run
  (schema :data:`OBS_STORE_SCHEMA`), keyed by the run's content digest
  and carrying the spec hashes, run kinds, labels, session count and
  report digests extracted from the stream, so runs are queryable
  without re-parsing every file;
* ``runs/<run_id>.jsonl`` — the archived telemetry stream, stored
  verbatim (byte-for-byte) under its content digest.

The run id *is* the sha256 digest of the file bytes (first 16 hex
chars), so archiving is idempotent — re-archiving identical telemetry
is a no-op — and :meth:`ObsStore.load_events` can verify an archived
file was never tampered with.  Nothing here reads a clock: manifest
entries carry no timestamps, and ``gc`` ages runs out by archive
*order*, keeping the archive itself inside the determinism contract.

CLI surface: ``repro obs archive|list|gc`` (and ``repro obs diff`` /
``repro obs export`` accept archived run ids wherever they accept
file paths).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ObsError
from repro.obs.events import check_events
from repro.obs.sink import read_telemetry

__all__ = ["DEFAULT_OBS_DIR", "OBS_STORE_SCHEMA", "ObsStore"]

#: Schema tag carried by every manifest entry.
OBS_STORE_SCHEMA = "repro-obs-store/v1"

#: Default archive directory (the ``--dir`` default of the obs CLI).
DEFAULT_OBS_DIR = ".repro-obs"


def _canonical(payload: Dict[str, Any]) -> str:
    """Compact sorted-key JSON, the repository's canonical line form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _index_fields(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Extract the queryable index fields from a parsed event stream."""
    kinds: List[str] = []
    spec_hashes: List[str] = []
    labels: List[str] = []
    digests: List[str] = []
    sessions = 0
    spans = 0
    for event in events:
        etype = event.get("type")
        data = event.get("data", {})
        if etype == "telemetry_start":
            sessions += 1
        elif etype == "span_start":
            spans += 1
        elif etype == "run_start":
            kind = data.get("kind")
            if isinstance(kind, str) and kind not in kinds:
                kinds.append(kind)
            spec_hash = data.get("spec_hash")
            if isinstance(spec_hash, str) and spec_hash not in spec_hashes:
                spec_hashes.append(spec_hash)
            label = data.get("label")
            if isinstance(label, str) and label not in labels:
                labels.append(label)
        elif etype == "run_end":
            digest = data.get("digest")
            if isinstance(digest, str):
                digests.append(digest)
    return {
        "sessions": sessions,
        "events": len(events),
        "spans": spans,
        "kinds": sorted(kinds),
        "spec_hashes": sorted(spec_hashes),
        "labels": sorted(labels),
        "digests": digests,
    }


class ObsStore:
    """A ``.repro-obs/`` telemetry archive (manifest + verbatim runs).

    Args:
        root: the archive directory; created lazily on first
            :meth:`archive`.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_OBS_DIR) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        """The archive directory."""
        return self._root

    @property
    def manifest_path(self) -> Path:
        """The append-only index file."""
        return self._root / "manifest.jsonl"

    @property
    def runs_dir(self) -> Path:
        """The directory holding the archived streams."""
        return self._root / "runs"

    def run_path(self, run_id: str) -> Path:
        """The archived stream file for ``run_id``."""
        return self.runs_dir / f"{run_id}.jsonl"

    # ------------------------------------------------------------------
    def archive(self, path: Union[str, Path], *,
                tag: str = "") -> Dict[str, Any]:
        """Archive one telemetry file; return its manifest entry.

        The file is parsed (torn-tolerant) and schema-checked before
        anything is written, so the archive never accumulates garbage.
        Archiving byte-identical telemetry again is a no-op returning
        the existing entry (the original ``tag`` wins).

        Args:
            path: the telemetry JSONL file to archive.
            tag: free-form label stored in the manifest entry
                (e.g. ``"ci-py3.12"``).

        Raises:
            ObsError: when the file is unreadable, schema-invalid, or
                the archive cannot be written.
        """
        source = Path(path)
        try:
            raw = source.read_bytes()
        except OSError as exc:
            raise ObsError(
                f"cannot read telemetry file {str(path)!r}: {exc}"
            )
        events = read_telemetry(source)
        check_events(events)
        run_id = hashlib.sha256(raw).hexdigest()[:16]
        existing = {entry["run_id"]: entry for entry in self.entries()}
        if run_id in existing:
            return existing[run_id]
        entry: Dict[str, Any] = {
            "schema": OBS_STORE_SCHEMA,
            "run_id": run_id,
            "tag": tag,
            "source": source.name,
            "size_bytes": len(raw),
        }
        entry.update(_index_fields(events))
        try:
            self.runs_dir.mkdir(parents=True, exist_ok=True)
            self.run_path(run_id).write_bytes(raw)
            with open(self.manifest_path, "a", encoding="utf-8") as handle:
                handle.write(_canonical(entry) + "\n")
        except OSError as exc:
            raise ObsError(
                f"cannot write telemetry archive {str(self._root)!r}: {exc}"
            )
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """Every manifest entry, in archive order (oldest first).

        A torn trailing manifest line (killed writer) is tolerated;
        corruption anywhere else raises.

        Raises:
            ObsError: for mid-manifest corruption or a schema mismatch.
        """
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise ObsError(
                f"cannot read archive manifest "
                f"{str(self.manifest_path)!r}: {exc}"
            )
        lines = [line for line in text.split("\n") if line.strip()]
        entries: List[Dict[str, Any]] = []
        seen = set()
        for position, line in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    continue  # torn trailing line from a killed archive
                raise ObsError(
                    f"{self.manifest_path}: corrupt manifest line "
                    f"{position + 1}"
                ) from None
            if (not isinstance(entry, dict)
                    or entry.get("schema") != OBS_STORE_SCHEMA
                    or not isinstance(entry.get("run_id"), str)):
                raise ObsError(
                    f"{self.manifest_path}: manifest line {position + 1} "
                    f"is not a {OBS_STORE_SCHEMA} entry"
                )
            if entry["run_id"] not in seen:
                seen.add(entry["run_id"])
                entries.append(entry)
        return entries

    def resolve(self, ref: str) -> Dict[str, Any]:
        """The manifest entry matching ``ref``.

        A non-empty ``ref`` matches by exact tag first (tags are what
        ``obs list`` shows most prominently), then by run-id prefix.

        Args:
            ref: an archived run's tag, full run id, or an unambiguous
                run-id prefix.

        Raises:
            ObsError: when no archived run matches, or several do.
        """
        entries = self.entries()
        matches = ([entry for entry in entries
                    if ref and entry.get("tag") == ref]
                   or [entry for entry in entries
                       if entry["run_id"].startswith(ref)])
        if not matches:
            raise ObsError(
                f"no archived run matches {ref!r} in {str(self._root)!r} "
                "(see 'repro obs list')"
            )
        if len(matches) > 1:
            ids = ", ".join(entry["run_id"] for entry in matches)
            raise ObsError(f"reference {ref!r} is ambiguous: {ids}")
        return matches[0]

    def load_events(self, ref: str) -> List[Dict[str, Any]]:
        """Parsed events of the archived run matching ``ref``.

        The stored bytes are re-hashed against the run id, so silent
        on-disk corruption of an archived stream is detected.

        Raises:
            ObsError: unknown/ambiguous ref, missing or tampered file.
        """
        entry = self.resolve(ref)
        path = self.run_path(entry["run_id"])
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise ObsError(
                f"archived run {entry['run_id']} has no stream file: {exc}"
            )
        if hashlib.sha256(raw).hexdigest()[:16] != entry["run_id"]:
            raise ObsError(
                f"archived run {entry['run_id']} does not match its "
                f"content digest ({str(path)!r} was modified)"
            )
        return read_telemetry(path)

    # ------------------------------------------------------------------
    def gc(self, *, keep: int) -> List[Dict[str, Any]]:
        """Age out old runs; return the removed manifest entries.

        Runs are grouped by their index key — ``(kinds, spec_hashes)``
        — and the **last** ``keep`` entries of each group (in archive
        order) survive, so the archive retains recent history per
        workload without growing unboundedly.  The manifest is
        rewritten atomically; dropped and orphaned stream files are
        deleted.

        Args:
            keep: runs to keep per ``(kinds, spec_hashes)`` group
                (must be >= 1).

        Raises:
            ObsError: for ``keep < 1`` or unwritable archive files.
        """
        if keep < 1:
            raise ObsError(f"gc keep must be >= 1, got {keep}")
        entries = self.entries()
        groups: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]],
                     List[str]] = {}
        for entry in entries:
            key = (tuple(entry.get("kinds", [])),
                   tuple(entry.get("spec_hashes", [])))
            groups.setdefault(key, []).append(entry["run_id"])
        survivors = set()
        for run_ids in groups.values():
            survivors.update(run_ids[-keep:])
        kept = [entry for entry in entries if entry["run_id"] in survivors]
        removed = [entry for entry in entries
                   if entry["run_id"] not in survivors]
        try:
            if entries:
                tmp = self.manifest_path.with_suffix(".tmp")
                tmp.write_text(
                    "".join(_canonical(entry) + "\n" for entry in kept),
                    encoding="utf-8",
                )
                os.replace(tmp, self.manifest_path)
            if self.runs_dir.is_dir():
                for path in sorted(self.runs_dir.glob("*.jsonl")):
                    if path.stem not in survivors:
                        path.unlink()
        except OSError as exc:
            raise ObsError(
                f"cannot rewrite telemetry archive "
                f"{str(self._root)!r}: {exc}"
            )
        return removed
