"""Observability for long-running workloads: events, spans, metrics.

``repro.obs`` is the telemetry plane of the repository — the one place
allowed to read a clock.  It provides:

* a **structured event log** — typed lifecycle events appended as
  ``repro-telemetry/v1`` JSONL (:mod:`repro.obs.events`,
  :mod:`repro.obs.sink`);
* **tracing spans** — nested phase timers emitted into the same stream
  and rebuilt into a trace tree by ``repro obs report``
  (:mod:`repro.obs.spans`, :mod:`repro.obs.report`);
* a **metrics registry** — O(1) counters/gauges/histograms snapshotted
  on a heartbeat (:mod:`repro.obs.metrics`);
* **live progress** — the ``--progress`` stderr ticker
  (:mod:`repro.obs.progress`);
* shared **cProfile wiring** for the profiling entry points
  (:mod:`repro.obs.profiling`);
* **per-worker capture** — pooled shard/job/device workers log to
  sidecar files merged back deterministically after the pool drains
  (:mod:`repro.obs.worker`);
* the **analysis plane** — the digest-indexed ``.repro-obs/`` archive
  (:mod:`repro.obs.store`), Chrome-trace/flamegraph/CSV export
  (:mod:`repro.obs.export`) and statistically gated cross-run span
  diffing (:mod:`repro.obs.diff`), all reading telemetry files only.

Everything hangs off one facade, :class:`~repro.obs.session.Telemetry`,
which the campaign/stream/platform runners and the engine accept as an
optional argument.  Telemetry is strictly digest-neutral: it observes
execution and never feeds back into it, so every report is bit-identical
with telemetry on, off, or interrupted (see ``docs/OBSERVABILITY.md``
for the contract and ``tests/obs/`` for the proof).
"""

from repro.obs.diff import (
    OBS_DIFF_SCHEMA,
    diff_events,
    render_diff,
)
from repro.obs.events import (
    EVENT_TYPES,
    TELEMETRY_SCHEMA,
    check_events,
    classify_events,
    validate_event,
    validate_events,
)
from repro.obs.export import (
    heartbeat_csv,
    render_chrome_trace,
    to_chrome_trace,
    to_folded,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import profiled
from repro.obs.progress import ProgressTicker, render_progress
from repro.obs.report import (
    OBS_REPORT_SCHEMA,
    build_spans,
    render_report,
    summarize,
)
from repro.obs.session import DEFAULT_HEARTBEAT_S, NULL_TELEMETRY, Telemetry
from repro.obs.sink import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    TelemetrySink,
    read_telemetry,
    scan_telemetry,
)
from repro.obs.spans import Span, Tracer
from repro.obs.store import DEFAULT_OBS_DIR, OBS_STORE_SCHEMA, ObsStore
from repro.obs.worker import (
    close_worker_session,
    merge_sidecars,
    sidecar_dir,
    sidecar_path,
    worker_session,
)

__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_OBS_DIR",
    "EVENT_TYPES",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_SINK",
    "NULL_TELEMETRY",
    "NullSink",
    "OBS_DIFF_SCHEMA",
    "OBS_REPORT_SCHEMA",
    "OBS_STORE_SCHEMA",
    "ObsStore",
    "ProgressTicker",
    "Span",
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "TelemetrySink",
    "Tracer",
    "build_spans",
    "check_events",
    "classify_events",
    "close_worker_session",
    "diff_events",
    "heartbeat_csv",
    "merge_sidecars",
    "profiled",
    "read_telemetry",
    "render_chrome_trace",
    "render_diff",
    "render_progress",
    "render_report",
    "scan_telemetry",
    "sidecar_dir",
    "sidecar_path",
    "summarize",
    "to_chrome_trace",
    "to_folded",
    "validate_event",
    "validate_events",
    "worker_session",
]
