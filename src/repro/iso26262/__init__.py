"""Executable ISO 26262 model (Section II of the paper).

Subpackages: ASIL lattice (:mod:`~repro.iso26262.asil`), decomposition
rules (:mod:`~repro.iso26262.decomposition`), fault taxonomy and FTTI
(:mod:`~repro.iso26262.fault_model`), hardware architectural metrics
(:mod:`~repro.iso26262.metrics`) and the safety-case checker
(:mod:`~repro.iso26262.safety_case`).
"""

from repro.iso26262.asil import Asil, as_asil
from repro.iso26262.decomposition import (
    FIGURE1_EXAMPLES,
    DecompositionNode,
    DecompositionRule,
    check_decomposition,
    valid_decompositions,
)
from repro.iso26262.fault_model import (
    AGING_DEFECT,
    CLOCK_GLITCH,
    SEU,
    STUCK_AT,
    VOLTAGE_DROOP,
    FaultClass,
    FaultHandlingTimeline,
    FaultPersistence,
    FaultScope,
    Ftti,
)
from repro.iso26262.metrics import (
    TARGETS,
    FailureRateBudget,
    HardwareMetrics,
    MetricTargets,
    coverage_from_campaign,
)
from repro.iso26262.safety_case import (
    SafetyGoal,
    SafetyMechanism,
    SafetyRequirement,
    SystemElement,
    check_requirement,
    check_system,
)

__all__ = [
    "Asil",
    "as_asil",
    "DecompositionRule",
    "DecompositionNode",
    "valid_decompositions",
    "check_decomposition",
    "FIGURE1_EXAMPLES",
    "FaultClass",
    "FaultPersistence",
    "FaultScope",
    "Ftti",
    "FaultHandlingTimeline",
    "SEU",
    "VOLTAGE_DROOP",
    "CLOCK_GLITCH",
    "STUCK_AT",
    "AGING_DEFECT",
    "MetricTargets",
    "TARGETS",
    "FailureRateBudget",
    "HardwareMetrics",
    "coverage_from_campaign",
    "SafetyMechanism",
    "SystemElement",
    "SafetyGoal",
    "SafetyRequirement",
    "check_requirement",
    "check_system",
]
