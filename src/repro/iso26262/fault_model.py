"""ISO 26262 fault taxonomy and timing model (FTTI).

Captures the standard's vocabulary the paper builds on:

* fault *classes* — transient vs. permanent, and whether a fault is a
  *common-cause fault* (CCF) able to affect redundant elements together;
* the *fault-tolerant time interval* (FTTI): the span from fault occurrence
  to the latest point at which the system must have reached a safe state or
  degraded-but-safe operation.  The paper's footnote 1 assumes errors are
  recovered within the FTTI by re-executing after detection;
* :class:`FaultHandlingTimeline` — bookkeeping that checks detection plus
  reaction (e.g. kernel re-execution) fits inside the FTTI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, SafetyViolation

__all__ = [
    "FaultPersistence",
    "FaultScope",
    "FaultClass",
    "Ftti",
    "FaultHandlingTimeline",
]


class FaultPersistence(enum.Enum):
    """Temporal behaviour of a hardware fault."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    INTERMITTENT = "intermittent"


class FaultScope(enum.Enum):
    """Spatial reach of a fault — the key distinction for redundancy.

    LOCAL faults affect one physical element; COMMON_CAUSE faults (voltage
    droops, clock glitches, temperature, crosstalk) can affect several
    redundant elements simultaneously and are the reason ISO 26262 demands
    *diverse* redundancy rather than plain replication.
    """

    LOCAL = "local"
    COMMON_CAUSE = "common-cause"


@dataclass(frozen=True)
class FaultClass:
    """A (persistence, scope) fault category with a descriptive name."""

    name: str
    persistence: FaultPersistence
    scope: FaultScope

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault class needs a name")

    @property
    def is_ccf(self) -> bool:
        """True for common-cause fault classes."""
        return self.scope is FaultScope.COMMON_CAUSE


#: Canonical fault classes referenced throughout the reproduction.
SEU = FaultClass("single-event upset", FaultPersistence.TRANSIENT, FaultScope.LOCAL)
VOLTAGE_DROOP = FaultClass(
    "voltage droop", FaultPersistence.TRANSIENT, FaultScope.COMMON_CAUSE
)
CLOCK_GLITCH = FaultClass(
    "clock glitch", FaultPersistence.TRANSIENT, FaultScope.COMMON_CAUSE
)
STUCK_AT = FaultClass("stuck-at defect", FaultPersistence.PERMANENT, FaultScope.LOCAL)
AGING_DEFECT = FaultClass(
    "aging/process defect", FaultPersistence.PERMANENT, FaultScope.COMMON_CAUSE
)


@dataclass(frozen=True)
class Ftti:
    """Fault-tolerant time interval of a safety goal.

    Attributes:
        milliseconds: the budget from fault occurrence to safe handling.
    """

    milliseconds: float

    def __post_init__(self) -> None:
        if self.milliseconds <= 0:
            raise ConfigurationError("FTTI must be positive")


@dataclass(frozen=True)
class FaultHandlingTimeline:
    """Timing of one fault's detection and reaction.

    All times are milliseconds relative to fault occurrence at 0.

    Attributes:
        detected_at: when the error was detected (``None`` = never — an
            undetected fault always violates the FTTI check).
        handled_at: when the reaction completed (safe state reached or
            correct result re-produced); ``None`` = not handled.
    """

    detected_at: Optional[float]
    handled_at: Optional[float]

    def __post_init__(self) -> None:
        if self.detected_at is not None and self.detected_at < 0:
            raise ConfigurationError("detection cannot precede the fault")
        if self.handled_at is not None:
            if self.detected_at is None:
                raise ConfigurationError("cannot handle an undetected fault")
            if self.handled_at < self.detected_at:
                raise ConfigurationError("handling cannot precede detection")

    @property
    def detected(self) -> bool:
        """True when the fault was detected at all."""
        return self.detected_at is not None

    def within(self, ftti: Ftti) -> bool:
        """True when detection *and* reaction completed inside the FTTI."""
        return self.handled_at is not None and self.handled_at <= ftti.milliseconds

    def check(self, ftti: Ftti, context: str = "") -> None:
        """Assert the FTTI is met.

        Raises:
            SafetyViolation: when the fault is undetected, unhandled or
                handled too late.
        """
        prefix = f"{context}: " if context else ""
        if not self.detected:
            raise SafetyViolation(prefix + "fault was never detected")
        if self.handled_at is None:
            raise SafetyViolation(prefix + "fault detected but never handled")
        if self.handled_at > ftti.milliseconds:
            raise SafetyViolation(
                prefix
                + f"fault handled at {self.handled_at:.3f} ms, after the "
                f"FTTI of {ftti.milliseconds:.3f} ms"
            )
