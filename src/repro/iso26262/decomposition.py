"""ASIL decomposition rules (ISO 26262-9, Figure 1 of the paper).

A safety requirement at a given ASIL may be decomposed onto *redundant,
sufficiently independent* elements of lower ASILs, provided the ranks add
up: ``A(rank 1) + B(rank 2)`` reaches ``C(rank 3)``, ``B + B`` reaches
``D``, and the degenerate split ``D(D) + QM(D)`` covers the paper's
monitor/actuator pattern (a QM operation channel supervised by an ASIL-D
monitor that drives the system to its safe state within the FTTI).

The paper's Figure 1 shows three examples; :data:`FIGURE1_EXAMPLES`
reproduces them and ``benchmarks/bench_fig1_asil_decomposition.py``
regenerates the figure as a table.

Key API:

* :func:`valid_decompositions` — all standard-sanctioned splits of a level;
* :func:`check_decomposition` — validate a proposed split, enforcing the
  independence precondition (no decomposition credit without independent
  redundancy — the reason GPUs need diverse redundancy at all);
* :class:`DecompositionNode` — a tree of decompositions over system
  elements, validated recursively (used by the safety-case example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import SafetyViolation
from repro.iso26262.asil import Asil

__all__ = [
    "DecompositionRule",
    "valid_decompositions",
    "check_decomposition",
    "DecompositionNode",
    "FIGURE1_EXAMPLES",
]


@dataclass(frozen=True)
class DecompositionRule:
    """One sanctioned decomposition of ``target`` into two parts.

    Attributes:
        target: ASIL of the requirement being decomposed.
        parts: the two element ASILs (order-insensitive; stored sorted
            descending).
        note: short description of the typical use of this split.
    """

    target: Asil
    parts: Tuple[Asil, Asil]
    note: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.parts, reverse=True))
        object.__setattr__(self, "parts", ordered)

    @property
    def tags(self) -> Tuple[str, str]:
        """ISO notation of both parts, e.g. ``("B(D)", "B(D)")``."""
        return (
            self.parts[0].decomposed_tag(self.target),
            self.parts[1].decomposed_tag(self.target),
        )

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``D = B(D) + B(D)``."""
        a, b = self.tags
        return f"{self.target} = {a} + {b}"


def valid_decompositions(target: Asil) -> Tuple[DecompositionRule, ...]:
    """All ISO 26262-9 sanctioned two-way splits of ``target``.

    Follows the standard's scheme: every split ``(x, y)`` of safety-related
    ``target`` such that either ``y`` is QM and ``x == target`` (the
    requirement is carried entirely by one element, the other is decomposed
    out but keeps the bracket obligations), or both parts are safety
    related and their ranks sum to the target's rank.
    """
    if not target.is_safety_related:
        return ()
    rules: List[DecompositionRule] = []
    # degenerate split: full-ASIL element + QM element
    rules.append(
        DecompositionRule(
            target=target,
            parts=(target, Asil.QM),
            note="monitor/actuator split: safety carried by one element",
        )
    )
    for low_rank in range(1, target.rank // 2 + 1):
        high_rank = target.rank - low_rank
        rules.append(
            DecompositionRule(
                target=target,
                parts=(Asil.from_rank(high_rank), Asil.from_rank(low_rank)),
                note="independent redundant elements",
            )
        )
    return tuple(rules)


def check_decomposition(target: Asil, parts: Sequence[Asil], *,
                        independent: bool) -> DecompositionRule:
    """Validate a proposed decomposition of ``target`` into ``parts``.

    Args:
        target: the ASIL to be reached.
        parts: exactly two element ASILs.
        independent: whether the elements provide *independent* redundancy
            (freedom from common-cause faults).  ISO 26262 grants
            decomposition credit only with independence — this is the hook
            the GPU diverse-redundancy argument plugs into.

    Returns:
        The matching :class:`DecompositionRule`.

    Raises:
        SafetyViolation: when the split is not sanctioned or independence
            is missing.
    """
    if len(parts) != 2:
        raise SafetyViolation(
            f"ASIL decomposition is pairwise; got {len(parts)} parts"
        )
    if not independent:
        raise SafetyViolation(
            f"decomposition of {target} requires independent redundancy; "
            "dependent elements must each carry the full ASIL"
        )
    proposal = tuple(sorted(parts, reverse=True))
    for rule in valid_decompositions(target):
        if rule.parts == proposal:
            return rule
    raise SafetyViolation(
        f"{target} cannot be decomposed into {proposal[0]} + {proposal[1]} "
        f"(sanctioned: {[r.describe() for r in valid_decompositions(target)]})"
    )


@dataclass
class DecompositionNode:
    """A node in an ASIL decomposition tree.

    Leaves are implemented elements; inner nodes record a decomposition of
    their ASIL onto exactly two children.  :meth:`validate` checks the
    whole tree bottom-up.

    Attributes:
        name: element or requirement name.
        asil: ASIL allocated to this node.
        children: zero (leaf) or two (decomposed) child nodes.
        independent_children: whether the children are independent (e.g.
            diverse-redundant GPU kernel copies under SRRS/HALF).
    """

    name: str
    asil: Asil
    children: List["DecompositionNode"] = field(default_factory=list)
    independent_children: bool = True

    def decompose(self, left: "DecompositionNode",
                  right: "DecompositionNode", *,
                  independent: bool = True) -> "DecompositionNode":
        """Attach two children implementing this node's requirement.

        Returns ``self`` for chaining.  Validation is deferred to
        :meth:`validate` so trees can be built freely and checked once.
        """
        self.children = [left, right]
        self.independent_children = independent
        return self

    @property
    def is_leaf(self) -> bool:
        """True when this node is an implemented element."""
        return not self.children

    def validate(self) -> None:
        """Recursively check every decomposition in the tree.

        Raises:
            SafetyViolation: on any invalid split or missing independence.
        """
        if self.is_leaf:
            return
        if len(self.children) != 2:
            raise SafetyViolation(
                f"{self.name}: decomposition must have exactly 2 children"
            )
        check_decomposition(
            self.asil,
            [c.asil for c in self.children],
            independent=self.independent_children,
        )
        for child in self.children:
            child.validate()

    def leaves(self) -> List["DecompositionNode"]:
        """All implemented elements below (or including) this node."""
        if self.is_leaf:
            return [self]
        out: List["DecompositionNode"] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def render(self, indent: int = 0) -> str:
        """ASCII rendering of the tree (used by the Figure 1 bench)."""
        pad = "  " * indent
        line = f"{pad}{self.name} [{self.asil}]"
        if self.is_leaf:
            return line
        marker = "independent" if self.independent_children else "DEPENDENT"
        lines = [f"{line}  --decomposed ({marker})--"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def _figure1_examples() -> Tuple[Tuple[str, DecompositionRule], ...]:
    """The three decomposition examples drawn in the paper's Figure 1."""
    return (
        (
            "ASIL-C from independent ASIL-A + ASIL-B",
            check_decomposition(Asil.C, [Asil.A, Asil.B], independent=True),
        ),
        (
            "ASIL-D from independent ASIL-B + ASIL-B (DCLS cores)",
            check_decomposition(Asil.D, [Asil.B, Asil.B], independent=True),
        ),
        (
            "ASIL-D monitor + QM operation (safe-state systems)",
            check_decomposition(Asil.D, [Asil.D, Asil.QM], independent=True),
        ),
    )


#: Named examples matching the paper's Figure 1, ready for reporting.
FIGURE1_EXAMPLES: Tuple[Tuple[str, DecompositionRule], ...] = _figure1_examples()
