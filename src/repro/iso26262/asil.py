"""Automotive Safety Integrity Levels (ASIL) — ISO 26262 part 9 model.

ISO 26262 ranks safety-related functionality from ASIL A (lowest) to
ASIL D (highest); non-safety-related elements are *QM* (Quality Managed).
The paper's Section II summarises the scheme and Figure 1 shows how a
target ASIL can be *decomposed* onto redundant lower-ASIL elements.

This module provides the level lattice itself.  Levels are ordered
(``QM < A < B < C < D``) and carry a small integer :attr:`Asil.rank` used
by the decomposition arithmetic ("ASIL levels can be added as long as
components provide independent redundancy": rank(A)+rank(B) == rank(C),
rank(B)+rank(B) == rank(D), ...).
"""

from __future__ import annotations

import enum
from typing import Union

from repro.errors import ConfigurationError

__all__ = ["Asil", "as_asil"]


class Asil(enum.Enum):
    """Safety integrity level, ordered ``QM < A < B < C < D``."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Integer rank used by decomposition addition (QM=0 .. D=4)."""
        return self.value

    @property
    def is_safety_related(self) -> bool:
        """True for ASIL A-D, False for QM."""
        return self is not Asil.QM

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def __lt__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.value < other.value

    def __le__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.value <= other.value

    def __gt__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.value > other.value

    def __ge__(self, other: "Asil") -> bool:
        if not isinstance(other, Asil):
            return NotImplemented
        return self.value >= other.value

    # ------------------------------------------------------------------
    @classmethod
    def from_rank(cls, rank: int) -> "Asil":
        """Level with the given rank; ranks above D saturate at D.

        Decomposition arithmetic can exceed rank 4 (e.g. C+C); ISO 26262
        has no level above D, so sums saturate.

        Raises:
            ConfigurationError: for negative ranks.
        """
        if rank < 0:
            raise ConfigurationError(f"invalid ASIL rank {rank}")
        return cls(min(rank, cls.D.value))

    def decomposed_tag(self, original: "Asil") -> str:
        """ISO 26262 notation for a decomposed requirement, e.g. ``B(D)``.

        ``original`` is the ASIL of the requirement before decomposition;
        the standard requires it to be recorded in parentheses because the
        *process* requirements (independence analysis, confirmation
        measures) still follow the original level.
        """
        return f"{self.name}({original.name})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def as_asil(level: Union[str, int, Asil]) -> Asil:
    """Coerce a string (``"ASIL-D"``, ``"D"``, ``"qm"``), rank or
    :class:`Asil` into an :class:`Asil`.

    Raises:
        ConfigurationError: for unrecognised inputs.
    """
    if isinstance(level, Asil):
        return level
    if isinstance(level, int):
        if 0 <= level <= Asil.D.value:
            return Asil(level)
        raise ConfigurationError(f"invalid ASIL rank {level}")
    if isinstance(level, str):
        token = level.strip().upper().replace("ASIL-", "").replace("ASIL", "").strip()
        try:
            return Asil[token]
        except KeyError:
            raise ConfigurationError(f"unrecognised ASIL {level!r}") from None
    raise ConfigurationError(f"cannot interpret {level!r} as an ASIL")
