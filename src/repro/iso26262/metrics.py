"""ISO 26262-5 hardware architectural metrics.

Implements the three quantitative targets the standard attaches to each
ASIL, which the paper's Section II refers to as "some specific diagnostic
coverage must be achieved and some random failure rates are deemed as
acceptable":

* **SPFM** — single-point fault metric: fraction of the element's failure
  rate that is *not* a single-point or residual fault;
* **LFM** — latent fault metric: fraction of non-single-point faults that
  are *not* latent (detected by a safety mechanism or perceived by the
  driver).  The paper's Section IV-C requires periodic tests of the kernel
  scheduler precisely to keep scheduler faults from becoming latent;
* **PMHF** — probabilistic metric for random hardware failures: the
  residual failure rate in failures per hour (FIT = 1e-9/h).

Targets follow ISO 26262-5 Tables 4-6 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, SafetyViolation
from repro.iso26262.asil import Asil

__all__ = [
    "MetricTargets",
    "TARGETS",
    "FailureRateBudget",
    "HardwareMetrics",
    "coverage_from_campaign",
]

#: FIT unit: failures in 1e9 device-hours, expressed here as failures/hour.
FIT = 1e-9


@dataclass(frozen=True)
class MetricTargets:
    """Quantitative targets for one ASIL.

    ``None`` means the standard sets no target at that level.

    Attributes:
        spfm: minimum single-point fault metric (fraction, 0..1).
        lfm: minimum latent fault metric (fraction, 0..1).
        pmhf_per_hour: maximum residual failure rate (1/h).
    """

    spfm: Optional[float]
    lfm: Optional[float]
    pmhf_per_hour: Optional[float]


#: ISO 26262-5 targets per ASIL (Tables 4, 5 and 8 of the standard).
TARGETS: Dict[Asil, MetricTargets] = {
    Asil.QM: MetricTargets(None, None, None),
    Asil.A: MetricTargets(None, None, None),
    Asil.B: MetricTargets(0.90, 0.60, 1e-7),
    Asil.C: MetricTargets(0.97, 0.80, 1e-7),
    Asil.D: MetricTargets(0.99, 0.90, 1e-8),
}


@dataclass(frozen=True)
class FailureRateBudget:
    """Partition of an element's raw failure rate (all in 1/h).

    Attributes:
        total: total random-hardware failure rate of the element.
        single_point: failures of safety-related parts with no safety
            mechanism at all that directly violate the safety goal.
        residual: failures that escape an existing safety mechanism
            (``(1 - DC) * covered_rate``).
        latent_multi_point: multiple-point faults neither detected by a
            mechanism nor perceived by the driver.
    """

    total: float
    single_point: float
    residual: float
    latent_multi_point: float

    def __post_init__(self) -> None:
        for label, v in (
            ("total", self.total),
            ("single_point", self.single_point),
            ("residual", self.residual),
            ("latent_multi_point", self.latent_multi_point),
        ):
            if v < 0:
                raise ConfigurationError(f"{label} rate cannot be negative")
        if self.single_point + self.residual + self.latent_multi_point > self.total * (1 + 1e-9):
            raise ConfigurationError(
                "fault-category rates exceed the total failure rate"
            )


@dataclass(frozen=True)
class HardwareMetrics:
    """Computed SPFM / LFM / PMHF of an element.

    Construct via :meth:`from_budget` (classification-based, ISO formulas)
    or :func:`coverage_from_campaign` (from fault-injection results).
    """

    spfm: float
    lfm: float
    pmhf_per_hour: float

    @classmethod
    def from_budget(cls, budget: FailureRateBudget) -> "HardwareMetrics":
        """Apply the ISO 26262-5 Annex C formulas to a rate budget."""
        if budget.total == 0:
            return cls(spfm=1.0, lfm=1.0, pmhf_per_hour=0.0)
        violating = budget.single_point + budget.residual
        spfm = 1.0 - violating / budget.total
        non_spf = budget.total - violating
        lfm = 1.0 if non_spf == 0 else 1.0 - budget.latent_multi_point / non_spf
        pmhf = violating
        return cls(spfm=spfm, lfm=lfm, pmhf_per_hour=pmhf)

    def meets(self, asil: Asil) -> bool:
        """True when all targets of ``asil`` are satisfied."""
        targets = TARGETS[asil]
        if targets.spfm is not None and self.spfm < targets.spfm:
            return False
        if targets.lfm is not None and self.lfm < targets.lfm:
            return False
        if targets.pmhf_per_hour is not None and self.pmhf_per_hour > targets.pmhf_per_hour:
            return False
        return True

    def check(self, asil: Asil, context: str = "") -> None:
        """Assert the targets of ``asil`` are met.

        Raises:
            SafetyViolation: listing every violated target.
        """
        targets = TARGETS[asil]
        problems = []
        if targets.spfm is not None and self.spfm < targets.spfm:
            problems.append(f"SPFM {self.spfm:.4f} < {targets.spfm}")
        if targets.lfm is not None and self.lfm < targets.lfm:
            problems.append(f"LFM {self.lfm:.4f} < {targets.lfm}")
        if targets.pmhf_per_hour is not None and self.pmhf_per_hour > targets.pmhf_per_hour:
            problems.append(
                f"PMHF {self.pmhf_per_hour:.3e}/h > {targets.pmhf_per_hour:.1e}/h"
            )
        if problems:
            prefix = f"{context}: " if context else ""
            raise SafetyViolation(prefix + f"{asil} targets violated: " + "; ".join(problems))


def coverage_from_campaign(total_injections: int, detected: int,
                           masked: int, undetected: int,
                           raw_failure_rate_per_hour: float) -> HardwareMetrics:
    """Derive architectural metrics from a fault-injection campaign.

    Treats the campaign as a Monte-Carlo estimate of diagnostic coverage:
    undetected silent corruptions are residual faults; masked faults do not
    violate the safety goal; detected faults are covered by the safety
    mechanism (redundant execution + DCLS comparison).

    Args:
        total_injections: campaign size (must equal the sum of outcomes).
        detected / masked / undetected: outcome counts.
        raw_failure_rate_per_hour: the element's raw failure rate to scale
            the residual fraction into a PMHF figure.

    Raises:
        ConfigurationError: on inconsistent counts.
    """
    if total_injections <= 0:
        raise ConfigurationError("campaign must contain injections")
    if detected + masked + undetected != total_injections:
        raise ConfigurationError(
            "outcome counts do not sum to the campaign size"
        )
    if raw_failure_rate_per_hour < 0:
        raise ConfigurationError("failure rate cannot be negative")
    dangerous = detected + undetected
    coverage = 1.0 if dangerous == 0 else detected / dangerous
    residual_fraction = 0.0 if dangerous == 0 else undetected / total_injections
    budget = FailureRateBudget(
        total=raw_failure_rate_per_hour,
        single_point=0.0,
        residual=residual_fraction * raw_failure_rate_per_hour,
        latent_multi_point=0.0,
    )
    metrics = HardwareMetrics.from_budget(budget)
    # re-package with the campaign coverage folded into LFM=coverage proxy
    return HardwareMetrics(
        spfm=metrics.spfm, lfm=coverage, pmhf_per_hour=metrics.pmhf_per_hour
    )
