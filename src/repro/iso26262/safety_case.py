"""Safety-goal / safety-requirement modelling.

A light executable safety case: safety goals carry an ASIL and an FTTI;
requirements are allocated to system *elements* (CPU cluster, GPU, kernel
scheduler, interconnect, memories); each element declares its claimed ASIL
capability and the safety mechanisms protecting it.  :func:`check_system`
walks the allocation and raises :class:`~repro.errors.SafetyViolation`
with an actionable message when a claim is unsupported.

This module encodes the paper's system argument (Section IV-A):

* DCLS CPU cores → ASIL-D by B(D)+B(D) decomposition with lockstep
  independence;
* memories/interconnect → ECC/CRC mechanisms;
* GPU SMs → ASIL-B capable individually, lifted to ASIL-D via redundant
  kernels *only if* the execution is diverse (different SM, different
  time) — which is exactly what SRRS/HALF certify and the default
  scheduler does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SafetyViolation
from repro.iso26262.asil import Asil
from repro.iso26262.decomposition import check_decomposition
from repro.iso26262.fault_model import Ftti

__all__ = [
    "SafetyMechanism",
    "SystemElement",
    "SafetyGoal",
    "SafetyRequirement",
    "check_requirement",
    "check_system",
]


@dataclass(frozen=True)
class SafetyMechanism:
    """A fault-detection/correction measure attached to an element.

    Attributes:
        name: e.g. ``"SECDED ECC"``, ``"CRC"``, ``"diverse redundant
            execution + DCLS comparison"``, ``"periodic scheduler test"``.
        detects_ccf: whether the mechanism remains effective under
            common-cause faults (plain replication does not; diverse
            redundancy, ECC and CRC do).
        diagnostic_coverage: claimed coverage fraction (0..1].
    """

    name: str
    detects_ccf: bool
    diagnostic_coverage: float = 0.99

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("mechanism needs a name")
        if not (0.0 < self.diagnostic_coverage <= 1.0):
            raise ConfigurationError("diagnostic coverage must be in (0, 1]")


@dataclass
class SystemElement:
    """A hardware/software element with a claimed ASIL capability.

    Attributes:
        name: element name.
        standalone_asil: ASIL the element reaches by itself (e.g. GPU SMs
            are "ASIL-B compatible" per the paper).
        mechanisms: safety mechanisms protecting the element.
        redundant_with: name of a redundant peer element, if any.
        independent_of_peer: whether the redundancy with the peer is
            *independent* (diverse) — the decomposition precondition.
    """

    name: str
    standalone_asil: Asil
    mechanisms: List[SafetyMechanism] = field(default_factory=list)
    redundant_with: Optional[str] = None
    independent_of_peer: bool = False

    def claimed_asil(self, elements: Dict[str, "SystemElement"]) -> Asil:
        """ASIL the element can claim, exploiting decomposition with a peer.

        Without a peer this is the standalone ASIL.  With an independent
        redundant peer, ranks add (saturating at D) per ISO 26262-9.
        """
        if self.redundant_with is None:
            return self.standalone_asil
        peer = elements.get(self.redundant_with)
        if peer is None:
            raise ConfigurationError(
                f"{self.name}: redundant peer {self.redundant_with!r} unknown"
            )
        if not self.independent_of_peer:
            return self.standalone_asil
        return Asil.from_rank(self.standalone_asil.rank + peer.standalone_asil.rank)


@dataclass(frozen=True)
class SafetyGoal:
    """Top-level safety goal with ASIL and FTTI.

    Attributes:
        name: e.g. ``"no undetected erroneous object list"``.
        asil: integrity level from hazard analysis.
        ftti: fault-tolerant time interval.
    """

    name: str
    asil: Asil
    ftti: Ftti

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("safety goal needs a name")


@dataclass(frozen=True)
class SafetyRequirement:
    """A requirement derived from a goal and allocated to elements.

    Attributes:
        name: requirement identifier.
        goal: parent safety goal (the requirement inherits its ASIL unless
            decomposed).
        allocated_to: names of the elements implementing it.
        decomposed: whether the allocation claims ASIL decomposition
            across exactly two redundant elements.
    """

    name: str
    goal: SafetyGoal
    allocated_to: Tuple[str, ...]
    decomposed: bool = False


def check_requirement(req: SafetyRequirement,
                      elements: Dict[str, SystemElement]) -> None:
    """Validate one requirement's allocation.

    * undecomposed: every allocated element must claim the goal's ASIL;
    * decomposed: exactly two elements whose standalone ASILs form a valid
      decomposition of the goal ASIL *and* which are mutually independent.

    Raises:
        SafetyViolation / ConfigurationError with a precise reason.
    """
    if not req.allocated_to:
        raise ConfigurationError(f"{req.name}: allocated to no element")
    missing = [n for n in req.allocated_to if n not in elements]
    if missing:
        raise ConfigurationError(f"{req.name}: unknown elements {missing}")

    if not req.decomposed:
        for name in req.allocated_to:
            element = elements[name]
            claimed = element.claimed_asil(elements)
            if claimed < req.goal.asil:
                raise SafetyViolation(
                    f"{req.name}: element {name!r} claims {claimed}, "
                    f"goal requires {req.goal.asil}"
                )
        return

    if len(req.allocated_to) != 2:
        raise SafetyViolation(
            f"{req.name}: decomposition requires exactly 2 elements, "
            f"got {len(req.allocated_to)}"
        )
    a, b = (elements[n] for n in req.allocated_to)
    independent = (
        a.redundant_with == b.name
        and b.redundant_with == a.name
        and a.independent_of_peer
        and b.independent_of_peer
    )
    check_decomposition(
        req.goal.asil,
        [a.standalone_asil, b.standalone_asil],
        independent=independent,
    )


def check_system(requirements: Sequence[SafetyRequirement],
                 elements: Dict[str, SystemElement]) -> List[str]:
    """Validate every requirement; return human-readable confirmations.

    Raises on the first violation (fail-fast, like an assessment finding).
    """
    confirmations = []
    for req in requirements:
        check_requirement(req, elements)
        kind = "decomposed onto" if req.decomposed else "allocated to"
        confirmations.append(
            f"{req.name} [{req.goal.asil}] {kind} "
            + ", ".join(req.allocated_to)
        )
    return confirmations
